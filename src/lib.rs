//! # volunteer-mr — umbrella crate
//!
//! Re-exports the whole workspace of the BOINC-MR reproduction
//! (*Volunteer Cloud Computing: MapReduce over the Internet*,
//! Costa/Silva/Dahlin, IPDPS Workshops 2011):
//!
//! * [`desim`] — deterministic discrete-event kernel.
//! * [`netsim`] — network model (fair sharing, NAT, TCP-Nice).
//! * [`vcore`] — BOINC-like middleware (scheduler, validator, backoff…).
//! * [`mapreduce`] — the MapReduce framework and applications.
//! * [`core`] — BOINC-MR: JobTracker, phases, experiments.
//! * [`rtnet`] — the real pull-model TCP runtime.
//!
//! See `examples/` for runnable entry points and DESIGN.md for the
//! system inventory.

pub use vmr_core as core;
pub use vmr_desim as desim;
pub use vmr_mapreduce as mapreduce;
pub use vmr_netsim as netsim;
pub use vmr_obs as obs;
pub use vmr_rtnet as rtnet;
pub use vmr_vcore as vcore;
