#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), and
# the full test suite. Run before sending a change.
#
# Usage: scripts/check.sh [--no-test]

set -euo pipefail
cd "$(dirname "$0")/.."

NO_TEST=0
for arg in "$@"; do
    case "$arg" in
        --no-test) NO_TEST=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

if [ "$NO_TEST" -eq 0 ]; then
    echo "==> cargo test (workspace)"
    cargo test --offline --workspace --quiet
fi

echo "==> OK"
