#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), the
# full test suite, the observability feature matrix, and a bench smoke
# that refreshes BENCH_netsim.json. Run before sending a change.
#
# Usage: scripts/check.sh [--no-test] [--no-bench]

set -euo pipefail
cd "$(dirname "$0")/.."

NO_TEST=0
NO_BENCH=0
for arg in "$@"; do
    case "$arg" in
        --no-test) NO_TEST=1 ;;
        --no-bench) NO_BENCH=1 ;;
        *) echo "unknown argument: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> feature matrix: vmr-obs recorder compiled out (--no-default-features)"
cargo build --offline -p vmr-bench --no-default-features
cargo build --offline -p vmr-durable --no-default-features
cargo build --offline -p vmr-trust --no-default-features
cargo build --offline -p vmr-shuffle --no-default-features

echo "==> examples build (EngineBuilder construction surface)"
cargo build --offline --examples

if [ "$NO_TEST" -eq 0 ]; then
    echo "==> cargo test (workspace)"
    cargo test --offline --workspace --quiet
fi

if [ "$NO_BENCH" -eq 0 ]; then
    echo "==> bench smoke: flow_churn (refreshes BENCH_netsim.json)"
    cargo build --offline --release -p vmr-bench --bin flow_churn --bin table1
    ./target/release/flow_churn \
        | sed -n 's/^BENCH_netsim\.json //p' > BENCH_netsim.json
    [ -s BENCH_netsim.json ] || { echo "flow_churn emitted no BENCH line" >&2; exit 1; }

    if [ "${NETSIM_SCALE_SMOKE:-0}" = "1" ]; then
        echo "==> netsim scale smoke: 20k-host aggregate leg (NETSIM_SCALE_SMOKE=1)"
        ./target/release/flow_churn --scale-smoke
    fi

    echo "==> bench smoke: table1 --quick (with metrics dump)"
    ./target/release/table1 --quick --metrics /tmp/table1_quick_metrics.json > /dev/null
    [ -s /tmp/table1_quick_metrics.json ] || { echo "table1 --metrics wrote nothing" >&2; exit 1; }

    echo "==> crash-replay smoke: crash mid-run, resume from the WAL mirror, byte-diff"
    echo "    (single-log plan, then sharded + incremental + compacted)"
    cargo build --offline --release -p vmr-bench --bin recovery_study
    ./target/release/recovery_study --smoke

    echo "==> durability torture smoke: seeded corruption fuzzer over recorded journals"
    TORTURE_SMOKE=1 cargo test --offline --release -p vmr-durable --test torture --quiet

    if [ "${SHARD_SMOKE:-0}" = "1" ]; then
        echo "==> shard smoke: 4-shard table1 --quick byte-diffed vs 1 shard (SHARD_SMOKE=1)"
        ./target/release/table1 --quick > /tmp/table1_quick_1shard.txt
        ./target/release/table1 --quick --shards 4 > /tmp/table1_quick_4shard.txt
        diff /tmp/table1_quick_1shard.txt /tmp/table1_quick_4shard.txt \
            || { echo "4-shard table1 output diverged from 1 shard" >&2; exit 1; }

        echo "==> shard smoke: serve-loop scaling (refreshes BENCH_shard.json, >=2.5x floor)"
        cargo build --offline --release -p vmr-bench --bin shard_scaling
        ./target/release/shard_scaling \
            | sed -n 's/^BENCH_shard\.json //p' > BENCH_shard.json
        [ -s BENCH_shard.json ] || { echo "shard_scaling emitted no BENCH line" >&2; exit 1; }
    fi

    if [ "${SHUFFLE_SMOKE:-0}" = "1" ]; then
        echo "==> shuffle smoke: strategy ablation, 40/2k/100k legs (SHUFFLE_SMOKE=1)"
        echo "    (refreshes BENCH_shuffle.json; coded >=25% byte cut at 2000 hosts)"
        cargo build --offline --release -p vmr-bench --bin shuffle_ablation
        ./target/release/shuffle_ablation --smoke \
            | sed -n 's/^BENCH_shuffle\.json //p' > BENCH_shuffle.json
        [ -s BENCH_shuffle.json ] || { echo "shuffle_ablation emitted no BENCH line" >&2; exit 1; }

        echo "==> shuffle smoke: table1 --quick byte-diffed, baseline vs legacy transfer path"
        ./target/release/table1 --quick > /tmp/table1_quick_baseline.txt
        ./target/release/table1 --quick --shuffle legacy > /tmp/table1_quick_legacy.txt
        diff /tmp/table1_quick_baseline.txt /tmp/table1_quick_legacy.txt \
            || { echo "baseline shuffle diverged from the legacy transfer path" >&2; exit 1; }
    fi

    if [ "${TRUST_SMOKE:-0}" = "1" ]; then
        echo "==> trust smoke: adaptive-replication ablation, 40-host legs (TRUST_SMOKE=1)"
        cargo build --offline --release -p vmr-bench --bin trust_study
        ./target/release/trust_study --smoke > /dev/null
    fi

    if [ "${SOAK_SMOKE:-0}" = "1" ]; then
        echo "==> rtnet soak smoke: 10k concurrent volunteers vs the poll runtime (SOAK_SMOKE=1)"
        echo "    (two-process harness; zero lost requests, exact busy accounting, bounded p99)"
        SOAK_SMOKE=1 cargo test --offline --release -p volunteer-mr \
            --test soak_rtnet soak_10k_volunteers -- --nocapture

        echo "==> rtnet soak smoke: threaded-vs-poll ladder (refreshes BENCH_rtnet.json)"
        cargo build --offline --release -p vmr-bench --bin rtnet_soak
        ./target/release/rtnet_soak --smoke \
            | sed -n 's/^BENCH_rtnet\.json //p' > BENCH_rtnet.json
        [ -s BENCH_rtnet.json ] || { echo "rtnet_soak emitted no BENCH line" >&2; exit 1; }
    fi
fi

echo "==> OK"
