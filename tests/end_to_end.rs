//! Cross-crate integration: the simulated volunteer cloud end to end.

use volunteer_mr::core::{run_experiment, ExperimentConfig, MitigationPlan, MrMode, NodeMix};

fn small(mode: MrMode, seed: u64) -> ExperimentConfig {
    let mut c = ExperimentConfig::table1(10, 8, 3, mode);
    c.input_bytes = 128 << 20;
    c.seed = seed;
    c
}

#[test]
fn both_modes_complete_and_order_holds() {
    let relay = run_experiment(&small(MrMode::ServerRelay, 1)).expect("valid experiment config");
    let p2p = run_experiment(&small(MrMode::InterClient, 1)).expect("valid experiment config");
    assert!(relay.all_done && p2p.all_done);
    // The paper's headline: inter-client transfers make the reduce step
    // the fastest part.
    assert!(
        p2p.reports[0].reduce_s < relay.reports[0].reduce_s,
        "p2p {} vs relay {}",
        p2p.reports[0].reduce_s,
        relay.reports[0].reduce_s
    );
    // And BOINC-MR moves less data through the project server.
    assert!(p2p.stats.bytes_via_server < relay.stats.bytes_via_server);
}

#[test]
fn phase_accounting_is_consistent() {
    let out = run_experiment(&small(MrMode::InterClient, 3)).expect("valid experiment config");
    let r = &out.reports[0];
    assert!(r.map_s > 0.0 && r.reduce_s > 0.0);
    // total covers both phases plus the transition gap.
    assert!(r.total_s >= r.map_s + r.reduce_s - 1e-9);
    // The gap exists (validation + daemon pass + backoff wake).
    let gap = r.total_s - r.map_s - r.reduce_s;
    assert!(gap >= 0.0, "gap {gap}");
}

#[test]
fn backoff_cap_increases_makespan() {
    // The §IV.B effect, demonstrated end to end: averaged over seeds,
    // a longer backoff cap cannot make the job faster.
    let avg = |cap: u64| -> f64 {
        (0..4)
            .map(|s| {
                let mut c = small(MrMode::ServerRelay, 100 + s);
                c.backoff_max_s = cap;
                run_experiment(&c).expect("valid experiment config").reports[0].total_s
            })
            .sum::<f64>()
            / 4.0
    };
    let short = avg(60);
    let long = avg(1200);
    assert!(
        long > short * 0.95,
        "long-cap runs should not be meaningfully faster: {long} vs {short}"
    );
}

#[test]
fn report_delays_are_recorded_and_bounded_by_cap() {
    let mut c = small(MrMode::ServerRelay, 9);
    c.backoff_max_s = 300;
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(out.stats.report_delay.count() > 0);
    // A report can never be delayed by more than one full backoff (plus
    // RPC scheduling slack).
    assert!(
        out.stats.report_delay.max().unwrap() <= 300.0 + 30.0,
        "delay {} exceeds cap",
        out.stats.report_delay.max().unwrap()
    );
}

#[test]
fn immediate_report_mitigation_cuts_delay() {
    let base = run_experiment(&small(MrMode::InterClient, 17)).expect("valid experiment config");
    let mut c = small(MrMode::InterClient, 17);
    c.mitigation = MitigationPlan {
        immediate_report: true,
        ..Default::default()
    };
    let fixed = run_experiment(&c).expect("valid experiment config");
    assert!(
        fixed.stats.report_delay.mean() < base.stats.report_delay.mean(),
        "immediate reporting must cut the mean report delay: {} vs {}",
        fixed.stats.report_delay.mean(),
        base.stats.report_delay.mean()
    );
}

#[test]
fn concurrent_jobs_all_finish() {
    let mut c = small(MrMode::InterClient, 21);
    c.concurrent_jobs = 3;
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(out.all_done);
    assert_eq!(out.reports.len(), 3);
    for r in &out.reports {
        assert!(r.total_s > 0.0);
    }
}

#[test]
fn experiments_are_bit_reproducible() {
    let a = run_experiment(&small(MrMode::InterClient, 5)).expect("valid experiment config");
    let b = run_experiment(&small(MrMode::InterClient, 5)).expect("valid experiment config");
    assert_eq!(a.reports[0].map_s, b.reports[0].map_s);
    assert_eq!(a.reports[0].reduce_s, b.reports[0].reduce_s);
    assert_eq!(a.reports[0].total_s, b.reports[0].total_s);
    assert_eq!(a.stats.rpcs, b.stats.rpcs);
    assert_eq!(a.stats.empty_replies, b.stats.empty_replies);
    assert_eq!(a.finished_at, b.finished_at);
}

#[test]
fn faster_quadcore_mix_not_slower() {
    // §IV.A's second node type: quad-core pcr200 machines run four
    // tasks at once. Swapping half the fleet for them must not hurt.
    let slow = run_experiment(&small(MrMode::InterClient, 30)).expect("valid experiment config");
    let mut c = small(MrMode::InterClient, 30);
    c.nodes = NodeMix {
        pc3001: 5,
        pcr200: 5,
    };
    let mixed = run_experiment(&c).expect("valid experiment config");
    assert!(slow.all_done && mixed.all_done);
    assert!(
        mixed.reports[0].total_s <= slow.reports[0].total_s * 1.1,
        "mixed {} vs uniform {}",
        mixed.reports[0].total_s,
        slow.reports[0].total_s
    );
}

#[test]
fn assimilator_collects_every_wu_once() {
    let out_cfg = small(MrMode::InterClient, 31);
    // Re-run through the engine API to inspect the assimilator.
    use volunteer_mr::core::{MrJobConfig, MrPolicy};
    use volunteer_mr::netsim::HostLink;
    use volunteer_mr::vcore::{Engine, HostProfile, ProjectConfig};
    let mut eng = Engine::builder(out_cfg.seed)
        .config(ProjectConfig::default())
        .clients((0..10).map(|_| {
            (
                HostProfile::pc3001(),
                HostLink::symmetric_mbit(100.0, 0.000_5),
            )
        }))
        .build();
    let mut jc = MrJobConfig::paper_wordcount(8, 3, MrMode::InterClient);
    jc.input_bytes = 128 << 20;
    let mut pol = MrPolicy::new();
    pol.submit_job(&mut eng, jc);
    eng.run_until(
        &mut pol,
        volunteer_mr::desim::SimTime::from_secs(180_000),
        |e| e.db.all_wus_terminal(),
    );
    assert!(pol.all_done());
    // 8 map + 3 reduce WUs, each assimilated exactly once, in order.
    assert_eq!(eng.assimilator.len(), 11);
    assert_eq!(eng.assimilator.of_app("mr0_map").len(), 8);
    assert_eq!(eng.assimilator.of_app("mr0_red").len(), 3);
    let times: Vec<_> = eng.assimilator.all().iter().map(|r| r.at).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "validation order");
    // Every record has its quorum of holders.
    for rec in eng.assimilator.all() {
        assert_eq!(rec.holders.len(), 2);
    }
}

#[test]
fn timeline_contains_full_task_lifecycle() {
    let mut c = small(MrMode::InterClient, 7);
    c.record_timeline = true;
    let out = run_experiment(&c).expect("valid experiment config");
    let kinds: std::collections::HashSet<&str> = out
        .timeline
        .spans()
        .iter()
        .map(|s| s.kind.as_str())
        .collect();
    for k in ["download", "exec", "upload"] {
        assert!(kinds.contains(k), "missing span kind {k}");
    }
    let markers: Vec<&str> = out
        .timeline
        .points()
        .iter()
        .map(|p| p.detail.as_str())
        .collect();
    for m in ["map-start", "maps-validated", "reduce-start", "job-done"] {
        assert!(markers.contains(&m), "missing phase marker {m}");
    }
}
