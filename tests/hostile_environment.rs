//! Integration: the "insecure, unreliable VC environment" the paper
//! targets — NAT populations, churn, transfer faults — end to end.

use volunteer_mr::core::{run_experiment, ExperimentConfig, MrMode};
use volunteer_mr::desim::SimDuration;
use volunteer_mr::netsim::{NatMix, NatType, TraversalPolicy};
use volunteer_mr::vcore::{ClientId, FaultPlan};

fn base(seed: u64) -> ExperimentConfig {
    let mut c = ExperimentConfig::table1(12, 8, 3, MrMode::InterClient);
    c.input_bytes = 128 << 20;
    c.seed = seed;
    c
}

#[test]
fn nat_mix_with_tiered_traversal_completes_p2p() {
    let mut c = base(2);
    c.nat_mix = Some(NatMix::internet_2011());
    c.traversal = TraversalPolicy::default();
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(out.all_done);
    assert_eq!(
        out.stats.server_fallbacks, 0,
        "tiered traversal keeps transfers p2p"
    );
    assert!(out.stats.traversal.successes() > 0);
}

#[test]
fn nat_mix_direct_only_falls_back_to_server() {
    // The prototype's limitation: without traversal, NATed mappers are
    // unreachable and reducers fall back to the data server.
    let mut c = base(2);
    c.nat_mix = Some(NatMix::new(vec![(NatType::PortRestricted, 1.0)]));
    c.traversal = TraversalPolicy::direct_only();
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(out.all_done, "fall-back must keep the job alive");
    assert!(out.stats.server_fallbacks > 0);
    assert_eq!(out.stats.traversal.successes(), 0);
}

#[test]
fn relay_paths_carry_data_through_server() {
    // All-symmetric population: hole punching ~never works; the tiered
    // policy ends at relay, which routes bytes through the server host.
    let mut c = base(4);
    c.nat_mix = Some(NatMix::new(vec![(NatType::Symmetric, 1.0)]));
    c.traversal = TraversalPolicy::default();
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(out.all_done);
    assert!(
        out.stats.traversal.relay > 0,
        "symmetric NATs must relay: {:?}",
        out.stats.traversal
    );
}

#[test]
fn churn_recovers_via_timeout_and_retry() {
    let mut c = base(6);
    c.delay_bound_s = 600.0;
    c.fault = FaultPlan {
        dropouts: vec![
            (ClientId(0), SimDuration::from_secs(120)),
            (ClientId(5), SimDuration::from_secs(300)),
        ],
        ..FaultPlan::default()
    };
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(out.all_done, "job must survive two dropouts");
}

#[test]
fn transient_peer_faults_are_retried() {
    let mut c = base(8);
    c.fault = FaultPlan {
        peer_transfer_failure_prob: 0.3,
        ..FaultPlan::default()
    };
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(out.all_done);
    assert!(out.stats.peer_failures > 0, "faults must actually fire");
}

#[test]
fn task_errors_trigger_reissue() {
    let mut c = base(10);
    c.fault = FaultPlan {
        task_error_prob: 0.15,
        ..FaultPlan::default()
    };
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(out.all_done);
    // Errors force extra grants beyond the 2×(maps+reduces) baseline.
    let baseline = 2 * (8 + 3) as u64;
    assert!(
        out.stats.grants > baseline,
        "expected reissues: grants {} <= baseline {baseline}",
        out.stats.grants
    );
}

#[test]
fn everything_at_once() {
    // NATs + churn + byzantine + flaky transfers, all together.
    let mut c = base(12);
    c.delay_bound_s = 900.0;
    c.nat_mix = Some(NatMix::internet_2011());
    c.traversal = TraversalPolicy::default();
    c.fault = FaultPlan {
        byzantine: vec![ClientId(2)],
        corruption_prob: 0.7,
        peer_transfer_failure_prob: 0.1,
        task_error_prob: 0.05,
        dropouts: vec![(ClientId(9), SimDuration::from_secs(400))],
        ..FaultPlan::default()
    };
    let out = run_experiment(&c).expect("valid experiment config");
    assert!(
        out.all_done,
        "the full hostile scenario must still complete"
    );
}
