//! 10 000-volunteer soak of the poll-loop runtime.
//!
//! One [`PollServer`] process versus ten thousand *simultaneously open*
//! fetcher connections, with exhaustive accounting: every request ends
//! in exactly one client-side bucket, the client's and the server's
//! counters agree to the digit, and tail latency stays bounded (read
//! live off the `/metrics` endpoint, like an operator would).
//!
//! The container caps open files at 20 000 (soft *and* hard), so a
//! single process cannot hold 10 000 server sockets plus 10 000 client
//! sockets. The harness therefore self-execs: the gated driver test
//! spawns this same test binary filtered to [`server_role`] with
//! `SOAK_ROLE=server`, speaks `ADDR`/`STATS` lines over the child's
//! stdio, and runs the nonblocking load generator
//! ([`volunteer_mr::rtnet::run_load`]) in its own process. ~10 005 fds
//! per process — comfortably inside the limit.
//!
//! Heavy by design, so it only runs when asked:
//! `SOAK_SMOKE=1 cargo test --release --test soak_rtnet`
//! (wired into `scripts/check.sh` behind the same variable; shrink with
//! `SOAK_N`).

use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;
use volunteer_mr::rtnet::{http_get, run_load, LoadConfig};

/// Scans child stdout for a line carrying `marker` and returns what
/// follows it. The marker may appear mid-line: the child's libtest
/// harness prints `test server_role ... ` with no trailing newline, so
/// the first thing the test itself prints lands on that same line.
fn await_line(out: &mut BufReader<ChildStdout>, marker: &str) -> String {
    let mut line = String::new();
    loop {
        line.clear();
        if out.read_line(&mut line).expect("child stdout") == 0 {
            panic!("server child exited before printing {marker:?}");
        }
        if let Some(pos) = line.find(marker) {
            return line[pos + marker.len()..].trim().to_string();
        }
    }
}

struct ServerProc {
    child: Child,
    out: BufReader<ChildStdout>,
    addr: SocketAddr,
    metrics_addr: SocketAddr,
}

/// Spawns this test binary as the serving process.
fn spawn_server(threshold: usize, payload: usize) -> ServerProc {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .args(["server_role", "--exact", "--nocapture"])
        .env("SOAK_ROLE", "server")
        .env("SOAK_THRESHOLD", threshold.to_string())
        .env("SOAK_PAYLOAD", payload.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server child");
    let mut out = BufReader::new(child.stdout.take().expect("child stdout"));
    let addr_line = await_line(&mut out, "ADDR ");
    let mut parts = addr_line.split_whitespace();
    let addr: SocketAddr = parts.next().expect("data addr").parse().expect("addr");
    let metrics_addr: SocketAddr = parts
        .next()
        .expect("metrics addr")
        .parse()
        .expect("metrics addr");
    ServerProc {
        child,
        out,
        addr,
        metrics_addr,
    }
}

/// Parsed `STATS` line the server prints on shutdown.
#[derive(Debug)]
struct ServerTotals {
    served: u64,
    not_found: u64,
    busy: u64,
    peak_open: usize,
}

impl ServerProc {
    /// Asks the child to stop and collects its final counters.
    fn stop(mut self) -> ServerTotals {
        let mut stdin = self.child.stdin.take().expect("child stdin");
        writeln!(stdin, "stop").expect("signal child");
        drop(stdin);
        let stats = await_line(&mut self.out, "STATS ");
        let status = self.child.wait().expect("child exit");
        assert!(status.success(), "server child failed: {status:?}");
        let field = |name: &str| -> u64 {
            stats
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
                .unwrap_or_else(|| panic!("no {name} in STATS line {stats:?}"))
                .parse()
                .expect("numeric field")
        };
        ServerTotals {
            served: field("served"),
            not_found: field("not_found"),
            busy: field("busy"),
            peak_open: field("peak") as usize,
        }
    }
}

/// Pulls one sample value out of an exposition-format scrape.
fn metric(text: &str, series: &str) -> Option<f64> {
    text.lines()
        .find_map(|l| l.strip_prefix(series))
        .and_then(|rest| rest.trim().parse().ok())
}

/// The serving half of the harness. A no-op under plain `cargo test`;
/// does the work only when self-exec'd with `SOAK_ROLE=server`.
#[test]
fn server_role() {
    if std::env::var("SOAK_ROLE").as_deref() != Ok("server") {
        return;
    }
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use volunteer_mr::rtnet::{OutputStore, PollServer, PollServerConfig};

    #[allow(clippy::items_after_statements)]
    const SAMPLE_EVERY: Duration = Duration::from_millis(1);

    let threshold: usize = std::env::var("SOAK_THRESHOLD")
        .expect("SOAK_THRESHOLD")
        .parse()
        .expect("threshold");
    let payload: usize = std::env::var("SOAK_PAYLOAD")
        .expect("SOAK_PAYLOAD")
        .parse()
        .expect("payload");

    let store = Arc::new(OutputStore::new());
    store.put("blob", bytes::Bytes::from(vec![0x5au8; payload]));
    let obs = volunteer_mr::obs::Obs::new();
    let cfg = PollServerConfig::new(threshold)
        .with_metrics_endpoint()
        .with_idle_timeout(Duration::from_secs(300))
        .with_dashboard_every(Duration::from_secs(1));
    let srv = PollServer::start_with_obs(store, cfg, &obs).expect("poll server");

    // Sample peak concurrent connections while serving.
    let peak = Arc::new(AtomicUsize::new(0));
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                peak.fetch_max(srv.open_connections(), Ordering::Relaxed);
                std::thread::sleep(SAMPLE_EVERY);
            }
        });

        println!(
            "ADDR {} {}",
            srv.addr(),
            srv.metrics_addr().expect("metrics endpoint on")
        );

        // Serve until the driver says stop (or closes our stdin).
        let mut line = String::new();
        let _ = std::io::stdin().read_line(&mut line);
        done.store(true, Ordering::Relaxed);
    });
    let stats = &srv.stats;
    println!(
        "STATS served={} not_found={} busy={} peak={}",
        stats.served.load(Ordering::Relaxed),
        stats.not_found.load(Ordering::Relaxed),
        stats.busy_rejections.load(Ordering::Relaxed),
        peak.load(Ordering::Relaxed),
    );
    srv.shutdown();
}

/// The driver: 10 000 concurrent fetchers, zero lost requests, exact
/// rejection accounting, bounded p99 via the metrics endpoint.
#[test]
fn soak_10k_volunteers() {
    if std::env::var("SOAK_SMOKE").is_err() {
        eprintln!("soak_10k_volunteers: skipped (set SOAK_SMOKE=1 to run)");
        return;
    }
    let n: usize = std::env::var("SOAK_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);

    // Leg A — threshold >= cohort: every request must be served, with
    // all `n` connections demonstrably open at once.
    let server = spawn_server(n, 8 << 10);
    let mut cfg = LoadConfig::concurrent(n, "blob");
    cfg.deadline = Duration::from_secs(300);
    let report = run_load(server.addr, &cfg).expect("load run");

    // Operator's view, scraped live before shutdown.
    let scrape = http_get(server.metrics_addr, "/metrics").expect("scrape");
    let totals = server.stop();

    assert_eq!(
        report.completed() as usize,
        n,
        "zero lost requests: every fetcher must terminate in a bucket"
    );
    assert_eq!(report.io_errors, 0, "no connection may die unexplained");
    assert_eq!(report.data as usize, n, "all data, threshold not reached");
    assert_eq!(report.busy, 0);
    assert_eq!(report.bytes, n as u64 * (8 << 10));
    assert_eq!(totals.served as usize, n, "server agrees to the digit");
    assert_eq!(totals.busy, 0);
    assert_eq!(totals.not_found, 0);
    assert!(
        totals.peak_open >= n,
        "cohort must be concurrently connected (peak {} < {n})",
        totals.peak_open
    );
    assert_eq!(
        metric(&scrape, "rtnet_served "),
        Some(n as f64),
        "scrape must carry the served total:\n{scrape}"
    );
    let p99 =
        metric(&scrape, "rtnet_poll_serve_us{quantile=\"0.99\"} ").expect("p99 series in scrape");
    let count = metric(&scrape, "rtnet_poll_serve_us_count ").expect("count series");
    assert_eq!(count as usize, n);
    assert!(
        p99.is_finite() && p99 > 0.0 && p99 < 60_000_000.0,
        "p99 serve latency must be bounded, got {p99}µs"
    );

    // Leg B — threshold 0: every request is a Busy rejection, counted
    // exactly, on both sides, at full cohort size.
    let server = spawn_server(0, 16);
    let mut cfg = LoadConfig::concurrent(n, "blob");
    cfg.deadline = Duration::from_secs(300);
    let report = run_load(server.addr, &cfg).expect("load run");
    let totals = server.stop();

    assert_eq!(report.completed() as usize, n, "zero lost requests");
    assert_eq!(report.io_errors, 0);
    assert_eq!(
        report.busy as usize, n,
        "threshold rejections accounted exactly (client side)"
    );
    assert_eq!(report.data, 0);
    assert_eq!(
        totals.busy as usize, n,
        "threshold rejections accounted exactly (server side)"
    );
    assert_eq!(totals.served, 0);
}
