//! Fidelity bridge: the *real* runtime and the *simulated* runtime must
//! agree — on data (every executor produces the oracle's output) and on
//! volumes (the simulator's transfer sizes track the real application's
//! measured partition sizes).

use std::sync::Arc;
use volunteer_mr::core::SizingModel;
use volunteer_mr::mapreduce::apps::{synth_log, DistGrep, InvertedIndex, UrlVisits, WordCount};
use volunteer_mr::mapreduce::{
    run_local_parallel, run_sequential, split_input, CorpusGen, CorpusSpec, HashPartitioner,
    JobSpec, MapReduceApp,
};
use volunteer_mr::rtnet::{run_cluster, ClusterConfig};

fn corpus(bytes: usize) -> Vec<u8> {
    CorpusGen::new(&CorpusSpec::default()).generate(bytes)
}

#[test]
fn tcp_cluster_equals_oracle_wordcount() {
    let data = Arc::new(corpus(300_000));
    let cfg = ClusterConfig::new(5, JobSpec::new("wc", 5, 3));
    let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
    assert_eq!(report.output, run_sequential(&WordCount, &[&data[..]]));
}

#[test]
fn tcp_cluster_equals_oracle_grep() {
    let data = Arc::new(synth_log(200_000, 200, 3));
    let app = Arc::new(DistGrep::new("/page/1"));
    let cfg = ClusterConfig::new(4, JobSpec::new("g", 4, 2));
    let report = run_cluster(app.clone(), data.clone(), &cfg);
    assert_eq!(report.output, run_sequential(app.as_ref(), &[&data[..]]));
}

#[test]
fn tcp_cluster_equals_oracle_urlvisits() {
    let data = Arc::new(synth_log(200_000, 150, 5));
    let cfg = ClusterConfig::new(4, JobSpec::new("u", 3, 2));
    let report = run_cluster(Arc::new(UrlVisits), data.clone(), &cfg);
    assert_eq!(report.output, run_sequential(&UrlVisits, &[&data[..]]));
}

#[test]
fn tcp_cluster_equals_oracle_invindex() {
    // doc-id \t text lines.
    let text = corpus(100_000);
    let mut log = String::new();
    for (i, line) in String::from_utf8_lossy(&text).lines().enumerate() {
        if !line.trim().is_empty() {
            log.push_str(&format!("d{i}\t{line}\n"));
        }
    }
    let data = Arc::new(log.into_bytes());
    let cfg = ClusterConfig::new(4, JobSpec::new("ix", 4, 2));
    let report = run_cluster(Arc::new(InvertedIndex), data.clone(), &cfg);
    assert_eq!(report.output, run_sequential(&InvertedIndex, &[&data[..]]));
}

#[test]
fn threaded_executor_equals_oracle_all_apps() {
    let data = corpus(250_000);
    let job = JobSpec::new("x", 7, 4);
    assert_eq!(
        run_local_parallel(&WordCount, &data, &job, 4),
        run_sequential(&WordCount, &[&data[..]])
    );
    let log = synth_log(250_000, 100, 11);
    assert_eq!(
        run_local_parallel(&UrlVisits, &log, &job, 4),
        run_sequential(&UrlVisits, &[&log[..]])
    );
    let g = DistGrep::new("/page/2");
    assert_eq!(
        run_local_parallel(&g, &log, &job, 4),
        run_sequential(&g, &[&log[..]])
    );
}

/// The sizing model the simulator uses is *calibrated* from the real
/// application; verify the calibrated volumes predict the real per-map
/// partition sizes within a reasonable tolerance.
#[test]
fn sizing_model_tracks_real_partition_sizes() {
    let data = corpus(1 << 20);
    let sizing = SizingModel::calibrate(&WordCount, &data[..256 << 10]);
    let n_maps = 4;
    let n_reduces = 3;
    let part = HashPartitioner::new(n_reduces);
    let ranges = split_input(&WordCount, &data, n_maps);
    let chunk_bytes = (data.len() / n_maps) as u64;
    let predicted = sizing.partition_bytes(chunk_bytes, n_reduces) as f64;
    for r in &ranges {
        for p in 0..n_reduces {
            // The paper's pipeline is combiner-less; our real map task
            // applies the word-count combiner, so the *encoded* size is
            // an under-estimate of the raw stream. Compare against the
            // raw (uncombined) stream size instead.
            let mut raw = 0usize;
            let mut line = String::new();
            WordCount.map(&data[r.clone()], &mut |k, v| {
                if part.partition_str(&k) == p {
                    line.clear();
                    WordCount.encode(&k, &v, &mut line);
                    raw += line.len();
                }
            });
            let err = (raw as f64 - predicted).abs() / predicted;
            assert!(
                err < 0.25,
                "partition size prediction off by {:.0}%: predicted {predicted}, real {raw}",
                err * 100.0
            );
        }
    }
}

/// Replication quorum on the real cluster rejects a byzantine worker's
/// corrupted partitions, matching the simulator's validator semantics.
#[test]
fn byzantine_rejected_in_both_worlds() {
    // Real cluster.
    let data = Arc::new(corpus(150_000));
    let mut cfg = ClusterConfig::new(5, JobSpec::new("wc", 3, 2));
    cfg.byzantine = vec![1];
    let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
    assert_eq!(report.output, run_sequential(&WordCount, &[&data[..]]));

    // Simulator.
    use volunteer_mr::core::{run_experiment, ExperimentConfig, MrMode};
    use volunteer_mr::vcore::{ClientId, FaultPlan};
    let mut sim = ExperimentConfig::table1(8, 4, 2, MrMode::InterClient);
    sim.input_bytes = 64 << 20;
    sim.fault = FaultPlan {
        byzantine: vec![ClientId(1)],
        corruption_prob: 1.0,
        ..FaultPlan::default()
    };
    let out = run_experiment(&sim).expect("valid experiment config");
    assert!(
        out.all_done,
        "simulated job must survive a byzantine minority"
    );
}
