//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` stub's `Serialize`/`Deserialize` are marker
//! traits (nothing in this workspace actually serializes — the derives
//! exist so config structs are serialization-*ready*), so the derive
//! only needs to parse the type's name and emit empty impls. Done with
//! raw `proc_macro` token iteration: no syn/quote available offline.
//!
//! `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier immediately following the `struct`/`enum`
/// keyword, skipping attributes and visibility modifiers.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                match iter.next() {
                    Some(TokenTree::Ident(name)) => {
                        let mut after = iter.peekable();
                        if let Some(TokenTree::Punct(p)) = after.peek() {
                            if p.as_char() == '<' {
                                panic!(
                                    "vendored serde_derive stub does not support generic types \
                                     (deriving on `{name}`)"
                                );
                            }
                        }
                        return name.to_string();
                    }
                    other => panic!("expected type name after `{s}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde derive applied to something that is not a struct or enum");
}

/// Derives the stub `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derives the stub `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
