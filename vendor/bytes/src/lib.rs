//! Offline stand-in for the `bytes` crate (API subset).
//!
//! [`Bytes`] is a cheaply clonable immutable byte buffer
//! (`Arc<Vec<u8>>` + range instead of upstream's refcounted slices);
//! [`BytesMut`] is a growable buffer with a read cursor so the
//! big-endian `get_*` / `put_*` accessors of [`Buf`] / [`BufMut`] work
//! as upstream. Only the methods this workspace calls are provided.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied; upstream borrows, but the
    /// observable behavior is identical).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copies a byte slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Shortens the buffer to at most `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.end = self.start + len;
        }
    }

    /// A sub-slice sharing the same backing storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(32) {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        if self.len() > 32 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer with a read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read position for the `Buf` accessors.
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes of preallocated space.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }

    /// Copies the unread contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf[self.pos..].to_vec()
    }

    /// Splits off and returns the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = BytesMut {
            buf: self.buf[self.pos..self.pos + at].to_vec(),
            pos: 0,
        };
        self.pos += at;
        head
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.to_vec())
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut {
            buf: s.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read-side accessors (big-endian), subset of `bytes::Buf`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `n` bytes into `out`. Panics if not enough remain.
    fn copy_to_slice(&mut self, out: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, out: &mut [u8]) {
        assert!(out.len() <= self.len(), "buffer underflow");
        out.copy_from_slice(&self.buf[self.pos..self.pos + out.len()]);
        self.pos += out.len();
    }
}

/// Write-side accessors (big-endian), subset of `bytes::BufMut`.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u32(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_u16(513);
        b.put_u64(u64::MAX - 1);
        b.put_slice(b"xyz");
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 513);
        assert_eq!(b.get_u64(), u64::MAX - 1);
        assert_eq!(b.remaining(), 3);
        assert_eq!(b.split_to(2).to_vec(), b"xy");
        assert_eq!(b.to_vec(), b"z");
    }

    #[test]
    fn bytes_split_and_slice_share_data() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        assert_eq!(&b.slice(1..6)[..], b"world");
    }

    #[test]
    fn freeze_keeps_unread_part_only() {
        let mut b = BytesMut::from(&b"abcdef"[..]);
        let _ = b.get_u16();
        assert_eq!(&b.freeze()[..], b"cdef");
    }
}
