//! Offline stand-in for `criterion` (API subset).
//!
//! Provides the group/bench API the workspace's benches use and prints
//! one line per benchmark: mean wall-clock per iteration and derived
//! throughput. No statistical analysis, warm-up tuning, or HTML reports
//! — each benchmark runs a calibration pass, then `sample_size` timed
//! samples of an adaptively chosen iteration count.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput basis for reporting rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to the closure; `iter` times the workload.
pub struct Bencher {
    iters_hint: u64,
    samples: usize,
    /// Mean seconds per iteration, filled by `iter`.
    mean_s: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock cost.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: find an iteration count that runs ≥ ~5 ms.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(5) || iters >= self.iters_hint {
                break;
            }
            iters = (iters * 4).min(self.iters_hint);
        }
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let s = t0.elapsed().as_secs_f64() / iters as f64;
            total += s;
            best = best.min(s);
        }
        self.mean_s = total / self.samples as f64;
    }
}

fn human_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn report(path: &str, mean_s: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_s > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean_s)
        }
        Some(Throughput::Bytes(n)) if mean_s > 0.0 => {
            format!("  {:>12.1} MiB/s", n as f64 / mean_s / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench {path:<48} {:>12}{rate}", human_time(mean_s));
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (criterion default is 100; the
    /// stub default is 10 to keep offline runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        let mut b = Bencher {
            iters_hint: 1 << 20,
            samples: self.sample_size,
            mean_s: 0.0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            b.mean_s,
            self.throughput,
        );
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        let mut b = Bencher {
            iters_hint: 1 << 20,
            samples: self.sample_size,
            mean_s: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.into()),
            b.mean_s,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op; criterion compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a plain closure outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        let mut b = Bencher {
            iters_hint: 1 << 20,
            samples: 10,
            mean_s: 0.0,
        };
        f(&mut b);
        report(&name.into(), b.mean_s, None);
        self
    }
}

/// Declares a benchmark harness function running the listed benches.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub/demo");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    criterion_group!(demo_group, sample_bench);

    #[test]
    fn harness_runs() {
        demo_group();
        let mut c = Criterion::default();
        c.bench_function("stub/top-level", |b| b.iter(|| black_box(2 * 2)));
    }
}
