//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! Implements exactly what this workspace's property tests use:
//!
//! * [`strategy::Strategy`] with numeric ranges, `&str` character-class
//!   regexes (`"[a-e]{1,5}"` shapes), tuples, [`collection::vec`],
//!   `prop_map`, and [`prelude::any`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`] macros;
//! * [`test_runner::TestRunner`] with a deterministic seed, so failures
//!   reproduce exactly across runs (print the case's value; there is no
//!   shrinking — the failing input is reported as generated).

#![warn(missing_docs)]

pub mod strategy {
    //! Input-generation strategies.

    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A source of random test inputs.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// `&str` strategies: a character-class regex of the shape
    /// `[class]{m,n}` (or `{n}`), e.g. `"[a-zA-Z0-9_./-]{0,64}"`.
    /// Generates strings of uniform length in `[m, n]` with uniformly
    /// chosen class members. Other regex features are unsupported and
    /// panic loudly.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
            let len = rng.random_range(lo..=hi);
            (0..len)
                .map(|_| chars[rng.random_range(0..chars.len())])
                .collect()
        }
    }

    /// Parses `[class]{m,n}` / `[class]{n}` into (members, m, n).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut members = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `a-z` range; a trailing or leading `-` is a literal.
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                if a > b {
                    return None;
                }
                members.extend((a..=b).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                members.push(class[i]);
                i += 1;
            }
        }
        if members.is_empty() {
            return None;
        }
        let tail = &rest[close + 1..];
        let (lo, hi) = if tail.is_empty() {
            // Bare `[class]` matches exactly one character.
            (1, 1)
        } else {
            let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
            match counts.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = counts.trim().parse().ok()?;
                    (n, n)
                }
            }
        };
        if lo > hi {
            return None;
        }
        Some((members, lo, hi))
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A/0);
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
        (A/0, B/1, C/2, D/3, E/4, F/5);
    );

    /// Types with a canonical "any value" strategy (subset of
    /// `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> $t {
                    rng.random::<$t>()
                }
            }
        )*};
    }

    arb_int!(u8, u32, u64, usize, bool);

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Produces arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi_exclusive: usize,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy {
            element,
            lo: size.start,
            hi_exclusive: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.random_range(self.lo..self.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test execution.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration (subset of proptest's `Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The input was rejected by `prop_assume!`; not a failure.
        Reject(String),
        /// The property failed for this input.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// A property failure, carrying the failing input's debug rendering.
    #[derive(Debug)]
    pub struct TestError {
        /// What failed.
        pub message: String,
        /// `Debug` rendering of the input that failed.
        pub input: String,
    }

    impl std::fmt::Display for TestError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}; input: {}", self.message, self.input)
        }
    }

    /// Deterministic property-test runner (fixed seed, no shrinking).
    pub struct TestRunner {
        config: Config,
        rng: SmallRng,
    }

    impl TestRunner {
        /// Creates a runner with `config` and the deterministic seed.
        pub fn new(config: Config) -> Self {
            TestRunner {
                config,
                rng: SmallRng::seed_from_u64(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Runs `test` against `config.cases` generated inputs. Rejected
        /// cases (`prop_assume!`) are retried with fresh inputs, up to
        /// 10× the case budget.
        pub fn run<S, F>(&mut self, strategy: &S, test: F) -> Result<(), TestError>
        where
            S: Strategy,
            S::Value: std::fmt::Debug + Clone,
            F: Fn(S::Value) -> TestCaseResult,
        {
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = self.config.cases.saturating_mul(10).max(10);
            while accepted < self.config.cases && attempts < max_attempts {
                attempts += 1;
                let input = strategy.generate(&mut self.rng);
                let rendered = format!("{input:?}");
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(input.clone())))
                {
                    Ok(Ok(())) => accepted += 1,
                    Ok(Err(TestCaseError::Reject(_))) => {}
                    Ok(Err(TestCaseError::Fail(msg))) => {
                        return Err(TestError {
                            message: msg,
                            input: rendered,
                        });
                    }
                    Err(panic) => {
                        let msg = panic
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "test panicked".to_string());
                        return Err(TestError {
                            message: format!("panic: {msg}"),
                            input: rendered,
                        });
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) {…} }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = ($($strat,)+);
                let mut runner = $crate::test_runner::TestRunner::new(
                    $crate::test_runner::Config::default(),
                );
                runner
                    .run(&strategy, |($($arg,)+)| {
                        $body
                        Ok(())
                    })
                    .unwrap_or_else(|e| panic!("property {} failed: {}", stringify!($name), e));
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Rejects the current case (retried with new input) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn class_pattern_generation() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-cx]{1,5}".generate(&mut rng);
            assert!((1..=5).contains(&s.len()));
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | 'x')));
            let t = "[a-zA-Z0-9_./-]{0,64}".generate(&mut rng);
            assert!(t.len() <= 64);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_./-".contains(c)));
        }
    }

    #[test]
    fn runner_reports_failure_input() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::Config { cases: 50 });
        let err = runner
            .run(&(0u64..1000,), |(x,)| {
                prop_assert!(x < 900, "x too big: {}", x);
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.contains("too big"), "{err}");
    }

    #[test]
    fn rejection_is_not_failure() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::Config { cases: 20 });
        runner
            .run(&(0u64..10,), |(x,)| {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
                Ok(())
            })
            .unwrap();
    }

    proptest! {
        /// The macro form itself works end to end.
        #[test]
        fn macro_vec_and_tuple(
            xs in crate::collection::vec(0u32..100, 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 100));
            let _ = flag;
        }

        /// prop_map composes.
        #[test]
        fn macro_prop_map(s in crate::collection::vec("[a-b]{1,3}", 0..5)
            .prop_map(|v| v.join(","))) {
            prop_assert!(s.chars().all(|c| matches!(c, 'a' | 'b' | ',')));
        }
    }
}
