//! Offline stand-in for `serde`.
//!
//! Nothing in this workspace serializes at runtime — the derives mark
//! config structs as serialization-ready for a future wire format — so
//! `Serialize`/`Deserialize` are marker traits here and the derive
//! macros (re-exported from the vendored `serde_derive`) emit empty
//! impls. Swapping back to real serde is a Cargo.toml change only.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that could be serialized (stub; no methods).
pub trait Serialize {}

/// Marker for types that could be deserialized (stub; no methods).
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
mod tests {
    // The derive macros are exercised by the workspace crates that use
    // them; here just assert the traits are object-safe enough to name.
    #[test]
    fn traits_nameable() {
        fn _takes<T: crate::Serialize + for<'de> crate::Deserialize<'de>>() {}
    }
}
