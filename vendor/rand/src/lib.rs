//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the narrow slice of `rand` it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random`] and
//! [`Rng::random_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — the same family real `SmallRng` uses on 64-bit targets —
//! so statistical quality is comparable; exact streams differ from the
//! upstream crate, which is fine because every consumer seeds explicitly
//! and only relies on *self*-consistency for reproducibility.

#![warn(missing_docs)]

/// Random number generator trait: the subset of `rand::Rng` in use.
pub trait Rng {
    /// Next raw 64-bit value from the underlying generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the subset of `rand`'s `StandardUniform` distribution in use).
pub trait Standard {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled to produce a `T` (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, n)` via Lemire-style rejection.
fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        /// Expands the seed through SplitMix64 so similar seeds yield
        /// uncorrelated states (all-zero state is unreachable).
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!((10..20u64).contains(&r.random_range(10u64..20)));
            let i = r.random_range(0..=4usize);
            assert!(i <= 4);
            let f = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_mean_plausible() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.random_range(0u64..10)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
    }
}
