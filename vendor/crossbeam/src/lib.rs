//! Offline stand-in for `crossbeam` (API subset).
//!
//! * [`scope`] — scoped threads, implemented over `std::thread::scope`.
//!   Child panics surface as an `Err` from `scope`, matching crossbeam.
//! * [`channel`] — unbounded MPSC channel over `std::sync::mpsc` with
//!   crossbeam's `unbounded()` constructor and error types.

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope for spawning borrowing threads (subset of
/// `crossbeam::thread::Scope`).
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope itself so
    /// it can spawn further threads, as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Handle to a scoped thread (joined automatically at scope exit).
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned; all
/// threads are joined before `scope` returns. Returns `Err` if the
/// closure or any child thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod channel {
    //! Unbounded channel (subset of `crossbeam::channel`).

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half; clonable.
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors if all receivers are gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicUsize::new(0);
        let r = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            "done"
        });
        assert_eq!(r.unwrap(), "done");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn child_panic_reported_as_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn channel_roundtrip_multi_producer() {
        let (tx, rx) = channel::unbounded::<usize>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap())
            .join()
            .unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert!(rx.recv().is_err(), "all senders dropped");
    }
}
