//! Offline stand-in for `parking_lot` built on `std::sync`.
//!
//! Exposes `Mutex` / `RwLock` with parking_lot's ergonomics: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s.
//! Poisoning is recovered (`into_inner` of the poison error) because
//! parking_lot has no poisoning concept.

#![warn(missing_docs)]

use std::sync;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual-exclusion lock with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader–writer lock with non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
