//! Shard-count invariance for the partitioned server core.
//!
//! Sharding is a pure performance refactor: every cross-shard
//! iteration merges in global id order, so for *any* seed, geometry,
//! transfer mode and fault plan, an experiment run on 2/4/8 shards
//! must be bit-identical to the single-shard (pre-sharding) engine —
//! the Table I row, the phase-time f64 bits, every engine counter,
//! the simulated finish time, and the full WAL byte stream.
//!
//! Full experiment runs are too slow for the default 256-case budget,
//! so this drives the property runner directly with a small budget;
//! the runner's seed is fixed, so the sampled configurations are the
//! same on every run.

use proptest::prelude::*;
use proptest::test_runner::{Config, TestCaseError, TestRunner};
use vmr_core::{format_row, run_experiment, ExperimentConfig, ExperimentOutcome, MrMode};
use vmr_desim::SimDuration;
use vmr_durable::DurabilityPlan;
use vmr_vcore::{ClientId, FaultPlan};

/// Everything an outcome can disagree on, in comparable form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    row: String,
    map_bits: u64,
    reduce_bits: u64,
    total_bits: u64,
    rpcs: u64,
    empty_replies: u64,
    grants: u64,
    reports: u64,
    finished_at: vmr_desim::SimTime,
    all_done: bool,
    wal: Vec<u8>,
}

fn fingerprint(out: &ExperimentOutcome, nodes: usize) -> Fingerprint {
    let r = &out.reports[0];
    Fingerprint {
        row: format_row(nodes, 3, 2, r),
        map_bits: r.map_s.to_bits(),
        reduce_bits: r.reduce_s.to_bits(),
        total_bits: r.total_s.to_bits(),
        rpcs: out.stats.rpcs,
        empty_replies: out.stats.empty_replies,
        grants: out.stats.grants,
        reports: out.stats.reports,
        finished_at: out.finished_at,
        all_done: out.all_done,
        wal: out.wal.clone().expect("durable run must carry a WAL"),
    }
}

#[test]
fn sharded_engine_is_bit_identical_for_any_seed_and_fault_plan() {
    let mut runner = TestRunner::new(Config { cases: 6 });
    let strat = (
        any::<u64>(),  // experiment seed
        4usize..7,     // volunteer nodes
        any::<bool>(), // inter-client vs server relay
        any::<bool>(), // inject a byzantine host + a dropout
        60u64..900,    // dropout arming time
    );
    runner
        .run(&strat, |(seed, nodes, interclient, faulty, dropout_s)| {
            let mode = if interclient {
                MrMode::InterClient
            } else {
                MrMode::ServerRelay
            };
            let mut cfg = ExperimentConfig::table1(nodes, 3, 2, mode);
            cfg.seed = seed;
            cfg.input_bytes = 8 << 20;
            // Journal every run so the WAL byte streams are compared too.
            cfg.durable = DurabilityPlan::new(120.0);
            if faulty {
                cfg.fault = FaultPlan {
                    byzantine: vec![ClientId((seed % nodes as u64) as u32)],
                    corruption_prob: 1.0,
                    dropouts: vec![(
                        ClientId(((seed >> 8) % nodes as u64) as u32),
                        SimDuration::from_secs(dropout_s),
                    )],
                    ..FaultPlan::none()
                };
            }
            let base = fingerprint(&run_experiment(&cfg).expect("valid config"), nodes);
            for shards in [2usize, 4, 8] {
                let mut sharded = cfg.clone();
                sharded.shards = shards;
                let got = fingerprint(&run_experiment(&sharded).expect("valid config"), nodes);
                if got != base {
                    return Err(TestCaseError::fail(format!(
                        "{shards} shards diverged from 1 shard: wal {} vs {} bytes, \
                         rpcs {} vs {}, row {:?} vs {:?}",
                        got.wal.len(),
                        base.wal.len(),
                        got.rpcs,
                        base.rpcs,
                        got.row,
                        base.row,
                    )));
                }
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("{e}"));
}
