//! Differential equivalence of the extracted Baseline shuffle strategy
//! against the preserved pre-extraction transfer path.
//!
//! `StrategyKind::Legacy` runs `legacy_peer_download`, a verbatim copy
//! of the engine's pre-extraction peer-transfer code, kept around as an
//! executable specification. For *any* seed, geometry, transfer mode
//! and fault plan (byzantine hosts, dropouts, flaky peer transfers),
//! the default strategy-driven Baseline must produce a bit-identical
//! run: the Table I row, phase-time f64 bits, engine counters, the
//! `shuffle.*` byte counters, the simulated finish time, and the full
//! WAL byte stream.
//!
//! Full experiment runs are too slow for the default 256-case budget,
//! so this drives the property runner directly with a small budget;
//! the runner's seed is fixed, so the sampled configurations are the
//! same on every run.

use proptest::prelude::*;
use proptest::test_runner::{Config, TestCaseError, TestRunner};
use vmr_core::{
    format_row, run_experiment, ExperimentConfig, ExperimentOutcome, MrMode, ShuffleConfig,
};
use vmr_desim::SimDuration;
use vmr_durable::DurabilityPlan;
use vmr_vcore::{ClientId, FaultPlan};

/// Everything an outcome can disagree on, in comparable form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    row: String,
    map_bits: u64,
    reduce_bits: u64,
    total_bits: u64,
    rpcs: u64,
    empty_replies: u64,
    grants: u64,
    reports: u64,
    peer_failures: u64,
    server_fallbacks: u64,
    bytes_p2p: u64,
    bytes_server_fallback: u64,
    finished_at: vmr_desim::SimTime,
    all_done: bool,
    wal: Vec<u8>,
}

fn fingerprint(out: &ExperimentOutcome, nodes: usize) -> Fingerprint {
    let r = &out.reports[0];
    let snap = out.obs.snapshot();
    Fingerprint {
        row: format_row(nodes, 3, 2, r),
        map_bits: r.map_s.to_bits(),
        reduce_bits: r.reduce_s.to_bits(),
        total_bits: r.total_s.to_bits(),
        rpcs: out.stats.rpcs,
        empty_replies: out.stats.empty_replies,
        grants: out.stats.grants,
        reports: out.stats.reports,
        peer_failures: out.stats.peer_failures,
        server_fallbacks: out.stats.server_fallbacks,
        bytes_p2p: snap.counter("shuffle.bytes_p2p"),
        bytes_server_fallback: snap.counter("shuffle.bytes_server_fallback"),
        finished_at: out.finished_at,
        all_done: out.all_done,
        wal: out.wal.clone().expect("durable run must carry a WAL"),
    }
}

#[test]
fn baseline_strategy_is_bit_identical_to_legacy_path() {
    let mut runner = TestRunner::new(Config { cases: 6 });
    let strat = (
        any::<u64>(),  // experiment seed
        4usize..7,     // volunteer nodes
        any::<bool>(), // inter-client vs server relay
        any::<bool>(), // inject byzantine + dropout + flaky transfers
        60u64..900,    // dropout arming time
    );
    runner
        .run(&strat, |(seed, nodes, interclient, faulty, dropout_s)| {
            let mode = if interclient {
                MrMode::InterClient
            } else {
                MrMode::ServerRelay
            };
            let mut cfg = ExperimentConfig::table1(nodes, 3, 2, mode);
            cfg.seed = seed;
            cfg.input_bytes = 8 << 20;
            // Journal every run so the WAL byte streams are compared too.
            cfg.durable = DurabilityPlan::new(120.0);
            if faulty {
                cfg.fault = FaultPlan {
                    byzantine: vec![ClientId((seed % nodes as u64) as u32)],
                    corruption_prob: 1.0,
                    // Flaky transfers exercise retry + server fallback.
                    peer_transfer_failure_prob: 0.3,
                    dropouts: vec![(
                        ClientId(((seed >> 8) % nodes as u64) as u32),
                        SimDuration::from_secs(dropout_s),
                    )],
                    ..FaultPlan::none()
                };
            }
            let base = fingerprint(&run_experiment(&cfg).expect("valid config"), nodes);
            let mut legacy_cfg = cfg.clone();
            legacy_cfg.shuffle = ShuffleConfig::legacy_reference();
            let got = fingerprint(&run_experiment(&legacy_cfg).expect("valid config"), nodes);
            if got != base {
                return Err(TestCaseError::fail(format!(
                    "baseline diverged from the legacy transfer path: \
                     wal {} vs {} bytes, rpcs {} vs {}, p2p {} vs {}, row {:?} vs {:?}",
                    base.wal.len(),
                    got.wal.len(),
                    base.rpcs,
                    got.rpcs,
                    base.bytes_p2p,
                    got.bytes_p2p,
                    base.row,
                    got.row,
                )));
            }
            Ok(())
        })
        .unwrap_or_else(|e| panic!("{e}"));
}
