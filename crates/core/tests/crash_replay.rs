//! Crash-replay correctness for the durability subsystem.
//!
//! 1. **Crash at every frame boundary**: step a journaled BOINC-MR run
//!    one event at a time, capturing the canonical state sections at
//!    every commit boundary; then recover every prefix of the final log
//!    (every frame end = a crash point, plus torn mid-frame cuts) and
//!    assert the materialized state equals what the live server held at
//!    that log position.
//! 2. **Resume bit-identity**: crash a Table I style experiment at a
//!    record count and at a sim-time, resume each from its WAL image,
//!    and assert the resumed outcome is bit-identical to an
//!    uninterrupted run.

use std::collections::HashMap;
use vmr_core::config::{MrJobConfig, MrMode};
use vmr_core::experiment::{format_row, run_experiment, ExperimentConfig, ExperimentOutcome};
use vmr_core::recover::{resume_experiment, RecoveredServerState};
use vmr_core::MrPolicy;
use vmr_desim::{SimDuration, SimTime};
use vmr_durable::{frame_ends, sink_image, CompactionPolicy, CrashPlan, DurabilityPlan, Journal};
use vmr_netsim::HostLink;
use vmr_vcore::{ClientId, Engine, FaultPlan, HostProfile, TrustConfig};

/// Asserts a resumed outcome reproduces the uninterrupted baseline
/// bit-for-bit: Table I row, phase-time f64 bits, counters, end time.
fn assert_bit_identical(resumed: &ExperimentOutcome, base: &ExperimentOutcome, ctx: &str) {
    assert!(resumed.all_done && !resumed.crashed, "{ctx}");
    assert_eq!(
        format_row(5, 3, 2, &resumed.reports[0]),
        format_row(5, 3, 2, &base.reports[0]),
        "{ctx}"
    );
    assert_eq!(
        resumed.reports[0].total_s.to_bits(),
        base.reports[0].total_s.to_bits(),
        "{ctx}"
    );
    assert_eq!(
        resumed.reports[0].map_s.to_bits(),
        base.reports[0].map_s.to_bits(),
        "{ctx}"
    );
    assert_eq!(
        resumed.reports[0].reduce_s.to_bits(),
        base.reports[0].reduce_s.to_bits(),
        "{ctx}"
    );
    assert_eq!(resumed.stats.rpcs, base.stats.rpcs, "{ctx}");
    assert_eq!(resumed.finished_at, base.finished_at, "{ctx}");
    // The resumed run's own WAL must re-derive the baseline's.
    assert_eq!(
        resumed.wal.as_ref().unwrap(),
        base.wal.as_ref().unwrap(),
        "{ctx}"
    );
}

fn live_sections(eng: &Engine, pol: &MrPolicy) -> Vec<(String, Vec<u8>)> {
    eng.live_sections(pol)
}

#[test]
fn recovered_state_matches_live_at_every_frame_boundary() {
    // A journaled testbed with a byzantine volunteer, so the log covers
    // validation dissent, credit errors and retries — not just the
    // happy path.
    let plan = DurabilityPlan::new(60.0);
    let j = Journal::new(&plan).unwrap();
    let mut eng = Engine::builder(7)
        .journal(j.clone())
        .clients((0..5).map(|_| {
            (
                HostProfile::pc3001(),
                HostLink::symmetric_mbit(100.0, 0.000_5),
            )
        }))
        .build();
    eng.obs.journal.set_enabled(false);
    eng.fault = FaultPlan {
        byzantine: vec![ClientId(4)],
        corruption_prob: 1.0,
        ..FaultPlan::none()
    };
    let mut pol = MrPolicy::new();

    let horizon = SimTime::from_secs(50_000);
    // Committed log length → canonical sections at that boundary.
    let mut boundaries: HashMap<usize, Vec<(String, Vec<u8>)>> = HashMap::new();
    // Cuts inside the very first transaction recover to genesis
    // (`committed_bytes` = 0, nothing to replay).
    boundaries.insert(0, live_sections(&eng, &pol));

    let mut cfg = MrJobConfig::paper_wordcount(3, 2, MrMode::InterClient);
    cfg.input_bytes = 6_000_000;
    pol.submit_job(&mut eng, cfg);
    // Zero-step entry commits the construction-time records (job
    // submission WU inserts) as their own transaction.
    eng.run_until(&mut pol, horizon, |_| true);
    boundaries.insert(j.log_len(), live_sections(&eng, &pol));
    loop {
        let one_shot = {
            let mut fired = false;
            move |_: &Engine| {
                let stop = fired;
                fired = true;
                stop
            }
        };
        if eng.run_until(&mut pol, horizon, one_shot) == 0 {
            break;
        }
        boundaries.insert(j.log_len(), live_sections(&eng, &pol));
        // Stop at job completion: past it only idle RPC polls and
        // daemon ticks remain, which would pad the log with thousands
        // of identical snapshots.
        if eng.db.all_wus_terminal() {
            break;
        }
    }
    assert!(eng.db.all_wus_terminal(), "tiny job should finish");
    assert!(j.records() > 50, "expected a rich log, got {}", j.records());

    let log = j.log_bytes();
    assert_eq!(
        j.committed_records(),
        j.records(),
        "idle server: all committed"
    );
    let ends = frame_ends(&log).unwrap();
    assert!(ends.len() > 50);

    let mut snapshot_seeded = 0u32;
    let mut check = |cut: usize| {
        let rec = RecoveredServerState::from_log(&log[..cut]).unwrap();
        let want = boundaries
            .get(&rec.committed_bytes)
            .unwrap_or_else(|| panic!("no boundary captured at {}", rec.committed_bytes));
        assert_eq!(&rec.encode_sections(), want, "cut at {cut}");
        if rec.from_snapshot {
            snapshot_seeded += 1;
        }
    };
    // Every frame boundary is a crash point…
    for &cut in &ends {
        check(cut);
    }
    // …and torn mid-frame tails must recover to the preceding commit.
    for &cut in &ends {
        if cut > ends[0] {
            check(cut - 1);
        }
    }
    assert!(
        snapshot_seeded > 0,
        "5 s cadence must have produced committed snapshots"
    );

    // The final image reproduces the live end state exactly.
    let rec = RecoveredServerState::from_log(&log).unwrap();
    assert_eq!(rec.encode_sections(), live_sections(&eng, &pol));
    assert_eq!(rec.committed_records, j.records());
    assert_eq!(rec.tracker.jobs.len(), 1);
    assert_eq!(rec.tracker.jobs[0].phase, vmr_core::Phase::Done);
}

#[test]
fn resumed_experiment_is_bit_identical_to_uninterrupted() {
    let mut cfg = ExperimentConfig::table1(5, 3, 2, MrMode::InterClient);
    cfg.input_bytes = 32 << 20;
    cfg.durable = DurabilityPlan::new(120.0);

    let base = run_experiment(&cfg).expect("valid experiment config");
    assert!(base.all_done && !base.crashed);
    let base_log = base.wal.as_ref().unwrap();
    let full = RecoveredServerState::from_log(base_log).unwrap();
    assert!(full.committed_records > 0);

    let crashes = [
        CrashPlan::after_records(full.committed_records / 2),
        CrashPlan::at_us(base.finished_at.as_micros() / 2),
    ];
    for crash in crashes {
        let mut crashed_cfg = cfg.clone();
        crashed_cfg.durable = cfg.durable.clone().with_crash(crash);
        let dead = run_experiment(&crashed_cfg).expect("valid experiment config");
        assert!(dead.crashed, "{crash:?} never fired");
        assert!(!dead.all_done, "server died mid-job");
        let wal = dead.wal.as_ref().unwrap();

        let resumed = resume_experiment(&crashed_cfg, wal).unwrap();
        assert_bit_identical(&resumed, &base, &format!("{crash:?}"));
    }
}

/// Resume bit-identity with all three durability features on at once —
/// incremental snapshots, a sharded WAL and mirror compaction — and
/// from *both* crash artifacts: the in-memory log and the compacted
/// on-disk mirror a real crashed server would actually be left with.
#[test]
fn resume_bit_identical_with_sharding_incremental_and_compaction() {
    let dir = std::env::temp_dir().join(format!("vmr-crash-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut cfg = ExperimentConfig::table1(5, 3, 2, MrMode::InterClient);
    cfg.input_bytes = 32 << 20;
    cfg.durable = DurabilityPlan::new(120.0)
        .with_incremental(3)
        .with_sharding()
        .with_compaction(CompactionPolicy::max_mirror_bytes(4096));

    let base = run_experiment(&cfg).expect("valid experiment config");
    assert!(base.all_done && !base.crashed);
    let base_log = base.wal.as_ref().unwrap();
    assert!(vmr_durable::frame::is_bundle(base_log), "sharded = bundle");
    let full = RecoveredServerState::from_log(base_log).unwrap();
    assert!(full.committed_seq > 0);

    let crashes = [
        CrashPlan::after_records(full.committed_records / 2),
        CrashPlan::at_us(base.finished_at.as_micros() / 2),
    ];
    for (i, crash) in crashes.into_iter().enumerate() {
        let mut crashed_cfg = cfg.clone();
        crashed_cfg.durable = cfg
            .durable
            .clone()
            .with_crash(crash)
            .with_sink(dir.join(format!("crash-{i}.wal")));
        let dead = run_experiment(&crashed_cfg).expect("valid experiment config");
        assert!(dead.crashed, "{crash:?} never fired");
        let mem = dead.wal.as_ref().unwrap();

        // Resume from the in-memory image (full uncompacted log)…
        let resumed = resume_experiment(&crashed_cfg, mem).unwrap();
        assert_bit_identical(&resumed, &base, &format!("{crash:?} (memory image)"));

        // …and from the on-disk mirror: sharded per-section files,
        // compacted behind committed snapshots. Same boundary, same
        // bit-identical outcome, despite holding fewer frames.
        let disk = sink_image(&crashed_cfg.durable).unwrap();
        assert!(vmr_durable::frame::is_bundle(&disk));
        let from_mem = RecoveredServerState::from_log(mem).unwrap();
        let from_disk = RecoveredServerState::from_log(&disk).unwrap();
        assert_eq!(from_disk.committed_seq, from_mem.committed_seq);
        assert!(
            from_disk.committed_bytes <= from_mem.committed_bytes,
            "compacted mirror cannot be larger than the live log"
        );
        let resumed_disk = resume_experiment(&crashed_cfg, &disk).unwrap();
        assert_bit_identical(&resumed_disk, &base, &format!("{crash:?} (disk mirror)"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Group-commit crash semantics: with coalesced mirror flushes the
/// on-disk image a crashed server leaves behind lags the in-memory
/// log by up to one flush group (the dead server cannot run the final
/// `flush_sink`), recovery from that lagging image lands exactly on
/// the last *flushed* commit boundary — and resuming from either
/// artifact is still bit-identical to an uninterrupted run.
#[test]
fn group_commit_crash_recovers_to_last_flushed_group() {
    let dir = std::env::temp_dir().join(format!("vmr-group-commit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut cfg = ExperimentConfig::table1(5, 3, 2, MrMode::InterClient);
    cfg.input_bytes = 32 << 20;
    cfg.durable = DurabilityPlan::new(120.0).with_group_commit(8);

    let base = run_experiment(&cfg).expect("valid experiment config");
    assert!(base.all_done && !base.crashed);
    let full = RecoveredServerState::from_log(base.wal.as_ref().unwrap()).unwrap();
    assert!(full.committed_records > 0);

    let crashes = [
        CrashPlan::after_records(full.committed_records / 2),
        CrashPlan::at_us(base.finished_at.as_micros() / 2),
    ];
    let mut disk_lagged = 0u32;
    for (i, crash) in crashes.into_iter().enumerate() {
        let mut crashed_cfg = cfg.clone();
        crashed_cfg.durable = cfg
            .durable
            .clone()
            .with_crash(crash)
            .with_sink(dir.join(format!("crash-{i}.wal")));
        let dead = run_experiment(&crashed_cfg).expect("valid experiment config");
        assert!(dead.crashed, "{crash:?} never fired");
        let mem = dead.wal.as_ref().unwrap();

        // The in-memory image holds everything committed up to the
        // crash; resume from it is the usual bit-identity.
        let resumed = resume_experiment(&crashed_cfg, mem).unwrap();
        assert_bit_identical(&resumed, &base, &format!("group-commit {crash:?} (memory)"));

        // The disk mirror only holds flushed groups: it recovers to a
        // commit boundary no later than the in-memory one, and unless
        // the crash landed exactly on a group boundary, strictly
        // earlier.
        let disk = sink_image(&crashed_cfg.durable).unwrap();
        let from_mem = RecoveredServerState::from_log(mem).unwrap();
        let from_disk = RecoveredServerState::from_log(&disk).unwrap();
        assert!(
            from_disk.committed_records <= from_mem.committed_records,
            "mirror cannot be ahead of the log"
        );
        if from_disk.committed_records < from_mem.committed_records {
            disk_lagged += 1;
        }
        let resumed_disk = resume_experiment(&crashed_cfg, &disk).unwrap();
        assert_bit_identical(
            &resumed_disk,
            &base,
            &format!("group-commit {crash:?} (disk)"),
        );
    }
    assert!(
        disk_lagged > 0,
        "an 8-commit flush group should leave at least one crash image lagging"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-replay with an *active trust ledger*: hosts earn trust, WUs
/// run unreplicated behind quorum overrides, spot-checks and scaled
/// credit grants land in the TRUST/CREDIT WAL sections — and a mid-run
/// crash must still resume to a bit-identical outcome (Table I row,
/// f64 bits, counters, and the resumed WAL itself).
#[test]
fn trust_enabled_crash_resumes_bit_identically() {
    let mut cfg = ExperimentConfig::table1(5, 3, 2, MrMode::InterClient);
    cfg.input_bytes = 32 << 20;
    cfg.durable = DurabilityPlan::new(120.0);
    cfg.trust = {
        let mut t = TrustConfig::enabled();
        t.probation_results = 2;
        t.spot_check_rate = 0.2;
        t
    };

    let base = run_experiment(&cfg).expect("valid experiment config");
    assert!(base.all_done && !base.crashed);
    let full = RecoveredServerState::from_log(base.wal.as_ref().unwrap()).unwrap();
    let observed: u64 = (0..5).map(|h| full.trust.host(h).validated).sum();
    assert!(observed > 0, "the recovered ledger must show activity");
    assert!(
        full.trust.config().enabled,
        "the snapshot-embedded config survives recovery"
    );

    let crashes = [
        CrashPlan::after_records(full.committed_records / 2),
        CrashPlan::at_us(base.finished_at.as_micros() / 2),
    ];
    for crash in crashes {
        let mut crashed_cfg = cfg.clone();
        crashed_cfg.durable = cfg.durable.clone().with_crash(crash);
        let dead = run_experiment(&crashed_cfg).expect("valid experiment config");
        assert!(dead.crashed, "{crash:?} never fired");
        let resumed = resume_experiment(&crashed_cfg, dead.wal.as_ref().unwrap()).unwrap();
        assert_bit_identical(&resumed, &base, &format!("trust {crash:?}"));
    }
}

/// Crash-replay with an *active swarm shuffle*: chunked multi-source
/// fetches are in flight mid-reduce, the fetch plan is journaled as
/// `MrShufflePlanned`, and a crash in the middle of the reduce phase
/// must still resume to a bit-identical outcome. The swarm transfer
/// state itself is client-side and rebuilt by re-driving the run from
/// t=0, so only the tracker-side plan needs the WAL.
#[test]
fn swarm_shuffle_crash_resumes_bit_identically() {
    let mut cfg = ExperimentConfig::table1(5, 3, 2, MrMode::InterClient);
    cfg.input_bytes = 32 << 20;
    cfg.durable = DurabilityPlan::new(120.0);
    cfg.shuffle = vmr_core::ShuffleConfig::swarm();

    let base = run_experiment(&cfg).expect("valid experiment config");
    assert!(base.all_done && !base.crashed);
    assert!(
        base.obs.snapshot().counter("shuffle.chunks_swarmed") > 0,
        "the base run must actually swarm"
    );
    let full = RecoveredServerState::from_log(base.wal.as_ref().unwrap()).unwrap();
    assert_eq!(
        full.tracker.jobs[0].shuffle_strategy, 1,
        "the recovered tracker must carry the swarm plan"
    );

    // Crash halfway through the reduce phase — swarm transfers are
    // mid-fetch — and also at the record-count midpoint.
    let reduce_mid_us =
        base.finished_at.as_micros() - (base.reports[0].reduce_s * 500_000.0) as u64;
    let crashes = [
        CrashPlan::at_us(reduce_mid_us),
        CrashPlan::after_records(full.committed_records / 2),
    ];
    for crash in crashes {
        let mut crashed_cfg = cfg.clone();
        crashed_cfg.durable = cfg.durable.clone().with_crash(crash);
        let dead = run_experiment(&crashed_cfg).expect("valid experiment config");
        assert!(dead.crashed, "{crash:?} never fired");
        let resumed = resume_experiment(&crashed_cfg, dead.wal.as_ref().unwrap()).unwrap();
        assert_bit_identical(&resumed, &base, &format!("swarm {crash:?}"));
    }
}

/// CrashPlan × FaultIndex interaction: the crash fires on the same
/// event the fault machinery acts on — at the exact arming instant of
/// a client dropout, and mid-stream in a byzantine-corrupted run —
/// and resume must still be bit-identical. This pins down the
/// ordering contract between fault lookups (which consume rng draws)
/// and the WAL: every fault-driven state change is journaled like any
/// other, so re-driving a faulted run reproduces it exactly.
#[test]
fn crash_on_a_fault_event_resumes_bit_identically() {
    let dropout_s = 120u64;
    let mut cfg = ExperimentConfig::table1(5, 3, 2, MrMode::InterClient);
    cfg.input_bytes = 16 << 20;
    cfg.fault = FaultPlan {
        byzantine: vec![ClientId(2)],
        corruption_prob: 1.0,
        dropouts: vec![(ClientId(4), SimDuration::from_secs(dropout_s))],
        ..FaultPlan::none()
    };
    cfg.durable = DurabilityPlan::new(60.0)
        .with_incremental(2)
        .with_sharding();

    let base = run_experiment(&cfg).expect("valid experiment config");
    assert!(base.all_done && !base.crashed, "faulted base must finish");
    let full = RecoveredServerState::from_log(base.wal.as_ref().unwrap()).unwrap();

    let crashes = [
        // The same sim-instant the dropout arms.
        CrashPlan::at_us(dropout_s * 1_000_000),
        // Mid-stream between byzantine dissent records.
        CrashPlan::after_records(full.committed_records / 3),
    ];
    for crash in crashes {
        let mut crashed_cfg = cfg.clone();
        crashed_cfg.durable = cfg.durable.clone().with_crash(crash);
        let dead = run_experiment(&crashed_cfg).expect("valid experiment config");
        assert!(dead.crashed, "{crash:?} never fired");
        let resumed = resume_experiment(&crashed_cfg, dead.wal.as_ref().unwrap()).unwrap();
        assert_bit_identical(&resumed, &base, &format!("{crash:?}"));
    }
}
