//! Shuffle strategy behaviour over full experiment runs: the
//! `shuffle.*` counter semantics per strategy, the coded byte saving,
//! and coded map placement.

use vmr_core::{run_experiment, ExperimentConfig, MrJobConfig, MrMode, MrPolicy, ShuffleConfig};
use vmr_netsim::HostLink;
use vmr_vcore::{Engine, HostProfile, ProjectConfig};

fn base_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::table1(6, 4, 2, MrMode::InterClient);
    cfg.input_bytes = 16 << 20;
    cfg
}

/// (bytes_p2p, bytes_server_fallback, chunks_swarmed, coded_sends, all_done)
fn counters(cfg: &ExperimentConfig) -> (u64, u64, u64, u64, bool) {
    let out = run_experiment(cfg).expect("valid config");
    let snap = out.obs.snapshot();
    (
        snap.counter("shuffle.bytes_p2p"),
        snap.counter("shuffle.bytes_server_fallback"),
        snap.counter("shuffle.chunks_swarmed"),
        snap.counter("shuffle.coded_sends"),
        out.all_done,
    )
}

#[test]
fn baseline_counts_p2p_bytes_only() {
    let (p2p, _fallback, swarmed, coded, done) = counters(&base_cfg());
    assert!(done);
    assert!(p2p > 0, "inter-client shuffle must move peer bytes");
    assert_eq!(swarmed, 0, "baseline never chunks");
    assert_eq!(coded, 0, "baseline never codes");
}

#[test]
fn swarm_counts_chunks_and_completes() {
    let mut cfg = base_cfg();
    cfg.shuffle = ShuffleConfig::swarm();
    let (p2p, _fallback, swarmed, coded, done) = counters(&cfg);
    assert!(done);
    assert!(p2p > 0, "swarm still moves peer bytes");
    assert!(swarmed > 0, "swarm fetches must be chunked");
    assert_eq!(coded, 0);
}

#[test]
fn coded_counts_sends_and_cuts_peer_bytes() {
    let base = counters(&base_cfg());
    assert!(base.4);
    let mut cfg = base_cfg();
    cfg.shuffle = ShuffleConfig::coded(2);
    let (p2p, _fallback, swarmed, coded, done) = counters(&cfg);
    assert!(done);
    assert!(coded > 0, "the coded plan must record its sends");
    assert_eq!(swarmed, 0, "coded transfers are whole-file, not chunked");
    // r=2 on quorum-2 output: every reducer group of 2 splits each
    // partition, so peer traffic should drop by roughly half — assert
    // the ≥25% floor the ablation promises.
    assert!(
        (p2p as f64) < base.0 as f64 * 0.75,
        "coded should cut peer bytes ≥25%: coded={p2p} baseline={}",
        base.0
    );
}

#[test]
fn coded_redundancy_raises_map_placement() {
    let pc = ProjectConfig {
        shuffle: ShuffleConfig::coded(3),
        ..ProjectConfig::default()
    };
    let mut eng = Engine::builder(1)
        .config(pc)
        .clients((0..8).map(|_| {
            (
                HostProfile::pc3001(),
                HostLink::symmetric_mbit(100.0, 0.000_5),
            )
        }))
        .build();
    let mut pol = MrPolicy::new();
    let mut jc = MrJobConfig::paper_wordcount(3, 2, MrMode::InterClient);
    jc.input_bytes = 6_000_000;
    let ji = pol.submit_job(&mut eng, jc);
    // r=3 needs each map output validated on 3 hosts: the strategy
    // raises the map replication/quorum above the job's configured 2.
    let wu = pol.tracker.jobs[ji].map_wus[0];
    let spec = &eng.db.wu(wu).spec;
    assert_eq!(spec.target_nresults, 3);
    assert_eq!(spec.min_quorum, 3);
}
