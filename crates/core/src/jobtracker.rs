//! The JobTracker — the paper's new server-side module.
//!
//! "JobTracker, a new module on the server, provides information on map
//! or reduce tasks to be given to the client … Information on which
//! users ran map tasks for each MapReduce job is saved on the central
//! database, so the scheduler appends to each reduce result the address
//! (IP and port) of mappers holding output for the same job."

use crate::config::MrJobConfig;
use std::collections::HashMap;
use vmr_desim::SimTime;
use vmr_vcore::{ClientId, WuId};

/// Which MapReduce task a work unit implements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskKind {
    /// Map task `m`.
    Map(usize),
    /// Reduce task `r`.
    Reduce(usize),
}

/// Phase of one job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Map work units outstanding.
    Map,
    /// All maps validated; reduce work units outstanding.
    Reduce,
    /// All reduce work units validated.
    Done,
    /// A work unit failed permanently; the job cannot complete.
    Failed,
}

/// Server-side state of one MapReduce job.
#[derive(Debug)]
pub struct JobState {
    /// Job configuration.
    pub cfg: MrJobConfig,
    /// Map work units, indexed by map task.
    pub map_wus: Vec<WuId>,
    /// Reduce work units, indexed by reduce task (empty until the map
    /// phase completes).
    pub reduce_wus: Vec<WuId>,
    /// Validated holders of each map task's output (the clients whose
    /// results matched the canonical fingerprint).
    pub holders: Vec<Vec<ClientId>>,
    /// Current phase.
    pub phase: Phase,
    /// Map WUs validated so far.
    pub maps_validated: usize,
    /// Reduce WUs validated so far.
    pub reduces_validated: usize,
    /// Index of the map task that validated last (its partitions are the
    /// only ones a prefetching reducer still needs).
    pub last_validated_map: Option<usize>,

    // ----- phase timestamps (Table I semantics) -----
    /// First map task assigned to a client ("phase execution is
    /// considered to start once the first task is assigned").
    pub first_map_assign: Option<SimTime>,
    /// Last accepted map report ("the end of a phase is signaled by the
    /// report or upload of the last output file").
    pub last_map_report: Option<SimTime>,
    /// When the final map WU validated (reduce WUs are created here).
    pub map_phase_validated_at: Option<SimTime>,
    /// First reduce task assigned.
    pub first_reduce_assign: Option<SimTime>,
    /// Last accepted reduce report.
    pub last_reduce_report: Option<SimTime>,
    /// When the final reduce WU validated (job complete).
    pub done_at: Option<SimTime>,
}

impl JobState {
    /// A fresh job in the map phase.
    pub fn new(cfg: MrJobConfig) -> Self {
        let n_maps = cfg.job.n_maps;
        JobState {
            cfg,
            map_wus: Vec::new(),
            reduce_wus: Vec::new(),
            holders: vec![Vec::new(); n_maps],
            phase: Phase::Map,
            maps_validated: 0,
            reduces_validated: 0,
            last_validated_map: None,
            first_map_assign: None,
            last_map_report: None,
            map_phase_validated_at: None,
            first_reduce_assign: None,
            last_reduce_report: None,
            done_at: None,
        }
    }

    /// Map-phase duration per Table I (first assignment → last report).
    pub fn map_time(&self) -> Option<f64> {
        Some(
            self.map_phase_validated_at?
                .saturating_since(self.first_map_assign?)
                .as_secs_f64(),
        )
    }

    /// Reduce-phase duration per Table I.
    pub fn reduce_time(&self) -> Option<f64> {
        Some(
            self.done_at?
                .saturating_since(self.first_reduce_assign?)
                .as_secs_f64(),
        )
    }

    /// Total makespan per Table I ("interval between the scheduling of
    /// the first map task and the return of the last reduce output").
    pub fn total_time(&self) -> Option<f64> {
        Some(
            self.done_at?
                .saturating_since(self.first_map_assign?)
                .as_secs_f64(),
        )
    }
}

/// Registry of all jobs plus the WU → (job, task) reverse index.
#[derive(Debug, Default)]
pub struct JobTracker {
    /// All submitted jobs.
    pub jobs: Vec<JobState>,
    index: HashMap<WuId, (usize, TaskKind)>,
}

impl JobTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        JobTracker::default()
    }

    /// Registers a job, returning its index.
    pub fn add_job(&mut self, state: JobState) -> usize {
        self.jobs.push(state);
        self.jobs.len() - 1
    }

    /// Indexes a work unit as (job, task).
    pub fn index_wu(&mut self, wu: WuId, job: usize, task: TaskKind) {
        self.index.insert(wu, (job, task));
    }

    /// Looks up which job/task a WU implements (None for non-MR WUs —
    /// the `mapreduce` tag check).
    pub fn lookup(&self, wu: WuId) -> Option<(usize, TaskKind)> {
        self.index.get(&wu).copied()
    }

    /// True when every job has finished (validated or failed).
    pub fn all_done(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| matches!(j.phase, Phase::Done | Phase::Failed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MrJobConfig, MrMode};

    fn job() -> JobState {
        JobState::new(MrJobConfig::paper_wordcount(4, 2, MrMode::InterClient))
    }

    #[test]
    fn fresh_job_is_mapping() {
        let j = job();
        assert_eq!(j.phase, Phase::Map);
        assert_eq!(j.holders.len(), 4);
        assert_eq!(j.map_time(), None);
    }

    #[test]
    fn phase_times_compute() {
        let mut j = job();
        j.first_map_assign = Some(SimTime::from_secs(10));
        j.map_phase_validated_at = Some(SimTime::from_secs(110));
        j.first_reduce_assign = Some(SimTime::from_secs(150));
        j.done_at = Some(SimTime::from_secs(250));
        assert_eq!(j.map_time(), Some(100.0));
        assert_eq!(j.reduce_time(), Some(100.0));
        assert_eq!(j.total_time(), Some(240.0));
    }

    #[test]
    fn tracker_index_roundtrip() {
        let mut t = JobTracker::new();
        let ji = t.add_job(job());
        t.index_wu(WuId(7), ji, TaskKind::Map(3));
        assert_eq!(t.lookup(WuId(7)), Some((ji, TaskKind::Map(3))));
        assert_eq!(t.lookup(WuId(8)), None);
        assert!(!t.all_done());
        t.jobs[ji].phase = Phase::Done;
        assert!(t.all_done());
    }
}
