//! The JobTracker — the paper's new server-side module.
//!
//! "JobTracker, a new module on the server, provides information on map
//! or reduce tasks to be given to the client … Information on which
//! users ran map tasks for each MapReduce job is saved on the central
//! database, so the scheduler appends to each reduce result the address
//! (IP and port) of mappers holding output for the same job."

use crate::config::MrJobConfig;
use std::collections::HashMap;
use vmr_desim::SimTime;
use vmr_durable::{Dec, Enc, StateChange, WireError};
use vmr_vcore::{ClientId, WuId};

/// Which MapReduce task a work unit implements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TaskKind {
    /// Map task `m`.
    Map(usize),
    /// Reduce task `r`.
    Reduce(usize),
}

/// Phase of one job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Map work units outstanding.
    Map,
    /// All maps validated; reduce work units outstanding.
    Reduce,
    /// All reduce work units validated.
    Done,
    /// A work unit failed permanently; the job cannot complete.
    Failed,
}

impl Phase {
    /// Wire tag (the `phase` byte of `StateChange::MrPhase`).
    pub fn to_wire(self) -> u8 {
        match self {
            Phase::Map => 0,
            Phase::Reduce => 1,
            Phase::Done => 2,
            Phase::Failed => 3,
        }
    }

    /// Inverse of [`Phase::to_wire`].
    pub fn from_wire(t: u8) -> Result<Self, WireError> {
        match t {
            0 => Ok(Phase::Map),
            1 => Ok(Phase::Reduce),
            2 => Ok(Phase::Done),
            3 => Ok(Phase::Failed),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Server-side state of one MapReduce job.
#[derive(Debug)]
pub struct JobState {
    /// Job configuration.
    pub cfg: MrJobConfig,
    /// Map work units, indexed by map task.
    pub map_wus: Vec<WuId>,
    /// Reduce work units, indexed by reduce task (empty until the map
    /// phase completes).
    pub reduce_wus: Vec<WuId>,
    /// Validated holders of each map task's output (the clients whose
    /// results matched the canonical fingerprint).
    pub holders: Vec<Vec<ClientId>>,
    /// Current phase.
    pub phase: Phase,
    /// Map WUs validated so far.
    pub maps_validated: usize,
    /// Reduce WUs validated so far.
    pub reduces_validated: usize,
    /// Index of the map task that validated last (its partitions are the
    /// only ones a prefetching reducer still needs).
    pub last_validated_map: Option<usize>,
    /// Shuffle strategy the reduce fetch plan was derived with
    /// (`vmr_shuffle::StrategyKind::wire_tag`). Stays 0 (baseline)
    /// until a non-baseline plan is fixed at the map→reduce
    /// transition and journaled as `MrShufflePlanned`.
    pub shuffle_strategy: u8,
    /// Coded reducer group size of the plan (1 = no grouping).
    pub shuffle_group: u32,

    // ----- phase timestamps (Table I semantics) -----
    /// First map task assigned to a client ("phase execution is
    /// considered to start once the first task is assigned").
    pub first_map_assign: Option<SimTime>,
    /// Last accepted map report ("the end of a phase is signaled by the
    /// report or upload of the last output file").
    pub last_map_report: Option<SimTime>,
    /// When the final map WU validated (reduce WUs are created here).
    pub map_phase_validated_at: Option<SimTime>,
    /// First reduce task assigned.
    pub first_reduce_assign: Option<SimTime>,
    /// Last accepted reduce report.
    pub last_reduce_report: Option<SimTime>,
    /// When the final reduce WU validated (job complete).
    pub done_at: Option<SimTime>,
}

/// Wire tags for `StateChange::MrStamp::which` — the job timestamps
/// with set-once or take-max merge semantics.
pub mod stamp {
    /// `first_map_assign` (set-once).
    pub const FIRST_MAP_ASSIGN: u8 = 0;
    /// `last_map_report` (take-max).
    pub const LAST_MAP_REPORT: u8 = 1;
    /// `first_reduce_assign` (set-once).
    pub const FIRST_REDUCE_ASSIGN: u8 = 2;
    /// `last_reduce_report` (take-max).
    pub const LAST_REDUCE_REPORT: u8 = 3;
    /// `map_phase_validated_at` (set-once).
    pub const MAP_PHASE_VALIDATED: u8 = 4;
}

impl JobState {
    /// A fresh job in the map phase.
    pub fn new(cfg: MrJobConfig) -> Self {
        let n_maps = cfg.job.n_maps;
        JobState {
            cfg,
            map_wus: Vec::new(),
            reduce_wus: Vec::new(),
            holders: vec![Vec::new(); n_maps],
            phase: Phase::Map,
            maps_validated: 0,
            reduces_validated: 0,
            last_validated_map: None,
            shuffle_strategy: 0,
            shuffle_group: 1,
            first_map_assign: None,
            last_map_report: None,
            map_phase_validated_at: None,
            first_reduce_assign: None,
            last_reduce_report: None,
            done_at: None,
        }
    }

    /// Map-phase duration per Table I (first assignment → last report).
    pub fn map_time(&self) -> Option<f64> {
        Some(
            self.map_phase_validated_at?
                .saturating_since(self.first_map_assign?)
                .as_secs_f64(),
        )
    }

    /// Reduce-phase duration per Table I.
    pub fn reduce_time(&self) -> Option<f64> {
        Some(
            self.done_at?
                .saturating_since(self.first_reduce_assign?)
                .as_secs_f64(),
        )
    }

    /// Total makespan per Table I ("interval between the scheduling of
    /// the first map task and the return of the last reduce output").
    pub fn total_time(&self) -> Option<f64> {
        Some(
            self.done_at?
                .saturating_since(self.first_map_assign?)
                .as_secs_f64(),
        )
    }
}

/// Registry of all jobs plus the WU → (job, task) reverse index.
#[derive(Debug, Default)]
pub struct JobTracker {
    /// All submitted jobs.
    pub jobs: Vec<JobState>,
    index: HashMap<WuId, (usize, TaskKind)>,
}

impl JobTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        JobTracker::default()
    }

    /// Registers a job, returning its index.
    pub fn add_job(&mut self, state: JobState) -> usize {
        self.jobs.push(state);
        self.jobs.len() - 1
    }

    /// Indexes a work unit as (job, task).
    pub fn index_wu(&mut self, wu: WuId, job: usize, task: TaskKind) {
        self.index.insert(wu, (job, task));
    }

    /// Looks up which job/task a WU implements (None for non-MR WUs —
    /// the `mapreduce` tag check).
    pub fn lookup(&self, wu: WuId) -> Option<(usize, TaskKind)> {
        self.index.get(&wu).copied()
    }

    /// True when every job has finished (validated or failed).
    pub fn all_done(&self) -> bool {
        self.jobs
            .iter()
            .all(|j| matches!(j.phase, Phase::Done | Phase::Failed))
    }

    /// Applies one replayed WAL record; `Ok(false)` when the record
    /// belongs to another subsystem. Records arrive in emission order,
    /// so a job always exists before its WUs are indexed and holders
    /// land before the phase flips.
    pub fn apply_change(&mut self, c: &StateChange) -> Result<bool, WireError> {
        let t = |us: u64| SimTime::from_micros(us);
        match c {
            StateChange::MrJobSubmitted { job, cfg } => {
                debug_assert_eq!(*job as usize, self.jobs.len());
                let cfg = MrJobConfig::from_bytes(cfg)?;
                self.add_job(JobState::new(cfg));
            }
            StateChange::MrWuIndexed {
                wu,
                job,
                reduce,
                idx,
            } => {
                let (ji, idx) = (*job as usize, *idx as usize);
                let task = if *reduce {
                    self.jobs[ji].reduce_wus.push(WuId(*wu));
                    TaskKind::Reduce(idx)
                } else {
                    self.jobs[ji].map_wus.push(WuId(*wu));
                    TaskKind::Map(idx)
                };
                self.index_wu(WuId(*wu), ji, task);
            }
            StateChange::MrMapValidated {
                job,
                m,
                holders,
                at_us: _,
            } => {
                let j = &mut self.jobs[*job as usize];
                j.holders[*m as usize] = holders.iter().copied().map(ClientId).collect();
                j.maps_validated += 1;
                j.last_validated_map = Some(*m as usize);
            }
            StateChange::MrReduceValidated { job } => {
                self.jobs[*job as usize].reduces_validated += 1;
            }
            StateChange::MrShufflePlanned {
                job,
                strategy,
                group,
            } => {
                let j = &mut self.jobs[*job as usize];
                j.shuffle_strategy = *strategy;
                j.shuffle_group = *group;
            }
            StateChange::MrPhase { job, phase, at_us } => {
                let j = &mut self.jobs[*job as usize];
                j.phase = Phase::from_wire(*phase)?;
                if j.phase == Phase::Done {
                    j.done_at = Some(t(*at_us));
                }
            }
            StateChange::MrStamp { job, which, at_us } => {
                let j = &mut self.jobs[*job as usize];
                let now = t(*at_us);
                match *which {
                    stamp::FIRST_MAP_ASSIGN => {
                        j.first_map_assign = j.first_map_assign.or(Some(now))
                    }
                    stamp::LAST_MAP_REPORT => {
                        j.last_map_report = Some(j.last_map_report.unwrap_or(now).max(now))
                    }
                    stamp::FIRST_REDUCE_ASSIGN => {
                        j.first_reduce_assign = j.first_reduce_assign.or(Some(now))
                    }
                    stamp::LAST_REDUCE_REPORT => {
                        j.last_reduce_report = Some(j.last_reduce_report.unwrap_or(now).max(now))
                    }
                    stamp::MAP_PHASE_VALIDATED => j.map_phase_validated_at = Some(now),
                    w => return Err(WireError::BadTag(w)),
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Canonical snapshot of every job (the WU → task index is derived
    /// and rebuilt on decode). Equal trackers encode byte-identically:
    /// vectors keep submission order and timestamps are raw micros.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(64 + self.jobs.len() * 256);
        let ot = |e: &mut Enc, v: Option<SimTime>| e.opt_u64(v.map(|t| t.as_micros()));
        e.u32(self.jobs.len() as u32);
        for j in &self.jobs {
            j.cfg.encode(&mut e);
            e.vec_u32(&j.map_wus.iter().map(|w| w.0).collect::<Vec<_>>());
            e.vec_u32(&j.reduce_wus.iter().map(|w| w.0).collect::<Vec<_>>());
            e.u32(j.holders.len() as u32);
            for h in &j.holders {
                e.vec_u32(&h.iter().map(|c| c.0).collect::<Vec<_>>());
            }
            e.u8(j.phase.to_wire());
            e.u32(j.maps_validated as u32);
            e.u32(j.reduces_validated as u32);
            e.opt_u32(j.last_validated_map.map(|m| m as u32));
            e.u8(j.shuffle_strategy);
            e.u32(j.shuffle_group);
            ot(&mut e, j.first_map_assign);
            ot(&mut e, j.last_map_report);
            ot(&mut e, j.map_phase_validated_at);
            ot(&mut e, j.first_reduce_assign);
            ot(&mut e, j.last_reduce_report);
            ot(&mut e, j.done_at);
        }
        e.into_vec()
    }

    /// Rebuilds a tracker from a [`JobTracker::encode_state`] snapshot
    /// section.
    pub fn decode_state(b: &[u8]) -> Result<JobTracker, WireError> {
        let mut d = Dec::new(b);
        let n = d.u32()? as usize;
        let mut t = JobTracker::new();
        for _ in 0..n {
            let cfg = MrJobConfig::decode(&mut d)?;
            let mut j = JobState::new(cfg);
            j.map_wus = d.vec_u32()?.into_iter().map(WuId).collect();
            j.reduce_wus = d.vec_u32()?.into_iter().map(WuId).collect();
            let nh = d.u32()? as usize;
            let mut holders = Vec::with_capacity(nh.min(1 << 16));
            for _ in 0..nh {
                holders.push(d.vec_u32()?.into_iter().map(ClientId).collect());
            }
            j.holders = holders;
            j.phase = Phase::from_wire(d.u8()?)?;
            j.maps_validated = d.u32()? as usize;
            j.reduces_validated = d.u32()? as usize;
            j.last_validated_map = d.opt_u32()?.map(|m| m as usize);
            j.shuffle_strategy = d.u8()?;
            j.shuffle_group = d.u32()?;
            let mut ot = || -> Result<Option<SimTime>, WireError> {
                Ok(d.opt_u64()?.map(SimTime::from_micros))
            };
            j.first_map_assign = ot()?;
            j.last_map_report = ot()?;
            j.map_phase_validated_at = ot()?;
            j.first_reduce_assign = ot()?;
            j.last_reduce_report = ot()?;
            j.done_at = ot()?;
            let ji = t.add_job(j);
            let j = &t.jobs[ji];
            let (maps, reduces) = (j.map_wus.clone(), j.reduce_wus.clone());
            for (m, wu) in maps.into_iter().enumerate() {
                t.index_wu(wu, ji, TaskKind::Map(m));
            }
            for (r, wu) in reduces.into_iter().enumerate() {
                t.index_wu(wu, ji, TaskKind::Reduce(r));
            }
        }
        d.finish()?;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MrJobConfig, MrMode};

    fn job() -> JobState {
        JobState::new(MrJobConfig::paper_wordcount(4, 2, MrMode::InterClient))
    }

    #[test]
    fn fresh_job_is_mapping() {
        let j = job();
        assert_eq!(j.phase, Phase::Map);
        assert_eq!(j.holders.len(), 4);
        assert_eq!(j.map_time(), None);
    }

    #[test]
    fn phase_times_compute() {
        let mut j = job();
        j.first_map_assign = Some(SimTime::from_secs(10));
        j.map_phase_validated_at = Some(SimTime::from_secs(110));
        j.first_reduce_assign = Some(SimTime::from_secs(150));
        j.done_at = Some(SimTime::from_secs(250));
        assert_eq!(j.map_time(), Some(100.0));
        assert_eq!(j.reduce_time(), Some(100.0));
        assert_eq!(j.total_time(), Some(240.0));
    }

    #[test]
    fn tracker_index_roundtrip() {
        let mut t = JobTracker::new();
        let ji = t.add_job(job());
        t.index_wu(WuId(7), ji, TaskKind::Map(3));
        assert_eq!(t.lookup(WuId(7)), Some((ji, TaskKind::Map(3))));
        assert_eq!(t.lookup(WuId(8)), None);
        assert!(!t.all_done());
        t.jobs[ji].phase = Phase::Done;
        assert!(t.all_done());
    }

    /// A mid-job tracker with every field populated.
    fn busy_tracker() -> JobTracker {
        let mut t = JobTracker::new();
        let ji = t.add_job(job());
        for m in 0..4 {
            t.jobs[ji].map_wus.push(WuId(m));
            t.index_wu(WuId(m), ji, TaskKind::Map(m as usize));
        }
        t.jobs[ji].holders[1] = vec![ClientId(3), ClientId(0)];
        t.jobs[ji].maps_validated = 1;
        t.jobs[ji].last_validated_map = Some(1);
        t.jobs[ji].first_map_assign = Some(SimTime::from_secs(5));
        t.jobs[ji].last_map_report = Some(SimTime::from_secs(40));
        t
    }

    #[test]
    fn tracker_snapshot_round_trip_is_canonical() {
        let t = busy_tracker();
        let enc = t.encode_state();
        let back = JobTracker::decode_state(&enc).unwrap();
        assert_eq!(back.encode_state(), enc);
        assert_eq!(back.lookup(WuId(2)), Some((0, TaskKind::Map(2))));
        assert_eq!(back.jobs[0].holders[1], vec![ClientId(3), ClientId(0)]);
        assert_eq!(back.jobs[0].maps_validated, 1);
        assert_eq!(back.jobs[0].first_map_assign, Some(SimTime::from_secs(5)));
        assert_eq!(back.jobs[0].done_at, None);
    }

    #[test]
    fn wal_replay_rebuilds_tracker() {
        use crate::jobtracker::stamp;
        use vmr_durable::StateChange;
        let live = busy_tracker();
        // The change sequence that produces `busy_tracker` state.
        let cfg = live.jobs[0].cfg.to_bytes();
        let changes = vec![
            StateChange::MrJobSubmitted { job: 0, cfg },
            StateChange::MrWuIndexed {
                wu: 0,
                job: 0,
                reduce: false,
                idx: 0,
            },
            StateChange::MrWuIndexed {
                wu: 1,
                job: 0,
                reduce: false,
                idx: 1,
            },
            StateChange::MrWuIndexed {
                wu: 2,
                job: 0,
                reduce: false,
                idx: 2,
            },
            StateChange::MrWuIndexed {
                wu: 3,
                job: 0,
                reduce: false,
                idx: 3,
            },
            StateChange::MrStamp {
                job: 0,
                which: stamp::FIRST_MAP_ASSIGN,
                at_us: 5_000_000,
            },
            // Set-once: a later first-assign stamp must not move it.
            StateChange::MrStamp {
                job: 0,
                which: stamp::FIRST_MAP_ASSIGN,
                at_us: 9_000_000,
            },
            StateChange::MrMapValidated {
                job: 0,
                m: 1,
                holders: vec![3, 0],
                at_us: 30_000_000,
            },
            // Take-max: an out-of-order earlier report must not win.
            StateChange::MrStamp {
                job: 0,
                which: stamp::LAST_MAP_REPORT,
                at_us: 40_000_000,
            },
            StateChange::MrStamp {
                job: 0,
                which: stamp::LAST_MAP_REPORT,
                at_us: 20_000_000,
            },
        ];
        let mut replayed = JobTracker::new();
        for c in &changes {
            assert!(replayed.apply_change(c).unwrap(), "unhandled {c:?}");
        }
        assert_eq!(replayed.encode_state(), live.encode_state());
    }
}
