//! Crash-replay recovery for the experiment harness.
//!
//! A crashed server leaves a WAL image behind (snapshot frames plus a
//! committed change tail — see `vmr-durable`). Recovery materializes
//! every server-side subsystem from that image, and
//! [`resume_experiment`] finishes the interrupted run: because the
//! simulation is deterministic per seed, re-driving the rebuilt testbed
//! to the committed boundary must land on *exactly* the recovered
//! state — the resume path audits that byte-for-byte before continuing
//! to completion, so a resumed run's Table I output is bit-identical to
//! an uninterrupted one.

use crate::experiment::{build_testbed, finish, horizon, ExperimentConfig, ExperimentOutcome};
use crate::jobtracker::JobTracker;
use vmr_durable::{recover, section, CrashPlan, Journal, RecoverError, WireError};
use vmr_obs::EventKind;
use vmr_vcore::{Assimilator, CreditLedger, Db, TrustLedger};

/// Why a recovery or resume attempt failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The log image was structurally unreadable.
    Log(RecoverError),
    /// A snapshot section or replayed record failed to decode.
    Wire(WireError),
    /// A replayed record matched no subsystem (log written by an
    /// incompatible version).
    UnhandledRecord(String),
    /// The re-executed engine did not reproduce the recovered image —
    /// the named section differed (a WAL coverage bug).
    Diverged {
        /// Name of the first mismatching snapshot section.
        section: String,
    },
}

impl From<RecoverError> for RecoveryError {
    fn from(e: RecoverError) -> Self {
        RecoveryError::Log(e)
    }
}

impl From<WireError> for RecoveryError {
    fn from(e: WireError) -> Self {
        RecoveryError::Wire(e)
    }
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Log(e) => write!(f, "unreadable WAL image: {e:?}"),
            RecoveryError::Wire(e) => write!(f, "undecodable record or section: {e:?}"),
            RecoveryError::UnhandledRecord(c) => write!(f, "record matched no subsystem: {c}"),
            RecoveryError::Diverged { section } => {
                write!(
                    f,
                    "re-execution diverged from recovered image at `{section}`"
                )
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Every server-side subsystem, materialized from a WAL image
/// (latest committed snapshot + committed change tail).
pub struct RecoveredServerState {
    /// The project database.
    pub db: Db,
    /// The credit/reliability ledger.
    pub credit: CreditLedger,
    /// The canonical-result sink.
    pub assimilator: Assimilator,
    /// The BOINC-MR JobTracker.
    pub tracker: JobTracker,
    /// The host reputation ledger. Self-contained: its snapshot embeds
    /// the trust config, so replaying its records needs no external
    /// configuration.
    pub trust: TrustLedger,
    /// True when a committed snapshot seeded the state (false = full
    /// replay from genesis).
    pub from_snapshot: bool,
    /// Change records replayed on top of the snapshot.
    pub replayed: u64,
    /// Frames in the committed log prefix.
    pub committed_frames: u64,
    /// Change records in the committed log prefix.
    pub committed_records: u64,
    /// Sim-time of the last commit, microseconds.
    pub committed_at_us: u64,
    /// Byte length of the committed log prefix.
    pub committed_bytes: usize,
    /// Sequence number of the boundary commit. Unlike frame or byte
    /// counts this survives compaction and sharding unchanged, so the
    /// resume path re-drives to this target.
    pub committed_seq: u64,
}

impl RecoveredServerState {
    /// Recovers all server state from a WAL image: decode the latest
    /// committed snapshot's sections (genesis when none), then replay
    /// the committed change tail through the same appliers the live
    /// mutators use.
    pub fn from_log(log: &[u8]) -> Result<Self, RecoveryError> {
        let r = recover(log)?;
        let mut db = match r.sections.get(section::NAMES[section::DB]) {
            Some(b) => Db::decode_state(b)?,
            None => Db::new(),
        };
        let mut credit = match r.sections.get(section::NAMES[section::CREDIT]) {
            Some(b) => CreditLedger::decode_state(b)?,
            None => CreditLedger::new(),
        };
        let mut assimilator = match r.sections.get(section::NAMES[section::ASSIM]) {
            Some(b) => Assimilator::decode_state(b)?,
            None => Assimilator::new(),
        };
        let mut tracker = match r.sections.get(section::NAMES[section::TRACKER]) {
            Some(b) => JobTracker::decode_state(b)?,
            None => JobTracker::new(),
        };
        let mut trust = match r.sections.get(section::NAMES[section::TRUST]) {
            Some(b) => TrustLedger::decode_state(b)?,
            None => TrustLedger::new(Default::default()),
        };
        for c in &r.tail {
            if db.apply_change(c)?
                || credit.apply_change(c)?
                || assimilator.apply_change(c, &db)?
                || tracker.apply_change(c)?
                || trust.apply_change(c)?
            {
                continue;
            }
            return Err(RecoveryError::UnhandledRecord(format!("{c:?}")));
        }
        Ok(RecoveredServerState {
            db,
            credit,
            assimilator,
            tracker,
            trust,
            from_snapshot: r.from_snapshot,
            replayed: r.tail.len() as u64,
            committed_frames: r.committed_frames,
            committed_records: r.committed_records,
            committed_at_us: r.committed_at_us,
            committed_bytes: r.committed_bytes,
            committed_seq: r.committed_seq,
        })
    }

    /// Canonical section encodings of the recovered state, in the same
    /// order the engine snapshots them — comparable byte-for-byte
    /// against a live engine's sections.
    pub fn encode_sections(&self) -> Vec<(String, Vec<u8>)> {
        vec![
            (section::NAMES[section::DB].into(), self.db.encode_state()),
            (
                section::NAMES[section::CREDIT].into(),
                self.credit.encode_state(),
            ),
            (
                section::NAMES[section::ASSIM].into(),
                self.assimilator.encode_state(),
            ),
            (
                section::NAMES[section::TRACKER].into(),
                self.tracker.encode_state(),
            ),
            (
                section::NAMES[section::TRUST].into(),
                self.trust.encode_state(),
            ),
        ]
    }
}

/// Resumes a crashed experiment from its WAL image and runs it to
/// completion.
///
/// The rebuilt testbed re-derives the crashed run deterministically
/// from t=0 (crash point stripped), stops at the recovered commit
/// boundary, and audits its live state against the recovered image —
/// any divergence means a state change escaped the WAL and is reported
/// as [`RecoveryError::Diverged`] rather than silently continuing. The
/// outcome is then bit-identical to an uninterrupted run of the same
/// config.
pub fn resume_experiment(
    cfg: &ExperimentConfig,
    log: &[u8],
) -> Result<ExperimentOutcome, RecoveryError> {
    let rec = RecoveredServerState::from_log(log)?;

    let mut plan = cfg.durable.clone();
    plan.enabled = true;
    plan.crash = CrashPlan::none();
    plan.sink = None; // never clobber the image being recovered from
    let journal = Journal::new(&plan).expect("sinkless journal init cannot fail");
    let (mut eng, mut pol) = build_testbed(cfg, journal);

    eng.obs.counter("dur.replay_records").add(rec.replayed);
    let (replayed, from_snapshot) = (rec.replayed, rec.from_snapshot);
    eng.obs
        .journal
        .record_with(rec.committed_at_us, || EventKind::Recovered {
            replayed,
            from_snapshot,
        });

    // Re-drive to the committed boundary, then audit byte-for-byte.
    // The target is the commit *sequence*, not a frame count: the
    // image may be a compacted mirror whose frame and byte counts are
    // smaller than what the live re-run accumulates, but the commit
    // sequence is invariant under compaction and sharding.
    if rec.committed_seq > 0 {
        let target = rec.committed_seq;
        eng.run_until(&mut pol, horizon(), |e| {
            e.durable().committed_seq() >= target
        });
        let live = eng.live_sections(&pol);
        let want = rec.encode_sections();
        for ((ln, lb), (wn, wb)) in live.iter().zip(&want) {
            if ln != wn || lb != wb {
                return Err(RecoveryError::Diverged {
                    section: wn.clone(),
                });
            }
        }
        if live.len() != want.len() {
            return Err(RecoveryError::Diverged {
                section: "(section count)".into(),
            });
        }
    }

    eng.run_until(&mut pol, horizon(), |e| e.db.all_wus_terminal());
    Ok(finish(eng, pol))
}
