//! The §IV experiment harness.
//!
//! Builds the paper's testbed in the simulator (N nodes on 100 Mbit
//! links, one project server), submits a word-count MapReduce job with
//! the Table I parameters, runs to completion, and reports phase
//! makespans — including the bracketed "slowest node discarded" values
//! the paper derives ("by examining the results obtained, it was not
//! unusual for a single node to hold up the entire computation").

use crate::config::{MitigationPlan, MrJobConfig, MrMode, SizingModel};
use crate::policy::MrPolicy;
use vmr_desim::{SimTime, Timeline};
use vmr_durable::{DurabilityPlan, Journal};
use vmr_netsim::{HostLink, NatMix, TraversalPolicy};
use vmr_vcore::{
    ClientId, Engine, EngineStats, FaultPlan, HostProfile, ProjectConfig, ResultState, TrustConfig,
    WuId,
};

/// How many of each testbed node type to instantiate (§IV.A's pc3001 /
/// pcr200 mix).
#[derive(Clone, Copy, Debug)]
pub struct NodeMix {
    /// Dell PowerEdge 2850 (3 GHz P4 Xeon) count.
    pub pc3001: usize,
    /// Dell PowerEdge r200 (quad Xeon X3220) count.
    pub pcr200: usize,
}

impl NodeMix {
    /// All nodes of the slower type.
    pub fn uniform(n: usize) -> Self {
        NodeMix {
            pc3001: n,
            pcr200: 0,
        }
    }

    /// Total node count.
    pub fn total(&self) -> usize {
        self.pc3001 + self.pcr200
    }
}

/// One experiment = one Table I cell (or ablation point).
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// RNG seed (runs are bit-reproducible per seed).
    pub seed: u64,
    /// Volunteer population.
    pub nodes: NodeMix,
    /// Map work units.
    pub n_maps: usize,
    /// Reduce work units.
    pub n_reduces: usize,
    /// Transfer mode (BOINC vs BOINC-MR).
    pub mode: MrMode,
    /// Initial input size (paper: 1 GB).
    pub input_bytes: u64,
    /// Replication factor (paper: 2).
    pub replication: u32,
    /// Validation quorum (paper: 2).
    pub quorum: u32,
    /// Backoff cap in seconds (paper: 600; swept by ablation A1).
    pub backoff_max_s: u64,
    /// §IV.C mitigations.
    pub mitigation: MitigationPlan,
    /// Jobs submitted concurrently (1 = the paper's single-job runs;
    /// more = the "larger number of jobs at the same time" mitigation).
    pub concurrent_jobs: usize,
    /// Data/compute sizing model.
    pub sizing: SizingModel,
    /// NAT population (None = all public, the testbed situation).
    pub nat_mix: Option<NatMix>,
    /// Traversal policy for inter-client connections.
    pub traversal: TraversalPolicy,
    /// Fault injection.
    pub fault: FaultPlan,
    /// Report deadline per result, seconds (shorten for churn studies).
    pub delay_bound_s: f64,
    /// Promote this many volunteers to public supernode relays instead
    /// of relaying NATed transfers through the server (§III.D's
    /// "supernode-based P2P network"). They are forced to open NAT.
    pub supernode_relays: usize,
    /// Owner-usage availability applied to every volunteer (None = the
    /// dedicated Emulab machines of §IV.A).
    pub availability: Option<vmr_vcore::Availability>,
    /// Locality-aware matchmaking: prefer granting reduce tasks to
    /// volunteers that already hold some of the partitions.
    pub locality_scheduling: bool,
    /// Record the full timeline (Fig. 4); disable for big sweeps.
    pub record_timeline: bool,
    /// Server durability: WAL + snapshot cadence + optional crash point
    /// (disabled by default — the in-memory-only baseline).
    pub durable: DurabilityPlan,
    /// Host reputation / adaptive replication (disabled by default —
    /// the fixed-quorum baseline the paper uses).
    pub trust: TrustConfig,
    /// Map-output distribution strategy (Baseline = the paper's
    /// point-to-point pull with server fall-back).
    pub shuffle: vmr_vcore::ShuffleConfig,
    /// Server-state shards (work-unit tables, feeder, ledgers). `1` is
    /// the sequential layout; any count produces bit-identical runs.
    pub shards: usize,
}

/// Why an experiment configuration was rejected (or failed to start).
#[derive(Debug)]
pub enum ConfigError {
    /// The volunteer population is empty — nothing can run.
    NoNodes,
    /// More reduce work units than map work units: the partition model
    /// hands each reducer at least one map output, so this geometry is
    /// unsatisfiable.
    ReducesExceedMaps {
        /// Configured map count.
        maps: usize,
        /// Configured reduce count.
        reduces: usize,
    },
    /// `shards == 0` — the shard layout needs at least one shard.
    ZeroShards,
    /// Opening the durability plan's WAL file sink failed.
    WalSink(std::io::Error),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoNodes => write!(f, "experiment has zero volunteer nodes"),
            ConfigError::ReducesExceedMaps { maps, reduces } => write!(
                f,
                "n_reduces ({reduces}) exceeds n_maps ({maps}): every reducer needs map output"
            ),
            ConfigError::ZeroShards => write!(f, "shards must be >= 1"),
            ConfigError::WalSink(e) => write!(f, "WAL sink init failed: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::WalSink(e) => Some(e),
            _ => None,
        }
    }
}

impl ExperimentConfig {
    /// One Table I cell: `nodes`, `n_maps` map WUs, `n_reduces` reduce
    /// WUs, with the paper's defaults for everything else.
    pub fn table1(nodes: usize, n_maps: usize, n_reduces: usize, mode: MrMode) -> Self {
        ExperimentConfig {
            seed: 0xB01C,
            nodes: NodeMix::uniform(nodes),
            n_maps,
            n_reduces,
            mode,
            input_bytes: 1 << 30,
            replication: 2,
            quorum: 2,
            backoff_max_s: 600,
            mitigation: MitigationPlan::default(),
            concurrent_jobs: 1,
            sizing: SizingModel::default(),
            nat_mix: None,
            traversal: TraversalPolicy::direct_only(),
            fault: FaultPlan::none(),
            delay_bound_s: 6.0 * 3600.0,
            supernode_relays: 0,
            availability: None,
            locality_scheduling: false,
            record_timeline: false,
            durable: DurabilityPlan::disabled(),
            trust: TrustConfig::default(),
            shuffle: vmr_vcore::ShuffleConfig::default(),
            shards: 1,
        }
    }

    /// Checks the configuration, returning the first problem found.
    /// [`run_experiment`] calls this before building anything.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes.total() == 0 {
            return Err(ConfigError::NoNodes);
        }
        if self.n_reduces > self.n_maps {
            return Err(ConfigError::ReducesExceedMaps {
                maps: self.n_maps,
                reduces: self.n_reduces,
            });
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        Ok(())
    }
}

/// Table I style numbers for one job.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    /// Map phase seconds (first map assignment → map validation done).
    pub map_s: f64,
    /// Reduce phase seconds.
    pub reduce_s: f64,
    /// Total makespan seconds.
    pub total_s: f64,
    /// Map phase with the slowest node's reports discarded (the paper's
    /// bracketed italics), when a straggler existed.
    pub map_no_slowest_s: Option<f64>,
    /// Reduce phase without the slowest node.
    pub reduce_no_slowest_s: Option<f64>,
    /// Total without stragglers (both phase penalties removed).
    pub total_no_slowest_s: Option<f64>,
}

/// Everything an experiment run produces.
pub struct ExperimentOutcome {
    /// Per-job phase reports (one for the paper's runs).
    pub reports: Vec<PhaseReport>,
    /// Engine counters (RPCs, backoff empties, fallbacks, traversal…).
    pub stats: EngineStats,
    /// Event timeline (populated when `record_timeline`), rebuilt from
    /// the engine's obs journal.
    pub timeline: Timeline,
    /// Observability bundle: metrics snapshot source and raw journal.
    pub obs: vmr_obs::Obs,
    /// Simulated end time.
    pub finished_at: SimTime,
    /// Whether every job completed (false = horizon hit / job failed /
    /// server crash).
    pub all_done: bool,
    /// WAL image at run end — including any uncommitted tail, exactly
    /// what a crashed server's disk would hold (None when durability
    /// was off). Feed to [`crate::recover::resume_experiment`].
    pub wal: Option<Vec<u8>>,
    /// True when the durability crash plan fired during the run.
    pub crashed: bool,
}

/// Event horizon of every experiment run: makespans are ~20 min; 50 h
/// catches pathologies.
pub(crate) fn horizon() -> SimTime {
    SimTime::from_secs(180_000)
}

/// Builds the testbed engine and policy with jobs submitted — the
/// shared front half of [`run_experiment`] and
/// [`crate::recover::resume_experiment`]. The journal must be attached
/// before work units are inserted so the genesis records land in the
/// log.
pub(crate) fn build_testbed(cfg: &ExperimentConfig, journal: Journal) -> (Engine, MrPolicy) {
    let mut pc = ProjectConfig {
        backoff_max_s: cfg.backoff_max_s,
        report_results_immediately: cfg.mitigation.immediate_report,
        locality_scheduling: cfg.locality_scheduling,
        trust: cfg.trust.clone(),
        shuffle: cfg.shuffle.clone(),
        ..ProjectConfig::default()
    };
    pc.backoff_min_s = pc.backoff_min_s.min(cfg.backoff_max_s);

    // Volunteers: the paper's 100 Mbit testbed links.
    let mut nat_rng = vmr_desim::RngStream::new(cfg.seed ^ 0x9a7);
    let volunteers: Vec<_> = (0..cfg.nodes.total())
        .map(|i| {
            let mut prof = if i < cfg.nodes.pc3001 {
                HostProfile::pc3001()
            } else {
                HostProfile::pcr200()
            };
            if let Some(mix) = &cfg.nat_mix {
                prof.nat = mix.draw(&mut nat_rng);
            }
            if i < cfg.supernode_relays {
                prof.nat = vmr_netsim::NatType::Open; // supernodes must be reachable
            }
            prof.availability = cfg.availability;
            (prof, HostLink::symmetric_mbit(100.0, 0.000_5))
        })
        .collect();
    let mut eng = Engine::builder(cfg.seed)
        .config(pc)
        .shards(cfg.shards.max(1))
        .journal(journal)
        .clients(volunteers)
        .build();
    if !cfg.record_timeline {
        eng.obs.journal.set_enabled(false);
    }
    eng.traversal = cfg.traversal.clone();
    eng.fault = cfg.fault.clone();
    if cfg.supernode_relays > 0 {
        eng.relay = vmr_vcore::RelayChoice::Supernodes(
            (0..cfg.supernode_relays as u32).map(ClientId).collect(),
        );
    }

    let mut pol = MrPolicy::new();
    for _ in 0..cfg.concurrent_jobs.max(1) {
        let mut jc = MrJobConfig::paper_wordcount(cfg.n_maps, cfg.n_reduces, cfg.mode);
        jc.input_bytes = cfg.input_bytes;
        jc.replication = cfg.replication;
        jc.quorum = cfg.quorum;
        jc.sizing = cfg.sizing;
        jc.mitigation = cfg.mitigation;
        jc.delay_bound_s = cfg.delay_bound_s;
        pol.submit_job(&mut eng, jc);
    }
    (eng, pol)
}

/// Builds the outcome from a finished (or crashed) engine — the shared
/// back half of [`run_experiment`] and
/// [`crate::recover::resume_experiment`].
pub(crate) fn finish(eng: Engine, pol: MrPolicy) -> ExperimentOutcome {
    // Clean run end: force the group-commit tail out of the mirror so
    // the on-disk image matches the committed log. A crashed journal
    // refuses (the dead server cannot flush), which is exactly the
    // image recovery should see.
    eng.durable().flush_sink();
    let reports = pol
        .tracker
        .jobs
        .iter()
        .map(|job| build_report(&eng, job))
        .collect();
    let crashed = eng.durable().crashed();
    let wal = if eng.durable().enabled() {
        Some(eng.durable().log_bytes())
    } else {
        None
    };
    ExperimentOutcome {
        reports,
        all_done: pol.all_done(),
        stats: eng.stats.clone(),
        finished_at: eng.now(),
        timeline: Timeline::from_journal(&eng.obs.journal),
        obs: eng.obs.clone(),
        wal,
        crashed,
    }
}

/// Runs one experiment to completion (or to its configured crash).
///
/// Rejects invalid configurations ([`ExperimentConfig::validate`]) and
/// surfaces WAL-sink I/O failures instead of panicking.
pub fn run_experiment(cfg: &ExperimentConfig) -> Result<ExperimentOutcome, ConfigError> {
    cfg.validate()?;
    let journal = Journal::new(&cfg.durable).map_err(ConfigError::WalSink)?;
    let (mut eng, mut pol) = build_testbed(cfg, journal);
    eng.run_until(&mut pol, horizon(), |e| e.db.all_wus_terminal());
    Ok(finish(eng, pol))
}

/// Latest successful report time over `wus`, optionally excluding one
/// client's results, together with the client that produced it.
fn last_report(
    eng: &Engine,
    wus: &[WuId],
    exclude: Option<ClientId>,
) -> Option<(SimTime, ClientId)> {
    let mut best: Option<(SimTime, ClientId)> = None;
    for &wu in wus {
        for &rid in eng.db.results_of(wu) {
            let r = eng.db.result(rid);
            if r.state != ResultState::Over || !r.is_success() {
                continue;
            }
            let (Some(t), Some(c)) = (r.reported_at, r.client) else {
                continue;
            };
            if Some(c) == exclude {
                continue;
            }
            if best.map(|(bt, _)| t > bt).unwrap_or(true) {
                best = Some((t, c));
            }
        }
    }
    best
}

fn build_report(eng: &Engine, job: &crate::jobtracker::JobState) -> PhaseReport {
    let map_s = job.map_time().unwrap_or(f64::NAN);
    let reduce_s = job.reduce_time().unwrap_or(f64::NAN);
    let total_s = job.total_time().unwrap_or(f64::NAN);

    // The paper's bracketed values: "we discarded the results of the
    // slowest node of the experiment". Identify the node whose report
    // closes each phase; recompute the phase end without it.
    let derive = |wus: &[WuId], start: Option<SimTime>| -> Option<f64> {
        let start = start?;
        let (_, slowest) = last_report(eng, wus, None)?;
        let (t2, _) = last_report(eng, wus, Some(slowest))?;
        Some(t2.saturating_since(start).as_secs_f64())
    };
    let map_ns = derive(&job.map_wus, job.first_map_assign);
    let reduce_ns = derive(&job.reduce_wus, job.first_reduce_assign);
    // Meaningful only when the phase actually had a straggler: keep the
    // derived value when it saves more than 5% of the phase.
    let keep = |orig: f64, ns: Option<f64>| match ns {
        Some(v) if v < orig * 0.95 => Some(v),
        _ => None,
    };
    let map_no_slowest_s = keep(map_s, map_ns);
    let reduce_no_slowest_s = keep(reduce_s, reduce_ns);
    let total_no_slowest_s = match (map_no_slowest_s, reduce_no_slowest_s) {
        (None, None) => None,
        (m, r) => Some(total_s - (map_s - m.unwrap_or(map_s)) - (reduce_s - r.unwrap_or(reduce_s))),
    };
    PhaseReport {
        map_s,
        reduce_s,
        total_s,
        map_no_slowest_s,
        reduce_no_slowest_s,
        total_no_slowest_s,
    }
}

/// Formats a Table I row: `value [derived]` cells.
pub fn format_row(nodes: usize, n_maps: usize, n_reduces: usize, r: &PhaseReport) -> String {
    let cell = |v: f64, ns: Option<f64>| match ns {
        Some(d) => format!("{:>5.0} [{:>4.0}]", v, d),
        None => format!("{:>5.0}       ", v),
    };
    format!(
        "{nodes:>5} | {n_maps:>5} | {n_reduces:>4} | {} | {} | {}",
        cell(r.map_s, r.map_no_slowest_s),
        cell(r.reduce_s, r.reduce_no_slowest_s),
        cell(r.total_s, r.total_no_slowest_s),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(mode: MrMode) -> ExperimentConfig {
        let mut c = ExperimentConfig::table1(6, 4, 2, mode);
        c.input_bytes = 64 << 20; // 64 MB keeps unit tests quick
        c
    }

    #[test]
    fn small_experiment_completes_both_modes() {
        for mode in [MrMode::ServerRelay, MrMode::InterClient] {
            let out = run_experiment(&small(mode)).expect("valid experiment config");
            assert!(out.all_done, "{mode}: job did not finish");
            let r = &out.reports[0];
            assert!(r.map_s > 0.0);
            assert!(r.reduce_s > 0.0);
            assert!(r.total_s >= r.map_s + r.reduce_s);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_experiment(&small(MrMode::InterClient)).expect("valid experiment config");
        let b = run_experiment(&small(MrMode::InterClient)).expect("valid experiment config");
        assert_eq!(a.reports[0].total_s, b.reports[0].total_s);
        assert_eq!(a.stats.rpcs, b.stats.rpcs);
    }

    #[test]
    fn different_seeds_vary() {
        let mut c1 = small(MrMode::InterClient);
        let mut c2 = small(MrMode::InterClient);
        c1.seed = 1;
        c2.seed = 2;
        let a = run_experiment(&c1).expect("valid experiment config");
        let b = run_experiment(&c2).expect("valid experiment config");
        // Jitter and stagger should shift makespans at least slightly.
        assert_ne!(a.reports[0].total_s, b.reports[0].total_s);
    }

    #[test]
    fn interclient_reduce_not_slower_than_relay() {
        // The paper's headline: "the reduce step was the fastest (due to
        // the inter-client transfers)". With several reducers hammering
        // one server link, inter-client should win clearly.
        let mut relay_cfg = small(MrMode::ServerRelay);
        let mut p2p_cfg = small(MrMode::InterClient);
        for c in [&mut relay_cfg, &mut p2p_cfg] {
            c.input_bytes = 256 << 20;
            c.nodes = NodeMix::uniform(10);
            c.n_maps = 8;
            c.n_reduces = 4;
        }
        let relay = run_experiment(&relay_cfg).expect("valid experiment config");
        let p2p = run_experiment(&p2p_cfg).expect("valid experiment config");
        assert!(relay.all_done && p2p.all_done);
        assert!(
            p2p.reports[0].reduce_s < relay.reports[0].reduce_s,
            "p2p reduce {} should beat relay reduce {}",
            p2p.reports[0].reduce_s,
            relay.reports[0].reduce_s
        );
    }

    #[test]
    fn timeline_recorded_when_requested() {
        let mut c = small(MrMode::InterClient);
        c.record_timeline = true;
        let out = run_experiment(&c).expect("valid experiment config");
        assert!(!out.timeline.spans().is_empty());
        assert!(out
            .timeline
            .points()
            .iter()
            .any(|p| p.detail == "reduce-start"));
    }

    #[test]
    fn format_row_shape() {
        let r = PhaseReport {
            map_s: 484.0,
            reduce_s: 337.0,
            total_s: 1121.0,
            map_no_slowest_s: Some(396.0),
            reduce_no_slowest_s: None,
            total_no_slowest_s: Some(1011.0),
        };
        let s = format_row(10, 10, 2, &r);
        assert!(s.contains("484"));
        assert!(s.contains("[ 396]"));
        assert!(s.contains("1121"));
    }
}
