//! # vmr-core — BOINC-MR
//!
//! The paper's contribution: MapReduce over a pull-model volunteer
//! computing middleware.
//!
//! * [`config`] — `mr_jobtracker.xml` equivalents: job geometry,
//!   replication/quorum, transfer mode, data sizing calibrated against
//!   the real word-count application, §IV.C mitigation toggles.
//! * [`jobtracker`] — the paper's new server module: WU ↔ (job, task)
//!   index, validated map-output holders, phase state and timestamps.
//! * [`policy`] — the orchestration: map WUs scheduled as ordinary
//!   BOINC work, mapper-side serving registration, automatic reduce WU
//!   creation carrying mapper addresses, job completion.
//! * [`experiment`] — the §IV harness: build a testbed, run a job,
//!   report Table I rows and Fig. 4 timelines.
//! * [`recover`] — crash-replay recovery: materialize all server state
//!   from a WAL image and resume an interrupted experiment with
//!   bit-identical output.

#![warn(missing_docs)]

pub mod config;
pub mod experiment;
pub mod jobtracker;
pub mod policy;
pub mod recover;
pub mod workflow;

pub use config::{
    GeneratedHost, HostPopulation, MitigationPlan, MrJobConfig, MrMode, PopulationSpec,
    SizingModel, VolunteerClass,
};
pub use experiment::{
    format_row, run_experiment, ConfigError, ExperimentConfig, ExperimentOutcome, NodeMix,
    PhaseReport,
};
pub use jobtracker::{JobState, JobTracker, Phase, TaskKind};
pub use policy::MrPolicy;
pub use recover::{resume_experiment, RecoveredServerState, RecoveryError};
pub use vmr_shuffle::{FetchObs, ShuffleConfig, StrategyKind};
pub use workflow::{Stage, Workflow};
