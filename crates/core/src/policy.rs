//! The BOINC-MR orchestration policy: map/reduce phase coordination
//! plugged into the vcore engine hooks (§III.B of the paper).
//!
//! * Map work units are scheduled like ordinary BOINC work ("BOINC-MR
//!   follows the traditional protocol when scheduling work during the
//!   map phase").
//! * When a map task finishes executing on a BOINC-MR client, the client
//!   starts serving its partitioned outputs to peers.
//! * "Once all the map work units have been returned and the results
//!   have been validated, the system moves to the reduce phase": reduce
//!   work units are created automatically, each carrying the locations
//!   (holders) of every map output partition it needs.
//! * When all reduce work units validate, the job is done and mappers
//!   stop serving ("we … stop accepting connections when there are no
//!   more files available for upload").

use crate::config::{MrJobConfig, MrMode};
use crate::jobtracker::{stamp, JobState, JobTracker, Phase, TaskKind};
use vmr_desim::SimDuration;
use vmr_durable::StateChange;
use vmr_shuffle::coded_groups;
use vmr_vcore::{
    ClientId, Engine, FileRef, FileSource, Policy, ResultId, StrategyKind, WorkUnitSpec, WuId,
};

/// The BOINC-MR server policy.
#[derive(Debug, Default)]
pub struct MrPolicy {
    /// Job registry (public so harnesses can read phase times).
    pub tracker: JobTracker,
}

impl MrPolicy {
    /// An empty policy; submit jobs with [`MrPolicy::submit_job`].
    pub fn new() -> Self {
        MrPolicy::default()
    }

    /// Submits a job: inserts its map work units and registers it with
    /// the JobTracker. Returns the job index.
    pub fn submit_job(&mut self, eng: &mut Engine, mut cfg: MrJobConfig) -> usize {
        let job_idx = self.tracker.jobs.len();
        cfg.job.name = format!("mr{job_idx}");
        eng.durable().append(&StateChange::MrJobSubmitted {
            job: job_idx as u32,
            cfg: cfg.to_bytes(),
        });
        let mut state = JobState::new(cfg);
        let cfg = &state.cfg;
        let chunk = cfg.chunk_bytes();
        // Coded shuffle needs every map output on `r` hosts; the strategy
        // raises replication/quorum when the job config alone would leave
        // too few holders. Baseline/Swarm pass the config through.
        let (map_repl, map_quorum) = eng
            .shuffle_strategy()
            .map_placement(cfg.replication, cfg.quorum);
        for m in 0..cfg.job.n_maps {
            let mut spec = WorkUnitSpec::basic(
                format!("{}_map_{m}", cfg.job.name),
                format!("{}_map", cfg.job.name),
                cfg.sizing.map_flops(chunk),
            );
            spec.inputs = vec![FileRef::on_server(
                format!("{}_in_{m}", cfg.job.name),
                chunk,
            )];
            spec.target_nresults = map_repl;
            spec.min_quorum = map_quorum;
            spec.max_total_results = map_repl * 4;
            spec.delay_bound = vmr_desim::SimDuration::from_secs_f64(cfg.delay_bound_s);
            spec.output_bytes = cfg.sizing.map_output_bytes(chunk);
            // Plain BOINC always uploads; BOINC-MR v1 keeps uploading as
            // fall-back insurance unless configured otherwise.
            spec.upload_outputs = match cfg.mode {
                MrMode::ServerRelay => true,
                MrMode::InterClient => cfg.map_outputs_to_server,
            };
            spec.payload = m as u64;
            let wu = eng.insert_workunit(spec);
            state.map_wus.push(wu);
        }
        let map_wus = state.map_wus.clone();
        self.tracker.add_job(state);
        for (m, wu) in map_wus.into_iter().enumerate() {
            eng.durable().append(&StateChange::MrWuIndexed {
                wu: wu.0,
                job: job_idx as u32,
                reduce: false,
                idx: m as u32,
            });
            self.tracker.index_wu(wu, job_idx, TaskKind::Map(m));
        }
        job_idx
    }

    /// True when every submitted job is done or failed.
    pub fn all_done(&self) -> bool {
        self.tracker.all_done()
    }

    /// Creates the reduce work units of job `job_idx` (the automatic
    /// phase transition). Requires every map WU validated.
    fn create_reduce_wus(&mut self, eng: &mut Engine, job_idx: usize) {
        let job = &self.tracker.jobs[job_idx];
        let cfg = &job.cfg;
        let chunk = cfg.chunk_bytes();
        let n_maps = cfg.job.n_maps;
        let n_reduces = cfg.job.n_reduces;
        let total_intermediate = cfg.sizing.map_output_bytes(chunk) * n_maps as u64;
        // Fix the fetch plan before any work unit exists: the strategy
        // decides how many bytes of each partition a reducer pulls and
        // from which holders (Coded shares a partition across a reducer
        // group; Baseline and Swarm pass the inputs through untouched).
        let strat = eng.shuffle_strategy();
        let kind = strat.kind();
        let group = strat.coding_group(n_reduces);
        let mut plans = Vec::with_capacity(n_reduces);
        for r in 0..n_reduces {
            let mut row = Vec::with_capacity(n_maps);
            for m in 0..n_maps {
                let mut bytes = cfg.sizing.partition_bytes(chunk, n_reduces);
                // §IV.C "intermediate data downloads": everything except
                // the last-validated map was prefetched during the map
                // phase; only the tail remains to fetch.
                if cfg.mitigation.intermediate_downloads && job.last_validated_map != Some(m) {
                    bytes = 0;
                }
                let holders: Vec<u32> = job.holders[m].iter().map(|c| c.0).collect();
                row.push(strat.plan_fetch(m, r, n_reduces, bytes, &holders));
            }
            plans.push(row);
        }
        let mut new_wus = Vec::with_capacity(n_reduces);
        for (r, row) in plans.iter().enumerate() {
            let mut inputs = Vec::with_capacity(n_maps);
            for (m, plan) in row.iter().enumerate() {
                let source = match cfg.mode {
                    MrMode::ServerRelay => FileSource::DataServer,
                    MrMode::InterClient => {
                        FileSource::Peers(plan.sources.iter().map(|&c| ClientId(c)).collect())
                    }
                };
                inputs.push(FileRef {
                    name: cfg.job.partition_file(m, r),
                    bytes: plan.bytes,
                    source,
                });
            }
            let in_bytes = total_intermediate / n_reduces as u64;
            let mut spec = WorkUnitSpec::basic(
                format!("{}_red_{r}", cfg.job.name),
                format!("{}_red", cfg.job.name),
                cfg.sizing.reduce_flops(in_bytes),
            );
            spec.inputs = inputs;
            spec.target_nresults = cfg.replication;
            spec.min_quorum = cfg.quorum;
            spec.max_total_results = cfg.replication * 4;
            spec.delay_bound = vmr_desim::SimDuration::from_secs_f64(cfg.delay_bound_s);
            spec.output_bytes = cfg.sizing.reduce_output_bytes(cfg.input_bytes, n_reduces);
            spec.upload_outputs = true; // "the output is uploaded back to the server"
            spec.payload = r as u64;
            new_wus.push(eng.insert_workunit(spec));
        }
        // Journal the plan only when it deviates from baseline so default
        // runs keep the pre-shuffle WAL byte stream (the baseline plan is
        // the JobState default and needs no record to replay).
        if !matches!(kind, StrategyKind::Baseline | StrategyKind::Legacy) {
            eng.durable().append(&StateChange::MrShufflePlanned {
                job: job_idx as u32,
                strategy: kind.wire_tag(),
                group: group as u32,
            });
        }
        if kind == StrategyKind::Coded {
            // One coded send serves a whole reducer group: count the
            // sends the plan implies (per map, per group).
            eng.shuffle_obs()
                .coded_sends
                .add((n_maps * coded_groups(n_reduces, group)) as u64);
        }
        eng.durable().append(&StateChange::MrPhase {
            job: job_idx as u32,
            phase: Phase::Reduce.to_wire(),
            at_us: eng.now().as_micros(),
        });
        let job = &mut self.tracker.jobs[job_idx];
        job.reduce_wus = new_wus.clone();
        job.phase = Phase::Reduce;
        if !matches!(kind, StrategyKind::Baseline | StrategyKind::Legacy) {
            job.shuffle_strategy = kind.wire_tag();
            job.shuffle_group = group as u32;
        }
        for (r, wu) in new_wus.into_iter().enumerate() {
            eng.durable().append(&StateChange::MrWuIndexed {
                wu: wu.0,
                job: job_idx as u32,
                reduce: true,
                idx: r as u32,
            });
            self.tracker.index_wu(wu, job_idx, TaskKind::Reduce(r));
        }
    }

    /// Marks a job phase transition: one timeline point on the server
    /// lane (Fig. 4) plus a labeled counter in the metrics registry.
    fn mark_phase(eng: &mut Engine, phase: &str, now: vmr_desim::SimTime) {
        eng.obs
            .journal
            .point("server", "phase", phase, now.as_micros());
        eng.obs
            .counter_labeled("core.phase_marks", &[("phase", phase)])
            .inc();
    }

    /// Stops all mapper serving for a finished job.
    fn stop_serving(&self, eng: &mut Engine, job_idx: usize) {
        let job = &self.tracker.jobs[job_idx];
        let cfg = &job.cfg;
        for m in 0..cfg.job.n_maps {
            for r in 0..cfg.job.n_reduces {
                let name = cfg.job.partition_file(m, r);
                for c in 0..eng.n_clients() {
                    eng.unregister_served_file(ClientId(c as u32), &name);
                }
            }
        }
    }
}

impl Policy for MrPolicy {
    fn on_task_granted(&mut self, eng: &mut Engine, _client: ClientId, rid: ResultId) {
        let wu = eng.db.result(rid).wu;
        let Some((ji, task)) = self.tracker.lookup(wu) else {
            return;
        };
        let now = eng.now();
        let job = &mut self.tracker.jobs[ji];
        match task {
            TaskKind::Map(_) => {
                if job.first_map_assign.is_none() {
                    eng.durable().append(&StateChange::MrStamp {
                        job: ji as u32,
                        which: stamp::FIRST_MAP_ASSIGN,
                        at_us: now.as_micros(),
                    });
                    job.first_map_assign = Some(now);
                    Self::mark_phase(eng, "map-start", now);
                }
            }
            TaskKind::Reduce(_) => {
                if job.first_reduce_assign.is_none() {
                    eng.durable().append(&StateChange::MrStamp {
                        job: ji as u32,
                        which: stamp::FIRST_REDUCE_ASSIGN,
                        at_us: now.as_micros(),
                    });
                    job.first_reduce_assign = Some(now);
                    Self::mark_phase(eng, "reduce-start", now);
                }
            }
        }
    }

    fn on_task_executed(&mut self, eng: &mut Engine, client: ClientId, rid: ResultId) {
        let wu = eng.db.result(rid).wu;
        let Some((ji, TaskKind::Map(m))) = self.tracker.lookup(wu) else {
            return;
        };
        let job = &self.tracker.jobs[ji];
        if job.cfg.mode != MrMode::InterClient {
            return;
        }
        // "We open a TCP [socket] for listening to incoming connections
        // whenever a map task has finished and its output(s) is
        // available" — register every partition file, with the serving
        // timeout from the project config.
        let chunk = job.cfg.chunk_bytes();
        let n_reduces = job.cfg.job.n_reduces;
        let until = eng.now() + SimDuration::from_secs_f64(eng.cfg.serving_timeout_s);
        for r in 0..n_reduces {
            let name = job.cfg.job.partition_file(m, r);
            let bytes = job.cfg.sizing.partition_bytes(chunk, n_reduces);
            eng.register_served_file(client, name, bytes, Some(until));
        }
    }

    fn on_result_reported(&mut self, eng: &mut Engine, rid: ResultId) {
        let r = eng.db.result(rid);
        if !r.is_success() {
            return;
        }
        let wu = r.wu;
        let Some((ji, task)) = self.tracker.lookup(wu) else {
            return;
        };
        let now = eng.now();
        let job = &mut self.tracker.jobs[ji];
        let which = match task {
            TaskKind::Map(_) => {
                job.last_map_report = Some(job.last_map_report.unwrap_or(now).max(now));
                stamp::LAST_MAP_REPORT
            }
            TaskKind::Reduce(_) => {
                job.last_reduce_report = Some(job.last_reduce_report.unwrap_or(now).max(now));
                stamp::LAST_REDUCE_REPORT
            }
        };
        eng.durable().append(&StateChange::MrStamp {
            job: ji as u32,
            which,
            at_us: now.as_micros(),
        });
    }

    fn on_wu_validated(&mut self, eng: &mut Engine, wu: WuId, agreeing: &[ClientId]) {
        let Some((ji, task)) = self.tracker.lookup(wu) else {
            return;
        };
        let now = eng.now();
        match task {
            TaskKind::Map(m) => {
                eng.durable().append(&StateChange::MrMapValidated {
                    job: ji as u32,
                    m: m as u32,
                    holders: agreeing.iter().map(|c| c.0).collect(),
                    at_us: now.as_micros(),
                });
                {
                    let job = &mut self.tracker.jobs[ji];
                    job.holders[m] = agreeing.to_vec();
                    job.maps_validated += 1;
                    job.last_validated_map = Some(m);
                }
                // "In case the server decides a reduce task should be …
                // scheduled on another client, the map outputs' timeout
                // is reset": extend serving windows of this map's files.
                let (names, until) = {
                    let job = &self.tracker.jobs[ji];
                    let names: Vec<String> = (0..job.cfg.job.n_reduces)
                        .map(|r| job.cfg.job.partition_file(m, r))
                        .collect();
                    (
                        names,
                        now + SimDuration::from_secs_f64(eng.cfg.serving_timeout_s),
                    )
                };
                for c in agreeing {
                    for name in &names {
                        eng.reset_serving_timeout(*c, name, Some(until));
                    }
                }
                let job = &self.tracker.jobs[ji];
                if job.maps_validated == job.cfg.job.n_maps {
                    eng.durable().append(&StateChange::MrStamp {
                        job: ji as u32,
                        which: stamp::MAP_PHASE_VALIDATED,
                        at_us: now.as_micros(),
                    });
                    self.tracker.jobs[ji].map_phase_validated_at = Some(now);
                    Self::mark_phase(eng, "maps-validated", now);
                    self.create_reduce_wus(eng, ji);
                }
            }
            TaskKind::Reduce(_) => {
                eng.durable()
                    .append(&StateChange::MrReduceValidated { job: ji as u32 });
                let job = &mut self.tracker.jobs[ji];
                job.reduces_validated += 1;
                if job.reduces_validated == job.cfg.job.n_reduces {
                    eng.durable().append(&StateChange::MrPhase {
                        job: ji as u32,
                        phase: Phase::Done.to_wire(),
                        at_us: now.as_micros(),
                    });
                    let job = &mut self.tracker.jobs[ji];
                    job.phase = Phase::Done;
                    job.done_at = Some(now);
                    Self::mark_phase(eng, "job-done", now);
                    self.stop_serving(eng, ji);
                }
            }
        }
    }

    fn on_wu_failed(&mut self, eng: &mut Engine, wu: WuId) {
        if let Some((ji, _)) = self.tracker.lookup(wu) {
            eng.durable().append(&StateChange::MrPhase {
                job: ji as u32,
                phase: Phase::Failed.to_wire(),
                at_us: eng.now().as_micros(),
            });
            self.tracker.jobs[ji].phase = Phase::Failed;
            Self::mark_phase(eng, "job-failed", eng.now());
        }
    }

    fn durable_sections(&self, out: &mut Vec<(String, Vec<u8>)>) {
        use vmr_durable::section;
        out.push((
            section::NAMES[section::TRACKER].to_string(),
            self.tracker.encode_state(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_desim::SimTime;
    use vmr_netsim::HostLink;
    use vmr_vcore::HostProfile;

    fn engine(n: usize) -> Engine {
        Engine::builder(1)
            .clients((0..n).map(|_| {
                (
                    HostProfile::pc3001(),
                    HostLink::symmetric_mbit(100.0, 0.000_5),
                )
            }))
            .build()
    }

    fn tiny_job(mode: MrMode) -> MrJobConfig {
        let mut cfg = MrJobConfig::paper_wordcount(3, 2, mode);
        cfg.input_bytes = 6_000_000; // 6 MB → 2 MB chunks: seconds, not hours
        cfg
    }

    #[test]
    fn submit_creates_map_wus_only() {
        let mut eng = engine(4);
        let mut pol = MrPolicy::new();
        let ji = pol.submit_job(&mut eng, tiny_job(MrMode::InterClient));
        assert_eq!(pol.tracker.jobs[ji].map_wus.len(), 3);
        assert!(pol.tracker.jobs[ji].reduce_wus.is_empty());
        assert_eq!(eng.db.n_wus(), 3);
        // Replication 2 → 6 results.
        assert_eq!(eng.db.n_results(), 6);
    }

    #[test]
    fn full_job_interclient_completes() {
        let mut eng = engine(5);
        let mut pol = MrPolicy::new();
        let ji = pol.submit_job(&mut eng, tiny_job(MrMode::InterClient));
        eng.run_until(&mut pol, SimTime::from_secs(50_000), |e| {
            e.db.all_wus_terminal()
        });
        let job = &pol.tracker.jobs[ji];
        assert_eq!(job.phase, Phase::Done, "job should finish");
        assert!(job.map_time().unwrap() > 0.0);
        assert!(job.reduce_time().unwrap() > 0.0);
        assert!(job.total_time().unwrap() >= job.map_time().unwrap());
        // Inter-client mode with everyone open: no server fallbacks.
        assert_eq!(eng.stats.server_fallbacks, 0);
        // Holders recorded for every map.
        for h in &job.holders {
            assert_eq!(h.len(), 2, "quorum-2 leaves two holders");
        }
    }

    #[test]
    fn full_job_server_relay_completes() {
        let mut eng = engine(5);
        let mut pol = MrPolicy::new();
        let ji = pol.submit_job(&mut eng, tiny_job(MrMode::ServerRelay));
        eng.run_until(&mut pol, SimTime::from_secs(50_000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(pol.tracker.jobs[ji].phase, Phase::Done);
        // Server-relay reduces download from the data server only.
        assert_eq!(eng.stats.traversal.successes(), 0);
    }

    #[test]
    fn reduce_wus_created_exactly_on_map_validation() {
        let mut eng = engine(5);
        let mut pol = MrPolicy::new();
        let ji = pol.submit_job(&mut eng, tiny_job(MrMode::InterClient));
        eng.run_until(&mut pol, SimTime::from_secs(50_000), |e| {
            e.db.n_wus() > 3 // stop as soon as reduce WUs appear
        });
        let job = &pol.tracker.jobs[ji];
        assert_eq!(job.phase, Phase::Reduce);
        assert_eq!(job.reduce_wus.len(), 2);
        assert!(job.map_phase_validated_at.is_some());
        assert!(job.first_reduce_assign.is_none(), "not yet assigned");
        // Reduce inputs must point at the map holders.
        let rwu = job.reduce_wus[0];
        let inputs = &eng.db.wu(rwu).spec.inputs;
        assert_eq!(inputs.len(), 3, "one partition per map");
        for (m, f) in inputs.iter().enumerate() {
            match &f.source {
                FileSource::Peers(peers) => assert_eq!(peers, &job.holders[m]),
                other => panic!("expected peer source, got {other:?}"),
            }
        }
    }

    #[test]
    fn interclient_moves_less_data_through_server() {
        let run = |mode| {
            let mut eng = engine(6);
            let mut pol = MrPolicy::new();
            let mut cfg = tiny_job(mode);
            cfg.map_outputs_to_server = false; // pure BOINC-MR data path
            pol.submit_job(&mut eng, cfg);
            eng.run_until(&mut pol, SimTime::from_secs(50_000), |e| {
                e.db.all_wus_terminal()
            });
            assert!(pol.all_done());
            eng.stats.bytes_via_server
        };
        let relay = run(MrMode::ServerRelay);
        let p2p = run(MrMode::InterClient);
        assert!(
            p2p < relay * 0.7,
            "inter-client should cut server traffic: p2p={p2p} relay={relay}"
        );
    }

    #[test]
    fn mitigation_intermediate_downloads_shrinks_reduce_inputs() {
        let mut eng = engine(5);
        let mut pol = MrPolicy::new();
        let mut cfg = tiny_job(MrMode::InterClient);
        cfg.mitigation.intermediate_downloads = true;
        let ji = pol.submit_job(&mut eng, cfg);
        eng.run_until(&mut pol, SimTime::from_secs(50_000), |e| e.db.n_wus() > 3);
        let job = &pol.tracker.jobs[ji];
        let rwu = job.reduce_wus[0];
        let inputs = &eng.db.wu(rwu).spec.inputs;
        let nonzero = inputs.iter().filter(|f| f.bytes > 0).count();
        assert_eq!(nonzero, 1, "only the last-validated map still costs bytes");
    }

    #[test]
    fn two_concurrent_jobs_complete() {
        let mut eng = engine(8);
        let mut pol = MrPolicy::new();
        pol.submit_job(&mut eng, tiny_job(MrMode::InterClient));
        pol.submit_job(&mut eng, tiny_job(MrMode::ServerRelay));
        eng.run_until(&mut pol, SimTime::from_secs(100_000), |e| {
            e.db.all_wus_terminal()
        });
        assert!(pol.all_done());
        assert_eq!(pol.tracker.jobs[0].phase, Phase::Done);
        assert_eq!(pol.tracker.jobs[1].phase, Phase::Done);
    }
}
