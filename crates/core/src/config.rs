//! BOINC-MR job configuration — the model-side equivalent of the
//! paper's `mr_jobtracker.xml` ("a general configuration file … used to
//! specify MapReduce parameters, such as number of mappers and
//! reducers").

use serde::{Deserialize, Serialize};
use vmr_mapreduce::{run_map_task, HashPartitioner, JobSpec, MapReduceApp};

/// How reduce tasks obtain their map-output inputs (the two systems
/// Table I compares).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MrMode {
    /// Plain BOINC clients: every byte relays through the project data
    /// server ("this option is nowhere near optimal since all data must
    /// go through the server").
    ServerRelay,
    /// BOINC-MR clients: reducers download map outputs straight from
    /// the mappers over TCP, with server fall-back.
    InterClient,
}

impl std::fmt::Display for MrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrMode::ServerRelay => f.write_str("BOINC"),
            MrMode::InterClient => f.write_str("BOINC-MR"),
        }
    }
}

/// §IV.C's proposed fixes for the slow-node/backoff problem, togglable
/// for the mitigation ablation.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MitigationPlan {
    /// Report map results as soon as their upload completes (extra RPC,
    /// bypassing the backoff gate).
    pub immediate_report: bool,
    /// Intermediate data downloads: reducers prefetch map outputs while
    /// the map phase still runs, so at reduce start only the partitions
    /// of the *last-validated* map remain to fetch. (Approximation: the
    /// shuffle overlap leaves only the critical-path tail.)
    pub intermediate_downloads: bool,
}

/// Byte-size model of a MapReduce job on a given application, used to
/// parameterize the timing simulation. Calibrated by actually running
/// the app's map function on a corpus sample (see
/// [`SizingModel::calibrate`]), so the simulated transfer volumes track
/// the real data volumes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SizingModel {
    /// map_output_bytes ≈ input_bytes × expansion.
    pub expansion: f64,
    /// Total final-output bytes across all reducers. Word-count output
    /// is *vocabulary*-bound, not input-bound, so this is an absolute
    /// size rather than an input fraction.
    pub reduce_output_total_bytes: u64,
    /// FLOPs charged per input byte mapped (text scanning + hashing).
    pub map_flops_per_byte: f64,
    /// FLOPs charged per intermediate byte reduced.
    pub reduce_flops_per_byte: f64,
}

impl Default for SizingModel {
    fn default() -> Self {
        // Word-count-like defaults; `calibrate` refines the data ratios.
        SizingModel {
            expansion: 1.3,
            reduce_output_total_bytes: 800 << 10,
            // The paper's prototype parses text word by word through
            // BOINC's C API; ~1.5 MB/s on the P4 Xeon reproduces its
            // phase lengths (map: tokenize + hash + write ~1.4× output;
            // reduce: parse + accumulate, roughly 3× cheaper).
            map_flops_per_byte: 1000.0,
            reduce_flops_per_byte: 150.0,
        }
    }
}

impl SizingModel {
    /// Measures `expansion` and `reduce_output_frac` by running the
    /// app's real map/reduce over `sample`, keeping the default FLOP
    /// costs. This ties the simulator's transfer volumes to the actual
    /// application data.
    pub fn calibrate<A>(app: &A, sample: &[u8]) -> Self
    where
        A: MapReduceApp<K = String>,
    {
        let part = HashPartitioner::new(1);
        let mo = run_map_task(app, sample, &part, |k| k.as_bytes().to_vec());
        // The paper's pipeline has no combiner (one line per word), so
        // expansion is measured against the *uncombined* stream: re-emit
        // raw pairs.
        let mut raw_bytes = 0usize;
        let mut line = String::new();
        app.map(sample, &mut |k, v| {
            line.clear();
            app.encode(&k, &v, &mut line);
            raw_bytes += line.len();
        });
        let reduced = vmr_mapreduce::run_reduce_task(app, vec![mo.partitions[0].clone()]);
        let mut out_bytes = 0usize;
        for (k, v) in &reduced {
            line.clear();
            app.encode(k, v, &mut line);
            out_bytes += line.len();
        }
        let n = sample.len().max(1) as f64;
        SizingModel {
            expansion: raw_bytes as f64 / n,
            // The sample sees most of the vocabulary (Zipf); pad for
            // the unseen tail.
            reduce_output_total_bytes: (out_bytes as f64 * 1.5) as u64,
            ..SizingModel::default()
        }
    }

    /// Bytes of one map task's full output for a chunk of `chunk` bytes.
    pub fn map_output_bytes(&self, chunk: u64) -> u64 {
        (chunk as f64 * self.expansion) as u64
    }

    /// Bytes of one (map, partition) intermediate file.
    pub fn partition_bytes(&self, chunk: u64, n_reduces: usize) -> u64 {
        self.map_output_bytes(chunk) / n_reduces.max(1) as u64
    }

    /// Bytes of one reduce task's final output.
    pub fn reduce_output_bytes(&self, _input_total: u64, n_reduces: usize) -> u64 {
        (self.reduce_output_total_bytes / n_reduces.max(1) as u64).max(1)
    }

    /// FLOPs of a map task over `chunk` bytes.
    pub fn map_flops(&self, chunk: u64) -> f64 {
        chunk as f64 * self.map_flops_per_byte
    }

    /// FLOPs of a reduce task over `bytes` of intermediate data.
    pub fn reduce_flops(&self, bytes: u64) -> f64 {
        bytes as f64 * self.reduce_flops_per_byte
    }
}

/// Full description of one MapReduce job submitted to the project.
#[derive(Clone, Debug)]
pub struct MrJobConfig {
    /// Job geometry (maps, reduces).
    pub job: JobSpec,
    /// Total initial input bytes (the paper's 1 GB).
    pub input_bytes: u64,
    /// Replication per work unit (paper: 2).
    pub replication: u32,
    /// Quorum of identical outputs (paper: 2).
    pub quorum: u32,
    /// Transfer mode (the Table I comparison axis).
    pub mode: MrMode,
    /// Data/compute sizing.
    pub sizing: SizingModel,
    /// Whether BOINC-MR mappers also return outputs to the server (v1
    /// prototype behaviour: required for the server fall-back path).
    pub map_outputs_to_server: bool,
    /// §IV.C mitigation toggles.
    pub mitigation: MitigationPlan,
    /// Report deadline per result, seconds (BOINC `delay_bound`).
    pub delay_bound_s: f64,
}

impl MrJobConfig {
    /// The paper's word-count setup: 1 GB input, replication 2/quorum 2.
    pub fn paper_wordcount(n_maps: usize, n_reduces: usize, mode: MrMode) -> Self {
        MrJobConfig {
            job: JobSpec::new("mr0", n_maps, n_reduces),
            input_bytes: 1 << 30,
            replication: 2,
            quorum: 2,
            mode,
            sizing: SizingModel::default(),
            map_outputs_to_server: true,
            mitigation: MitigationPlan::default(),
            delay_bound_s: 6.0 * 3600.0,
        }
    }

    /// Bytes of one map input chunk.
    pub fn chunk_bytes(&self) -> u64 {
        self.input_bytes / self.job.n_maps as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_mapreduce::apps::WordCount;
    use vmr_mapreduce::{CorpusGen, CorpusSpec};

    #[test]
    fn paper_config_shape() {
        let c = MrJobConfig::paper_wordcount(20, 5, MrMode::InterClient);
        assert_eq!(c.chunk_bytes(), (1u64 << 30) / 20);
        assert_eq!(c.replication, 2);
        assert_eq!(c.quorum, 2);
    }

    #[test]
    fn calibration_on_real_corpus() {
        let mut gen = CorpusGen::new(&CorpusSpec::default());
        let sample = gen.generate(200_000);
        let s = SizingModel::calibrate(&WordCount, &sample);
        // Word count without combiner: map output a bit larger than the
        // input ("word 1\n" per token).
        assert!(
            s.expansion > 1.0 && s.expansion < 2.0,
            "expansion = {}",
            s.expansion
        );
        // Zipf text: distinct words ≪ tokens, so the final output is
        // far smaller than the sample it was measured on.
        assert!(
            s.reduce_output_total_bytes < 200_000 * 3,
            "reduce_output_total_bytes = {}",
            s.reduce_output_total_bytes
        );
        assert!(s.reduce_output_total_bytes > 0);
    }

    #[test]
    fn sizing_arithmetic() {
        let s = SizingModel {
            expansion: 1.5,
            reduce_output_total_bytes: 1000,
            map_flops_per_byte: 10.0,
            reduce_flops_per_byte: 5.0,
        };
        assert_eq!(s.map_output_bytes(1000), 1500);
        assert_eq!(s.partition_bytes(1000, 3), 500);
        assert_eq!(s.reduce_output_bytes(100_000, 2), 500);
        assert_eq!(s.map_flops(100), 1000.0);
        assert_eq!(s.reduce_flops(100), 500.0);
    }

    #[test]
    fn mode_labels_match_table1() {
        assert_eq!(MrMode::ServerRelay.to_string(), "BOINC");
        assert_eq!(MrMode::InterClient.to_string(), "BOINC-MR");
    }
}
