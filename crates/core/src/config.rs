//! BOINC-MR job configuration — the model-side equivalent of the
//! paper's `mr_jobtracker.xml` ("a general configuration file … used to
//! specify MapReduce parameters, such as number of mappers and
//! reducers").

use serde::{Deserialize, Serialize};
use vmr_durable::{Dec, Enc, WireError};
use vmr_mapreduce::{run_map_task, HashPartitioner, JobSpec, MapReduceApp};
pub use vmr_vcore::population::{GeneratedHost, HostPopulation, PopulationSpec, VolunteerClass};

/// How reduce tasks obtain their map-output inputs (the two systems
/// Table I compares).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MrMode {
    /// Plain BOINC clients: every byte relays through the project data
    /// server ("this option is nowhere near optimal since all data must
    /// go through the server").
    ServerRelay,
    /// BOINC-MR clients: reducers download map outputs straight from
    /// the mappers over TCP, with server fall-back.
    InterClient,
}

impl std::fmt::Display for MrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrMode::ServerRelay => f.write_str("BOINC"),
            MrMode::InterClient => f.write_str("BOINC-MR"),
        }
    }
}

/// §IV.C's proposed fixes for the slow-node/backoff problem, togglable
/// for the mitigation ablation.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MitigationPlan {
    /// Report map results as soon as their upload completes (extra RPC,
    /// bypassing the backoff gate).
    pub immediate_report: bool,
    /// Intermediate data downloads: reducers prefetch map outputs while
    /// the map phase still runs, so at reduce start only the partitions
    /// of the *last-validated* map remain to fetch. (Approximation: the
    /// shuffle overlap leaves only the critical-path tail.)
    pub intermediate_downloads: bool,
}

/// Byte-size model of a MapReduce job on a given application, used to
/// parameterize the timing simulation. Calibrated by actually running
/// the app's map function on a corpus sample (see
/// [`SizingModel::calibrate`]), so the simulated transfer volumes track
/// the real data volumes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SizingModel {
    /// map_output_bytes ≈ input_bytes × expansion.
    pub expansion: f64,
    /// Total final-output bytes across all reducers. Word-count output
    /// is *vocabulary*-bound, not input-bound, so this is an absolute
    /// size rather than an input fraction.
    pub reduce_output_total_bytes: u64,
    /// FLOPs charged per input byte mapped (text scanning + hashing).
    pub map_flops_per_byte: f64,
    /// FLOPs charged per intermediate byte reduced.
    pub reduce_flops_per_byte: f64,
}

impl Default for SizingModel {
    fn default() -> Self {
        // Word-count-like defaults; `calibrate` refines the data ratios.
        SizingModel {
            expansion: 1.3,
            reduce_output_total_bytes: 800 << 10,
            // The paper's prototype parses text word by word through
            // BOINC's C API; ~1.5 MB/s on the P4 Xeon reproduces its
            // phase lengths (map: tokenize + hash + write ~1.4× output;
            // reduce: parse + accumulate, roughly 3× cheaper).
            map_flops_per_byte: 1000.0,
            reduce_flops_per_byte: 150.0,
        }
    }
}

impl SizingModel {
    /// Measures `expansion` and `reduce_output_frac` by running the
    /// app's real map/reduce over `sample`, keeping the default FLOP
    /// costs. This ties the simulator's transfer volumes to the actual
    /// application data.
    pub fn calibrate<A>(app: &A, sample: &[u8]) -> Self
    where
        A: MapReduceApp<K = String>,
    {
        let part = HashPartitioner::new(1);
        let mo = run_map_task(app, sample, &part, |k| k.as_bytes().to_vec());
        // The paper's pipeline has no combiner (one line per word), so
        // expansion is measured against the *uncombined* stream: re-emit
        // raw pairs.
        let mut raw_bytes = 0usize;
        let mut line = String::new();
        app.map(sample, &mut |k, v| {
            line.clear();
            app.encode(&k, &v, &mut line);
            raw_bytes += line.len();
        });
        let reduced = vmr_mapreduce::run_reduce_task(app, vec![mo.partitions[0].clone()]);
        let mut out_bytes = 0usize;
        for (k, v) in &reduced {
            line.clear();
            app.encode(k, v, &mut line);
            out_bytes += line.len();
        }
        let n = sample.len().max(1) as f64;
        SizingModel {
            expansion: raw_bytes as f64 / n,
            // The sample sees most of the vocabulary (Zipf); pad for
            // the unseen tail.
            reduce_output_total_bytes: (out_bytes as f64 * 1.5) as u64,
            ..SizingModel::default()
        }
    }

    /// Bytes of one map task's full output for a chunk of `chunk` bytes.
    pub fn map_output_bytes(&self, chunk: u64) -> u64 {
        (chunk as f64 * self.expansion) as u64
    }

    /// Bytes of one (map, partition) intermediate file.
    pub fn partition_bytes(&self, chunk: u64, n_reduces: usize) -> u64 {
        self.map_output_bytes(chunk) / n_reduces.max(1) as u64
    }

    /// Bytes of one reduce task's final output.
    pub fn reduce_output_bytes(&self, _input_total: u64, n_reduces: usize) -> u64 {
        (self.reduce_output_total_bytes / n_reduces.max(1) as u64).max(1)
    }

    /// FLOPs of a map task over `chunk` bytes.
    pub fn map_flops(&self, chunk: u64) -> f64 {
        chunk as f64 * self.map_flops_per_byte
    }

    /// FLOPs of a reduce task over `bytes` of intermediate data.
    pub fn reduce_flops(&self, bytes: u64) -> f64 {
        bytes as f64 * self.reduce_flops_per_byte
    }
}

/// Full description of one MapReduce job submitted to the project.
#[derive(Clone, Debug)]
pub struct MrJobConfig {
    /// Job geometry (maps, reduces).
    pub job: JobSpec,
    /// Total initial input bytes (the paper's 1 GB).
    pub input_bytes: u64,
    /// Replication per work unit (paper: 2).
    pub replication: u32,
    /// Quorum of identical outputs (paper: 2).
    pub quorum: u32,
    /// Transfer mode (the Table I comparison axis).
    pub mode: MrMode,
    /// Data/compute sizing.
    pub sizing: SizingModel,
    /// Whether BOINC-MR mappers also return outputs to the server (v1
    /// prototype behaviour: required for the server fall-back path).
    pub map_outputs_to_server: bool,
    /// §IV.C mitigation toggles.
    pub mitigation: MitigationPlan,
    /// Report deadline per result, seconds (BOINC `delay_bound`).
    pub delay_bound_s: f64,
}

impl MrJobConfig {
    /// The paper's word-count setup: 1 GB input, replication 2/quorum 2.
    pub fn paper_wordcount(n_maps: usize, n_reduces: usize, mode: MrMode) -> Self {
        MrJobConfig {
            job: JobSpec::new("mr0", n_maps, n_reduces),
            input_bytes: 1 << 30,
            replication: 2,
            quorum: 2,
            mode,
            sizing: SizingModel::default(),
            map_outputs_to_server: true,
            mitigation: MitigationPlan::default(),
            delay_bound_s: 6.0 * 3600.0,
        }
    }

    /// Bytes of one map input chunk.
    pub fn chunk_bytes(&self) -> u64 {
        self.input_bytes / self.job.n_maps as u64
    }

    /// Encodes the full config through the WAL wire codec (the opaque
    /// `cfg` blob of `StateChange::MrJobSubmitted`).
    pub fn encode(&self, e: &mut Enc) {
        e.str(&self.job.name);
        e.u32(self.job.n_maps as u32);
        e.u32(self.job.n_reduces as u32);
        e.u64(self.input_bytes);
        e.u32(self.replication);
        e.u32(self.quorum);
        e.u8(match self.mode {
            MrMode::ServerRelay => 0,
            MrMode::InterClient => 1,
        });
        e.f64(self.sizing.expansion);
        e.u64(self.sizing.reduce_output_total_bytes);
        e.f64(self.sizing.map_flops_per_byte);
        e.f64(self.sizing.reduce_flops_per_byte);
        e.bool(self.map_outputs_to_server);
        e.bool(self.mitigation.immediate_report);
        e.bool(self.mitigation.intermediate_downloads);
        e.f64(self.delay_bound_s);
    }

    /// Standalone encoding of [`MrJobConfig::encode`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(96);
        self.encode(&mut e);
        e.into_vec()
    }

    /// Decodes a config written by [`MrJobConfig::encode`].
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let name = d.str()?;
        let n_maps = d.u32()? as usize;
        let n_reduces = d.u32()? as usize;
        Ok(MrJobConfig {
            job: JobSpec::new(name, n_maps, n_reduces),
            input_bytes: d.u64()?,
            replication: d.u32()?,
            quorum: d.u32()?,
            mode: match d.u8()? {
                0 => MrMode::ServerRelay,
                1 => MrMode::InterClient,
                t => return Err(WireError::BadTag(t)),
            },
            sizing: SizingModel {
                expansion: d.f64()?,
                reduce_output_total_bytes: d.u64()?,
                map_flops_per_byte: d.f64()?,
                reduce_flops_per_byte: d.f64()?,
            },
            map_outputs_to_server: d.bool()?,
            mitigation: MitigationPlan {
                immediate_report: d.bool()?,
                intermediate_downloads: d.bool()?,
            },
            delay_bound_s: d.f64()?,
        })
    }

    /// Decodes a standalone [`MrJobConfig::to_bytes`] blob.
    pub fn from_bytes(b: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(b);
        let cfg = Self::decode(&mut d)?;
        d.finish()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_mapreduce::apps::WordCount;
    use vmr_mapreduce::{CorpusGen, CorpusSpec};

    #[test]
    fn paper_config_shape() {
        let c = MrJobConfig::paper_wordcount(20, 5, MrMode::InterClient);
        assert_eq!(c.chunk_bytes(), (1u64 << 30) / 20);
        assert_eq!(c.replication, 2);
        assert_eq!(c.quorum, 2);
    }

    #[test]
    fn calibration_on_real_corpus() {
        let mut gen = CorpusGen::new(&CorpusSpec::default());
        let sample = gen.generate(200_000);
        let s = SizingModel::calibrate(&WordCount, &sample);
        // Word count without combiner: map output a bit larger than the
        // input ("word 1\n" per token).
        assert!(
            s.expansion > 1.0 && s.expansion < 2.0,
            "expansion = {}",
            s.expansion
        );
        // Zipf text: distinct words ≪ tokens, so the final output is
        // far smaller than the sample it was measured on.
        assert!(
            s.reduce_output_total_bytes < 200_000 * 3,
            "reduce_output_total_bytes = {}",
            s.reduce_output_total_bytes
        );
        assert!(s.reduce_output_total_bytes > 0);
    }

    #[test]
    fn sizing_arithmetic() {
        let s = SizingModel {
            expansion: 1.5,
            reduce_output_total_bytes: 1000,
            map_flops_per_byte: 10.0,
            reduce_flops_per_byte: 5.0,
        };
        assert_eq!(s.map_output_bytes(1000), 1500);
        assert_eq!(s.partition_bytes(1000, 3), 500);
        assert_eq!(s.reduce_output_bytes(100_000, 2), 500);
        assert_eq!(s.map_flops(100), 1000.0);
        assert_eq!(s.reduce_flops(100), 500.0);
    }

    #[test]
    fn mode_labels_match_table1() {
        assert_eq!(MrMode::ServerRelay.to_string(), "BOINC");
        assert_eq!(MrMode::InterClient.to_string(), "BOINC-MR");
    }

    #[test]
    fn job_config_wire_round_trip() {
        let mut c = MrJobConfig::paper_wordcount(20, 5, MrMode::InterClient);
        c.input_bytes = 123_456_789;
        c.map_outputs_to_server = false;
        c.mitigation.intermediate_downloads = true;
        c.delay_bound_s = 1234.5;
        c.sizing.expansion = 1.375;
        let back = MrJobConfig::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.job.name, c.job.name);
        assert_eq!(back.job.n_maps, 20);
        assert_eq!(back.job.n_reduces, 5);
        assert_eq!(back.input_bytes, c.input_bytes);
        assert_eq!(back.mode, c.mode);
        assert_eq!(
            back.sizing.expansion.to_bits(),
            c.sizing.expansion.to_bits()
        );
        assert!(!back.map_outputs_to_server);
        assert!(back.mitigation.intermediate_downloads);
        assert!(!back.mitigation.immediate_report);
        assert_eq!(back.delay_bound_s.to_bits(), c.delay_bound_s.to_bits());
        // Canonical: re-encoding reproduces the same bytes.
        assert_eq!(back.to_bytes(), c.to_bytes());
    }
}
