//! BOINC-MR job configuration — the model-side equivalent of the
//! paper's `mr_jobtracker.xml` ("a general configuration file … used to
//! specify MapReduce parameters, such as number of mappers and
//! reducers").

use serde::{Deserialize, Serialize};
use vmr_durable::{Dec, Enc, WireError};
use vmr_mapreduce::{run_map_task, HashPartitioner, JobSpec, MapReduceApp};
use vmr_netsim::{HostLink, NatType, TierId, TierLink, Topology};
use vmr_vcore::{Availability, HostProfile};

/// How reduce tasks obtain their map-output inputs (the two systems
/// Table I compares).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MrMode {
    /// Plain BOINC clients: every byte relays through the project data
    /// server ("this option is nowhere near optimal since all data must
    /// go through the server").
    ServerRelay,
    /// BOINC-MR clients: reducers download map outputs straight from
    /// the mappers over TCP, with server fall-back.
    InterClient,
}

impl std::fmt::Display for MrMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrMode::ServerRelay => f.write_str("BOINC"),
            MrMode::InterClient => f.write_str("BOINC-MR"),
        }
    }
}

/// §IV.C's proposed fixes for the slow-node/backoff problem, togglable
/// for the mitigation ablation.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MitigationPlan {
    /// Report map results as soon as their upload completes (extra RPC,
    /// bypassing the backoff gate).
    pub immediate_report: bool,
    /// Intermediate data downloads: reducers prefetch map outputs while
    /// the map phase still runs, so at reduce start only the partitions
    /// of the *last-validated* map remain to fetch. (Approximation: the
    /// shuffle overlap leaves only the critical-path tail.)
    pub intermediate_downloads: bool,
}

/// Byte-size model of a MapReduce job on a given application, used to
/// parameterize the timing simulation. Calibrated by actually running
/// the app's map function on a corpus sample (see
/// [`SizingModel::calibrate`]), so the simulated transfer volumes track
/// the real data volumes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SizingModel {
    /// map_output_bytes ≈ input_bytes × expansion.
    pub expansion: f64,
    /// Total final-output bytes across all reducers. Word-count output
    /// is *vocabulary*-bound, not input-bound, so this is an absolute
    /// size rather than an input fraction.
    pub reduce_output_total_bytes: u64,
    /// FLOPs charged per input byte mapped (text scanning + hashing).
    pub map_flops_per_byte: f64,
    /// FLOPs charged per intermediate byte reduced.
    pub reduce_flops_per_byte: f64,
}

impl Default for SizingModel {
    fn default() -> Self {
        // Word-count-like defaults; `calibrate` refines the data ratios.
        SizingModel {
            expansion: 1.3,
            reduce_output_total_bytes: 800 << 10,
            // The paper's prototype parses text word by word through
            // BOINC's C API; ~1.5 MB/s on the P4 Xeon reproduces its
            // phase lengths (map: tokenize + hash + write ~1.4× output;
            // reduce: parse + accumulate, roughly 3× cheaper).
            map_flops_per_byte: 1000.0,
            reduce_flops_per_byte: 150.0,
        }
    }
}

impl SizingModel {
    /// Measures `expansion` and `reduce_output_frac` by running the
    /// app's real map/reduce over `sample`, keeping the default FLOP
    /// costs. This ties the simulator's transfer volumes to the actual
    /// application data.
    pub fn calibrate<A>(app: &A, sample: &[u8]) -> Self
    where
        A: MapReduceApp<K = String>,
    {
        let part = HashPartitioner::new(1);
        let mo = run_map_task(app, sample, &part, |k| k.as_bytes().to_vec());
        // The paper's pipeline has no combiner (one line per word), so
        // expansion is measured against the *uncombined* stream: re-emit
        // raw pairs.
        let mut raw_bytes = 0usize;
        let mut line = String::new();
        app.map(sample, &mut |k, v| {
            line.clear();
            app.encode(&k, &v, &mut line);
            raw_bytes += line.len();
        });
        let reduced = vmr_mapreduce::run_reduce_task(app, vec![mo.partitions[0].clone()]);
        let mut out_bytes = 0usize;
        for (k, v) in &reduced {
            line.clear();
            app.encode(k, v, &mut line);
            out_bytes += line.len();
        }
        let n = sample.len().max(1) as f64;
        SizingModel {
            expansion: raw_bytes as f64 / n,
            // The sample sees most of the vocabulary (Zipf); pad for
            // the unseen tail.
            reduce_output_total_bytes: (out_bytes as f64 * 1.5) as u64,
            ..SizingModel::default()
        }
    }

    /// Bytes of one map task's full output for a chunk of `chunk` bytes.
    pub fn map_output_bytes(&self, chunk: u64) -> u64 {
        (chunk as f64 * self.expansion) as u64
    }

    /// Bytes of one (map, partition) intermediate file.
    pub fn partition_bytes(&self, chunk: u64, n_reduces: usize) -> u64 {
        self.map_output_bytes(chunk) / n_reduces.max(1) as u64
    }

    /// Bytes of one reduce task's final output.
    pub fn reduce_output_bytes(&self, _input_total: u64, n_reduces: usize) -> u64 {
        (self.reduce_output_total_bytes / n_reduces.max(1) as u64).max(1)
    }

    /// FLOPs of a map task over `chunk` bytes.
    pub fn map_flops(&self, chunk: u64) -> f64 {
        chunk as f64 * self.map_flops_per_byte
    }

    /// FLOPs of a reduce task over `bytes` of intermediate data.
    pub fn reduce_flops(&self, bytes: u64) -> f64 {
        bytes as f64 * self.reduce_flops_per_byte
    }
}

/// Full description of one MapReduce job submitted to the project.
#[derive(Clone, Debug)]
pub struct MrJobConfig {
    /// Job geometry (maps, reduces).
    pub job: JobSpec,
    /// Total initial input bytes (the paper's 1 GB).
    pub input_bytes: u64,
    /// Replication per work unit (paper: 2).
    pub replication: u32,
    /// Quorum of identical outputs (paper: 2).
    pub quorum: u32,
    /// Transfer mode (the Table I comparison axis).
    pub mode: MrMode,
    /// Data/compute sizing.
    pub sizing: SizingModel,
    /// Whether BOINC-MR mappers also return outputs to the server (v1
    /// prototype behaviour: required for the server fall-back path).
    pub map_outputs_to_server: bool,
    /// §IV.C mitigation toggles.
    pub mitigation: MitigationPlan,
    /// Report deadline per result, seconds (BOINC `delay_bound`).
    pub delay_bound_s: f64,
}

impl MrJobConfig {
    /// The paper's word-count setup: 1 GB input, replication 2/quorum 2.
    pub fn paper_wordcount(n_maps: usize, n_reduces: usize, mode: MrMode) -> Self {
        MrJobConfig {
            job: JobSpec::new("mr0", n_maps, n_reduces),
            input_bytes: 1 << 30,
            replication: 2,
            quorum: 2,
            mode,
            sizing: SizingModel::default(),
            map_outputs_to_server: true,
            mitigation: MitigationPlan::default(),
            delay_bound_s: 6.0 * 3600.0,
        }
    }

    /// Bytes of one map input chunk.
    pub fn chunk_bytes(&self) -> u64 {
        self.input_bytes / self.job.n_maps as u64
    }

    /// Encodes the full config through the WAL wire codec (the opaque
    /// `cfg` blob of `StateChange::MrJobSubmitted`).
    pub fn encode(&self, e: &mut Enc) {
        e.str(&self.job.name);
        e.u32(self.job.n_maps as u32);
        e.u32(self.job.n_reduces as u32);
        e.u64(self.input_bytes);
        e.u32(self.replication);
        e.u32(self.quorum);
        e.u8(match self.mode {
            MrMode::ServerRelay => 0,
            MrMode::InterClient => 1,
        });
        e.f64(self.sizing.expansion);
        e.u64(self.sizing.reduce_output_total_bytes);
        e.f64(self.sizing.map_flops_per_byte);
        e.f64(self.sizing.reduce_flops_per_byte);
        e.bool(self.map_outputs_to_server);
        e.bool(self.mitigation.immediate_report);
        e.bool(self.mitigation.intermediate_downloads);
        e.f64(self.delay_bound_s);
    }

    /// Standalone encoding of [`MrJobConfig::encode`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(96);
        self.encode(&mut e);
        e.into_vec()
    }

    /// Decodes a config written by [`MrJobConfig::encode`].
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let name = d.str()?;
        let n_maps = d.u32()? as usize;
        let n_reduces = d.u32()? as usize;
        Ok(MrJobConfig {
            job: JobSpec::new(name, n_maps, n_reduces),
            input_bytes: d.u64()?,
            replication: d.u32()?,
            quorum: d.u32()?,
            mode: match d.u8()? {
                0 => MrMode::ServerRelay,
                1 => MrMode::InterClient,
                t => return Err(WireError::BadTag(t)),
            },
            sizing: SizingModel {
                expansion: d.f64()?,
                reduce_output_total_bytes: d.u64()?,
                map_flops_per_byte: d.f64()?,
                reduce_flops_per_byte: d.f64()?,
            },
            map_outputs_to_server: d.bool()?,
            mitigation: MitigationPlan {
                immediate_report: d.bool()?,
                intermediate_downloads: d.bool()?,
            },
            delay_bound_s: d.f64()?,
        })
    }

    /// Decodes a standalone [`MrJobConfig::to_bytes`] blob.
    pub fn from_bytes(b: &[u8]) -> Result<Self, WireError> {
        let mut d = Dec::new(b);
        let cfg = Self::decode(&mut d)?;
        d.finish()?;
        Ok(cfg)
    }
}

/// One access/compute class in a volunteer population, in the style of
/// Anderson & Fedak's BOINC host census ("The Computational and Storage
/// Potential of Volunteer Computing", CCGrid'06): the population is a
/// heavy-tailed mixture of a few connection classes rather than anything
/// resembling the uniform 100 Mbit Emulab testbed.
#[derive(Clone, Debug)]
pub struct VolunteerClass {
    /// Class label (becomes the generated hosts' profile model name).
    pub name: &'static str,
    /// Relative share of the population drawing this class.
    pub weight: f64,
    /// Access downlink, megabit/s (before per-host jitter).
    pub down_mbit: f64,
    /// Access uplink, megabit/s (before per-host jitter).
    pub up_mbit: f64,
    /// One-way access latency, seconds.
    pub latency_s: f64,
    /// Sustained compute speed, FLOPS.
    pub flops_per_sec: f64,
    /// Mean (on, off) period lengths in seconds of the owner-usage
    /// availability pattern; `None` = always-on machine.
    pub availability: Option<(f64, f64)>,
}

/// Parameters of a synthetic internet-scale volunteer population:
/// `hosts` volunteers drawn from a class mixture, spread over `isps`
/// oversubscribed aggregation tiers behind a shared backbone.
#[derive(Clone, Debug)]
pub struct PopulationSpec {
    /// Number of volunteer hosts to generate.
    pub hosts: usize,
    /// Deterministic generator seed.
    pub seed: u64,
    /// Number of ISP/AS aggregation tiers.
    pub isps: usize,
    /// Contention ratio of an ISP tier: tier capacity = the sum of its
    /// subscribers' access downlinks divided by this (8–20 is typical
    /// for consumer broadband).
    pub isp_oversubscription: f64,
    /// One-way latency of an ISP aggregation hop, seconds.
    pub isp_latency_s: f64,
    /// Backbone capacity = the sum of tier capacities divided by this.
    pub backbone_oversubscription: f64,
    /// One-way backbone traversal latency, seconds.
    pub backbone_latency_s: f64,
    /// The class mixture (weights need not sum to 1).
    pub classes: Vec<VolunteerClass>,
}

/// One generated volunteer: its class, tier placement, access rates and
/// a ready-made [`HostProfile`] for the vcore scheduler.
#[derive(Clone, Debug)]
pub struct GeneratedHost {
    /// Index into [`PopulationSpec::classes`].
    pub class: usize,
    /// The ISP tier the host subscribes to.
    pub tier: TierId,
    /// Jittered access downlink, megabit/s.
    pub down_mbit: f64,
    /// Jittered access uplink, megabit/s.
    pub up_mbit: f64,
    /// Compute/availability profile for the BOINC model.
    pub profile: HostProfile,
}

/// A generated volunteer population: the hierarchical topology plus
/// per-host metadata, index-aligned with the topology's `HostId`s.
#[derive(Debug)]
pub struct HostPopulation {
    /// Hierarchical network (host access links → ISP tiers → backbone).
    pub topo: Topology,
    /// Per-host metadata; `hosts[i]` describes `HostId(i as u32)`.
    pub hosts: Vec<GeneratedHost>,
}

/// splitmix64 — small deterministic generator, no external dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)`.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

impl PopulationSpec {
    /// An Anderson-&-Fedak-flavoured consumer-internet mixture: mostly
    /// DSL/cable with a slow satellite/dial-up floor and a fibre/campus
    /// tail, giving the measured heavy-tailed access-bandwidth
    /// distribution (median a few Mbit, p95 tens of Mbit).
    pub fn internet(hosts: usize, seed: u64) -> Self {
        PopulationSpec {
            hosts,
            seed,
            isps: (hosts / 64).clamp(1, 2048),
            isp_oversubscription: 8.0,
            isp_latency_s: 0.008,
            backbone_oversubscription: 3.0,
            backbone_latency_s: 0.02,
            classes: vec![
                VolunteerClass {
                    name: "satellite",
                    weight: 0.05,
                    down_mbit: 0.5,
                    up_mbit: 0.25,
                    latency_s: 0.15,
                    flops_per_sec: 1.0e9,
                    availability: Some((1_800.0, 1_800.0)),
                },
                VolunteerClass {
                    name: "dsl",
                    weight: 0.40,
                    down_mbit: 4.0,
                    up_mbit: 0.5,
                    latency_s: 0.03,
                    flops_per_sec: 1.5e9,
                    availability: Some((3_600.0, 1_800.0)),
                },
                VolunteerClass {
                    name: "cable",
                    weight: 0.35,
                    down_mbit: 16.0,
                    up_mbit: 1.0,
                    latency_s: 0.02,
                    flops_per_sec: 2.4e9,
                    availability: Some((7_200.0, 3_600.0)),
                },
                VolunteerClass {
                    name: "fiber",
                    weight: 0.15,
                    down_mbit: 100.0,
                    up_mbit: 20.0,
                    latency_s: 0.005,
                    flops_per_sec: 3.0e9,
                    availability: Some((14_400.0, 3_600.0)),
                },
                VolunteerClass {
                    name: "campus",
                    weight: 0.05,
                    down_mbit: 100.0,
                    up_mbit: 100.0,
                    latency_s: 0.002,
                    flops_per_sec: 3.2e9,
                    availability: None,
                },
            ],
        }
    }

    /// Draws the population. Deterministic in the spec: the same spec
    /// yields bit-identical topologies and profiles.
    ///
    /// Two passes: classes/ISPs/jitters are sampled first so every tier
    /// capacity can be sized from its actual subscriber load (sum of
    /// member downlinks over the contention ratio), then the topology is
    /// built tiers-first (tier ids must exist before `add_host_in`).
    pub fn generate(&self) -> HostPopulation {
        assert!(!self.classes.is_empty(), "population needs ≥ 1 class");
        let total_w: f64 = self.classes.iter().map(|c| c.weight).sum();
        let isps = self.isps.max(1);
        let mut rng = self.seed ^ 0x5851_f42d_4c95_7f2d;
        struct Draw {
            class: usize,
            isp: usize,
            bw_jitter: f64,
            cpu_jitter: f64,
        }
        let mut draws = Vec::with_capacity(self.hosts);
        let mut isp_down_mbit = vec![0.0f64; isps];
        for _ in 0..self.hosts {
            let mut roll = unit_f64(&mut rng) * total_w;
            let mut class = self.classes.len() - 1;
            for (i, c) in self.classes.iter().enumerate() {
                if roll < c.weight {
                    class = i;
                    break;
                }
                roll -= c.weight;
            }
            let isp = (splitmix64(&mut rng) % isps as u64) as usize;
            let bw_jitter = 0.75 + 0.5 * unit_f64(&mut rng);
            let cpu_jitter = 0.75 + 0.5 * unit_f64(&mut rng);
            isp_down_mbit[isp] += self.classes[class].down_mbit * bw_jitter;
            draws.push(Draw {
                class,
                isp,
                bw_jitter,
                cpu_jitter,
            });
        }
        let mut topo = Topology::new();
        let mut tiers = Vec::with_capacity(isps);
        let mut total_gbit = 0.0;
        for &down in &isp_down_mbit {
            let gbit = (down / 1_000.0 / self.isp_oversubscription).max(0.001);
            total_gbit += gbit;
            tiers.push(topo.add_tier(TierLink::symmetric_gbit(gbit, self.isp_latency_s)));
        }
        topo.set_backbone(
            total_gbit / self.backbone_oversubscription * 1e9 / 8.0,
            self.backbone_latency_s,
        );
        let mut hosts = Vec::with_capacity(self.hosts);
        for d in draws {
            let c = &self.classes[d.class];
            let down_mbit = c.down_mbit * d.bw_jitter;
            let up_mbit = c.up_mbit * d.bw_jitter;
            topo.add_host_in(
                tiers[d.isp],
                HostLink::asymmetric_mbit(down_mbit, up_mbit, c.latency_s),
            );
            hosts.push(GeneratedHost {
                class: d.class,
                tier: tiers[d.isp],
                down_mbit,
                up_mbit,
                profile: HostProfile {
                    model: c.name.into(),
                    flops_per_sec: c.flops_per_sec * d.cpu_jitter,
                    slots: 1,
                    nat: NatType::Open,
                    availability: c.availability.map(|(on_mean_s, off_mean_s)| Availability {
                        on_mean_s,
                        off_mean_s,
                    }),
                },
            });
        }
        HostPopulation { topo, hosts }
    }
}

impl HostPopulation {
    /// Number of generated hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Host count per class index.
    pub fn class_counts(&self, n_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n_classes];
        for h in &self.hosts {
            counts[h.class] += 1;
        }
        counts
    }

    /// Mean access downlink across the population, megabit/s.
    pub fn mean_down_mbit(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts.iter().map(|h| h.down_mbit).sum::<f64>() / self.hosts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_mapreduce::apps::WordCount;
    use vmr_mapreduce::{CorpusGen, CorpusSpec};

    #[test]
    fn paper_config_shape() {
        let c = MrJobConfig::paper_wordcount(20, 5, MrMode::InterClient);
        assert_eq!(c.chunk_bytes(), (1u64 << 30) / 20);
        assert_eq!(c.replication, 2);
        assert_eq!(c.quorum, 2);
    }

    #[test]
    fn calibration_on_real_corpus() {
        let mut gen = CorpusGen::new(&CorpusSpec::default());
        let sample = gen.generate(200_000);
        let s = SizingModel::calibrate(&WordCount, &sample);
        // Word count without combiner: map output a bit larger than the
        // input ("word 1\n" per token).
        assert!(
            s.expansion > 1.0 && s.expansion < 2.0,
            "expansion = {}",
            s.expansion
        );
        // Zipf text: distinct words ≪ tokens, so the final output is
        // far smaller than the sample it was measured on.
        assert!(
            s.reduce_output_total_bytes < 200_000 * 3,
            "reduce_output_total_bytes = {}",
            s.reduce_output_total_bytes
        );
        assert!(s.reduce_output_total_bytes > 0);
    }

    #[test]
    fn sizing_arithmetic() {
        let s = SizingModel {
            expansion: 1.5,
            reduce_output_total_bytes: 1000,
            map_flops_per_byte: 10.0,
            reduce_flops_per_byte: 5.0,
        };
        assert_eq!(s.map_output_bytes(1000), 1500);
        assert_eq!(s.partition_bytes(1000, 3), 500);
        assert_eq!(s.reduce_output_bytes(100_000, 2), 500);
        assert_eq!(s.map_flops(100), 1000.0);
        assert_eq!(s.reduce_flops(100), 500.0);
    }

    #[test]
    fn mode_labels_match_table1() {
        assert_eq!(MrMode::ServerRelay.to_string(), "BOINC");
        assert_eq!(MrMode::InterClient.to_string(), "BOINC-MR");
    }

    #[test]
    fn population_is_deterministic() {
        let spec = PopulationSpec::internet(500, 42);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), 500);
        assert_eq!(a.topo.num_links(), b.topo.num_links());
        for (x, y) in a.hosts.iter().zip(&b.hosts) {
            assert_eq!(x.class, y.class);
            assert_eq!(x.tier, y.tier);
            assert_eq!(x.down_mbit.to_bits(), y.down_mbit.to_bits());
            assert_eq!(
                x.profile.flops_per_sec.to_bits(),
                y.profile.flops_per_sec.to_bits()
            );
        }
        // A different seed actually changes the draw.
        let c = PopulationSpec::internet(500, 43).generate();
        assert!(a
            .hosts
            .iter()
            .zip(&c.hosts)
            .any(|(x, y)| x.down_mbit.to_bits() != y.down_mbit.to_bits()));
    }

    #[test]
    fn population_class_mix_tracks_weights() {
        let spec = PopulationSpec::internet(10_000, 7);
        let pop = spec.generate();
        let total_w: f64 = spec.classes.iter().map(|c| c.weight).sum();
        let counts = pop.class_counts(spec.classes.len());
        for (c, &n) in spec.classes.iter().zip(&counts) {
            let expect = c.weight / total_w;
            let got = n as f64 / 10_000.0;
            assert!(
                (got - expect).abs() < 0.03,
                "{}: drew {} expected ~{}",
                c.name,
                got,
                expect
            );
        }
    }

    #[test]
    fn population_bandwidth_is_heavy_tailed() {
        let pop = PopulationSpec::internet(10_000, 1).generate();
        let mut down: Vec<f64> = pop.hosts.iter().map(|h| h.down_mbit).collect();
        down.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let median = down[down.len() / 2];
        let p95 = down[down.len() * 95 / 100];
        assert!(
            p95 / median > 4.0,
            "tail too flat: median {median}, p95 {p95}"
        );
    }

    #[test]
    fn population_topology_is_oversubscribed_hierarchy() {
        let spec = PopulationSpec::internet(2_000, 9);
        let pop = spec.generate();
        assert!(pop.topo.is_hierarchical());
        assert_eq!(pop.topo.num_tiers(), spec.isps);
        // Every tier with subscribers publishes less capacity than the
        // sum of its members' access downlinks (contention ratio > 1).
        let mut member_down = vec![0.0f64; spec.isps];
        for h in &pop.hosts {
            member_down[h.tier.0 as usize] += h.down_mbit * 1e6 / 8.0;
        }
        for (i, &sum) in member_down.iter().enumerate() {
            if sum > 0.0 {
                let tier = pop.topo.tier_link(TierId(i as u32));
                assert!(tier.down_bytes_per_sec < sum, "tier {i} not oversubscribed");
            }
        }
        // Availability classes propagate into the vcore profiles; the
        // always-on campus class keeps `None`.
        assert!(pop.hosts.iter().any(|h| h.profile.availability.is_some()));
        assert!(pop
            .hosts
            .iter()
            .filter(|h| h.profile.model == "campus")
            .all(|h| h.profile.availability.is_none()));
    }

    #[test]
    fn job_config_wire_round_trip() {
        let mut c = MrJobConfig::paper_wordcount(20, 5, MrMode::InterClient);
        c.input_bytes = 123_456_789;
        c.map_outputs_to_server = false;
        c.mitigation.intermediate_downloads = true;
        c.delay_bound_s = 1234.5;
        c.sizing.expansion = 1.375;
        let back = MrJobConfig::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(back.job.name, c.job.name);
        assert_eq!(back.job.n_maps, 20);
        assert_eq!(back.job.n_reduces, 5);
        assert_eq!(back.input_bytes, c.input_bytes);
        assert_eq!(back.mode, c.mode);
        assert_eq!(
            back.sizing.expansion.to_bits(),
            c.sizing.expansion.to_bits()
        );
        assert!(!back.map_outputs_to_server);
        assert!(back.mitigation.intermediate_downloads);
        assert!(!back.mitigation.immediate_report);
        assert_eq!(back.delay_bound_s.to_bits(), c.delay_bound_s.to_bits());
        // Canonical: re-encoding reproduces the same bytes.
        assert_eq!(back.to_bytes(), c.to_bytes());
    }
}
