//! MapReduce workflows: chained jobs.
//!
//! §II: "MapReduce can be considered as a gateway to allow other
//! paradigms or more complex applications to be run on a VC system.
//! There are several examples of MapReduce workflows, and one could
//! consider other types of scientific workflows … as candidates to run
//! on desktop grids."
//!
//! A [`Workflow`] is a linear chain of MapReduce stages; stage *i+1*'s
//! input is stage *i*'s final output, so it is submitted only when the
//! previous stage's last reduce work unit validates. The policy wrapper
//! drives the chain from the same engine hooks BOINC-MR uses.

use crate::config::MrJobConfig;
use crate::jobtracker::Phase;
use crate::policy::MrPolicy;
use vmr_vcore::{ClientId, Engine, Policy, ResultId, WuId};

/// One stage of a workflow.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Job parameters. `input_bytes` is used as-is for the first stage;
    /// later stages scale it by the data the previous stage produced
    /// (its reduce output total), times `input_scale`.
    pub cfg: MrJobConfig,
    /// Multiplier on the previous stage's output size (1.0 = consume it
    /// verbatim; >1 models a join against reference data).
    pub input_scale: f64,
}

/// A linear chain of MapReduce jobs.
pub struct Workflow {
    inner: MrPolicy,
    stages: Vec<Stage>,
    /// Tracker job index of each *submitted* stage.
    submitted: Vec<usize>,
}

impl Workflow {
    /// Builds a workflow from its stages (at least one).
    pub fn new(stages: Vec<Stage>) -> Self {
        assert!(!stages.is_empty(), "workflow needs at least one stage");
        Workflow {
            inner: MrPolicy::new(),
            stages,
            submitted: Vec::new(),
        }
    }

    /// Submits the first stage; later stages auto-submit on completion.
    pub fn start(&mut self, eng: &mut Engine) {
        let cfg = self.stages[0].cfg.clone();
        let ji = self.inner.submit_job(eng, cfg);
        self.submitted.push(ji);
    }

    /// The underlying MR policy (phase times per stage live here).
    pub fn policy(&self) -> &MrPolicy {
        &self.inner
    }

    /// Stages submitted so far.
    pub fn stages_submitted(&self) -> usize {
        self.submitted.len()
    }

    /// True when the final stage is done (or any stage failed).
    pub fn finished(&self) -> bool {
        let all_submitted = self.submitted.len() == self.stages.len();
        let last_done = self
            .submitted
            .last()
            .map(|&ji| {
                matches!(
                    self.inner.tracker.jobs[ji].phase,
                    Phase::Done | Phase::Failed
                )
            })
            .unwrap_or(false);
        let any_failed = self
            .submitted
            .iter()
            .any(|&ji| self.inner.tracker.jobs[ji].phase == Phase::Failed);
        (all_submitted && last_done) || any_failed
    }

    /// Did the whole chain complete successfully?
    pub fn succeeded(&self) -> bool {
        self.submitted.len() == self.stages.len()
            && self
                .submitted
                .iter()
                .all(|&ji| self.inner.tracker.jobs[ji].phase == Phase::Done)
    }

    fn maybe_advance(&mut self, eng: &mut Engine) {
        let Some(&last_ji) = self.submitted.last() else {
            return;
        };
        if self.inner.tracker.jobs[last_ji].phase != Phase::Done {
            return;
        }
        if self.submitted.len() == self.stages.len() {
            return;
        }
        // Previous stage's output feeds the next stage's input.
        let prev = &self.inner.tracker.jobs[last_ji];
        let produced = prev
            .cfg
            .sizing
            .reduce_output_bytes(prev.cfg.input_bytes, prev.cfg.job.n_reduces)
            * prev.cfg.job.n_reduces as u64;
        let next_stage = &self.stages[self.submitted.len()];
        let mut cfg = next_stage.cfg.clone();
        cfg.input_bytes = ((produced as f64 * next_stage.input_scale) as u64).max(1);
        let ji = self.inner.submit_job(eng, cfg);
        self.submitted.push(ji);
    }
}

impl Policy for Workflow {
    fn on_wu_validated(&mut self, eng: &mut Engine, wu: WuId, agreeing: &[ClientId]) {
        self.inner.on_wu_validated(eng, wu, agreeing);
        self.maybe_advance(eng);
    }
    fn on_wu_failed(&mut self, eng: &mut Engine, wu: WuId) {
        self.inner.on_wu_failed(eng, wu);
    }
    fn on_task_granted(&mut self, eng: &mut Engine, client: ClientId, rid: ResultId) {
        self.inner.on_task_granted(eng, client, rid);
    }
    fn on_task_executed(&mut self, eng: &mut Engine, client: ClientId, rid: ResultId) {
        self.inner.on_task_executed(eng, client, rid);
    }
    fn on_result_reported(&mut self, eng: &mut Engine, rid: ResultId) {
        self.inner.on_result_reported(eng, rid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MrMode;
    use vmr_desim::SimTime;
    use vmr_netsim::HostLink;
    use vmr_vcore::HostProfile;

    fn engine(n: usize) -> Engine {
        Engine::builder(3)
            .clients((0..n).map(|_| {
                (
                    HostProfile::pc3001(),
                    HostLink::symmetric_mbit(100.0, 0.000_5),
                )
            }))
            .build()
    }

    fn stage(n_maps: usize, n_reduces: usize, input: u64) -> Stage {
        let mut cfg = MrJobConfig::paper_wordcount(n_maps, n_reduces, MrMode::InterClient);
        cfg.input_bytes = input;
        Stage {
            cfg,
            input_scale: 1.0,
        }
    }

    #[test]
    fn two_stage_chain_completes_in_order() {
        let mut eng = engine(6);
        let mut wf = Workflow::new(vec![
            stage(4, 2, 8 << 20),
            stage(2, 1, 0), // input comes from stage 1's output
        ]);
        wf.start(&mut eng);
        assert_eq!(wf.stages_submitted(), 1);
        eng.run_until(&mut wf, SimTime::from_secs(100_000), |e| {
            e.db.all_wus_terminal()
        });
        assert!(wf.finished());
        assert!(wf.succeeded());
        assert_eq!(wf.stages_submitted(), 2);
        let jobs = &wf.policy().tracker.jobs;
        // Stage 2 starts only after stage 1 is fully done.
        assert!(jobs[1].first_map_assign.unwrap() >= jobs[0].done_at.unwrap());
        // Stage 2's input is stage 1's (small) output.
        assert!(jobs[1].cfg.input_bytes < jobs[0].cfg.input_bytes);
        assert!(jobs[1].cfg.input_bytes > 0);
    }

    #[test]
    fn three_stage_chain() {
        let mut eng = engine(6);
        let mut wf = Workflow::new(vec![stage(3, 2, 4 << 20), stage(2, 2, 0), stage(2, 1, 0)]);
        wf.start(&mut eng);
        eng.run_until(&mut wf, SimTime::from_secs(200_000), |e| {
            e.db.all_wus_terminal()
        });
        assert!(
            wf.succeeded(),
            "phases: {:?}",
            wf.policy()
                .tracker
                .jobs
                .iter()
                .map(|j| j.phase)
                .collect::<Vec<_>>()
        );
        assert_eq!(wf.stages_submitted(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_workflow_rejected() {
        Workflow::new(vec![]);
    }
}
