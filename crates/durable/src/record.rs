//! The typed change vocabulary of the write-ahead log.
//!
//! One [`StateChange`] is one durable mutation of server state. The
//! variants mirror — exactly — the mutation points in `vcore` (project
//! database, credit ledger, assimilator) and `core` (the MapReduce
//! `JobTracker`): replaying the sequence against a snapshot must
//! reproduce the live server state bit for bit, so each variant carries
//! precisely the inputs of the corresponding mutator and nothing
//! derived. Ids are raw `u32` (the newtypes live upstream in `vcore`;
//! `vmr-durable` stays a leaf crate), times are sim-microseconds, and
//! crate-specific payloads (`WorkUnitSpec`, the MR job config) travel
//! as opaque blobs encoded by their owning crate with [`crate::wire`].

use crate::wire::{Dec, Enc, WireError};

/// One durable mutation of server state.
#[derive(Clone, Debug, PartialEq)]
pub enum StateChange {
    /// A work unit row was inserted (`Db::insert_workunit`). Does not
    /// imply its initial replicas — each is a separate
    /// [`StateChange::ResultCreated`] that follows in the log.
    WuInserted {
        /// New work-unit id (must equal the next row index on replay).
        wu: u32,
        /// Insertion sim-time, microseconds.
        at_us: u64,
        /// Opaque `WorkUnitSpec` encoding (owned by `vcore`).
        spec: Vec<u8>,
    },
    /// A result instance was created (`Db::create_result`).
    ResultCreated {
        /// New result id (must equal the next row index on replay).
        rid: u32,
        /// Owning work unit.
        wu: u32,
    },
    /// A result was handed to a client (`Db::mark_sent`).
    ResultSent {
        /// Result id.
        rid: u32,
        /// Receiving client.
        client: u32,
        /// Send sim-time, microseconds.
        at_us: u64,
        /// Report deadline, microseconds.
        deadline_us: u64,
    },
    /// A client report (or deadline timeout) was recorded
    /// (`Db::mark_reported` / `Db::mark_timed_out`).
    ResultReported {
        /// Result id.
        rid: u32,
        /// `ResultOutcome` discriminant (owned by `vcore`).
        outcome: u8,
        /// Output fingerprint when the outcome carried one.
        fingerprint: Option<u64>,
        /// Report sim-time, microseconds.
        at_us: u64,
    },
    /// An unsent result was cancelled (`Db::cancel_unsent`).
    ResultCancelled {
        /// Result id.
        rid: u32,
    },
    /// Quorum reached: the WU validated (`Db::mark_wu_validated`).
    WuValidated {
        /// Work-unit id.
        wu: u32,
        /// Canonical output fingerprint.
        canonical: u64,
        /// Validation sim-time, microseconds.
        at_us: u64,
    },
    /// Result budget exhausted: the WU failed (`Db::mark_wu_failed`).
    WuFailed {
        /// Work-unit id.
        wu: u32,
        /// Failure sim-time, microseconds.
        at_us: u64,
    },
    /// Credit granted to a quorum (`CreditLedger::on_wu_validated`).
    CreditGranted {
        /// Clients whose fingerprint matched the canonical one.
        agreeing: Vec<u32>,
        /// Clients that disagreed (charged an invalid result).
        dissenting: Vec<u32>,
        /// Claimed FLOPs, as `f64` bits.
        flops_bits: u64,
    },
    /// An error outcome was charged (`CreditLedger::on_error`).
    CreditError {
        /// Charged client.
        client: u32,
    },
    /// A validated WU's output registration (`Assimilator::assimilate`).
    /// Name/app/canonical are re-derived from the recovered database.
    Assimilated {
        /// Work-unit id.
        wu: u32,
        /// Clients holding the canonical output.
        holders: Vec<u32>,
        /// Assimilation sim-time, microseconds.
        at_us: u64,
    },
    /// A MapReduce job was submitted (`MrPolicy::submit_job`).
    MrJobSubmitted {
        /// New job index (must equal the next job index on replay).
        job: u32,
        /// Opaque `MrJobConfig` encoding (owned by `core`).
        cfg: Vec<u8>,
    },
    /// A WU was registered in the JobTracker index.
    MrWuIndexed {
        /// Work-unit id.
        wu: u32,
        /// Owning job index.
        job: u32,
        /// False = map task, true = reduce task.
        reduce: bool,
        /// Task index within its phase (must be the next slot on replay).
        idx: u32,
    },
    /// A map task validated; its output holders were registered.
    MrMapValidated {
        /// Job index.
        job: u32,
        /// Map task index.
        m: u32,
        /// Clients holding the map output.
        holders: Vec<u32>,
        /// Validation sim-time, microseconds (feeds `last_validated_map`).
        at_us: u64,
    },
    /// A reduce task validated.
    MrReduceValidated {
        /// Job index.
        job: u32,
    },
    /// The job entered a new phase. Discriminant as in
    /// `core::jobtracker::Phase`: 0 Map, 1 Reduce, 2 Done, 3 Failed.
    MrPhase {
        /// Job index.
        job: u32,
        /// Phase discriminant.
        phase: u8,
        /// Transition sim-time, microseconds.
        at_us: u64,
    },
    /// A phase-timing stamp. `which`: 0 `first_map_assign` (set-once),
    /// 1 `last_map_report` (max), 2 `first_reduce_assign` (set-once),
    /// 3 `last_reduce_report` (max), 4 `map_phase_validated_at` (set).
    MrStamp {
        /// Job index.
        job: u32,
        /// Stamp selector (see above).
        which: u8,
        /// Stamp sim-time, microseconds.
        at_us: u64,
    },
    /// A validation outcome was fed to the trust ledger
    /// (`TrustLedger::observe`). `outcome`: 0 agree, 1 mismatch,
    /// 2 error/timeout.
    TrustObserved {
        /// Observed host.
        client: u32,
        /// Outcome discriminant (see above).
        outcome: u8,
    },
    /// A spot-check was drawn for a trusted host
    /// (`TrustLedger::record_spot_check`).
    TrustSpotCheck {
        /// Spot-checked host.
        client: u32,
    },
    /// The effective quorum of a WU was overridden (or the override
    /// cleared) by the replication policy (`Db::set_quorum_override`).
    WuQuorumOverride {
        /// Work-unit id.
        wu: u32,
        /// New override; `None` restores the spec's `min_quorum`.
        quorum: Option<u32>,
    },
    /// Credit granted pro-rata to trust on an unreplicated validation
    /// (`CreditLedger::on_wu_validated_scaled`).
    CreditGrantedScaled {
        /// Clients whose fingerprint matched the canonical one.
        agreeing: Vec<u32>,
        /// Clients that disagreed (charged an invalid result).
        dissenting: Vec<u32>,
        /// Claimed FLOPs, as `f64` bits.
        flops_bits: u64,
        /// Grant scale in `[0, 1]`, as `f64` bits.
        scale_bits: u64,
    },
    /// An enabled trust configuration attached to the WAL
    /// (`TrustLedger::set_journal`). Written once at startup so a
    /// pre-snapshot crash replays trust records from genesis with the
    /// run's estimator constants, not the defaults. Real-valued knobs
    /// travel as `f64` bits.
    TrustConfigured {
        /// `TrustConfig::enabled`.
        enabled: bool,
        /// `trust_threshold` bits.
        threshold_bits: u64,
        /// `init_error_rate` bits.
        init_bits: u64,
        /// `decay` bits.
        decay_bits: u64,
        /// `punish` bits.
        punish_bits: u64,
        /// `probation_results`.
        probation: u64,
        /// `spot_check_rate` bits.
        spot_bits: u64,
    },
    /// The shuffle plan of a job was fixed at the map→reduce
    /// transition (`MrPolicy::create_reduce_wus`): which strategy
    /// distributes the map outputs and, for coded placement, the
    /// reducer group size the fetch shares were derived from. Only
    /// appended for non-baseline strategies, so default-configured runs
    /// keep their pre-shuffle WAL byte stream.
    MrShufflePlanned {
        /// Job index.
        job: u32,
        /// `vmr_shuffle::StrategyKind::wire_tag()`.
        strategy: u8,
        /// Coded reducer group size (1 = no grouping).
        group: u32,
    },
}

// Variant tags on the wire. Append-only: never renumber.
const T_WU_INSERTED: u8 = 0;
const T_RESULT_CREATED: u8 = 1;
const T_RESULT_SENT: u8 = 2;
const T_RESULT_REPORTED: u8 = 3;
const T_RESULT_CANCELLED: u8 = 4;
const T_WU_VALIDATED: u8 = 5;
const T_WU_FAILED: u8 = 6;
const T_CREDIT_GRANTED: u8 = 7;
const T_CREDIT_ERROR: u8 = 8;
const T_ASSIMILATED: u8 = 9;
const T_MR_JOB_SUBMITTED: u8 = 10;
const T_MR_WU_INDEXED: u8 = 11;
const T_MR_MAP_VALIDATED: u8 = 12;
const T_MR_REDUCE_VALIDATED: u8 = 13;
const T_MR_PHASE: u8 = 14;
const T_MR_STAMP: u8 = 15;
const T_TRUST_OBSERVED: u8 = 16;
const T_TRUST_SPOT_CHECK: u8 = 17;
const T_WU_QUORUM_OVERRIDE: u8 = 18;
const T_CREDIT_GRANTED_SCALED: u8 = 19;
const T_TRUST_CONFIGURED: u8 = 20;
const T_MR_SHUFFLE_PLANNED: u8 = 21;

impl StateChange {
    /// The canonical state section this change mutates (see
    /// [`crate::section`]) — the shard it routes to in a sharded WAL
    /// and the dirty bit it sets for incremental snapshots.
    pub fn section_index(&self) -> usize {
        use crate::section;
        match self {
            StateChange::WuInserted { .. }
            | StateChange::ResultCreated { .. }
            | StateChange::ResultSent { .. }
            | StateChange::ResultReported { .. }
            | StateChange::ResultCancelled { .. }
            | StateChange::WuValidated { .. }
            | StateChange::WuFailed { .. }
            | StateChange::WuQuorumOverride { .. } => section::DB,
            StateChange::CreditGranted { .. }
            | StateChange::CreditError { .. }
            | StateChange::CreditGrantedScaled { .. } => section::CREDIT,
            StateChange::Assimilated { .. } => section::ASSIM,
            StateChange::MrJobSubmitted { .. }
            | StateChange::MrWuIndexed { .. }
            | StateChange::MrMapValidated { .. }
            | StateChange::MrReduceValidated { .. }
            | StateChange::MrPhase { .. }
            | StateChange::MrStamp { .. }
            | StateChange::MrShufflePlanned { .. } => section::TRACKER,
            StateChange::TrustObserved { .. }
            | StateChange::TrustSpotCheck { .. }
            | StateChange::TrustConfigured { .. } => section::TRUST,
        }
    }

    /// Append the wire form to `e`.
    pub fn encode(&self, e: &mut Enc) {
        match self {
            StateChange::WuInserted { wu, at_us, spec } => {
                e.u8(T_WU_INSERTED);
                e.u32(*wu);
                e.u64(*at_us);
                e.bytes(spec);
            }
            StateChange::ResultCreated { rid, wu } => {
                e.u8(T_RESULT_CREATED);
                e.u32(*rid);
                e.u32(*wu);
            }
            StateChange::ResultSent {
                rid,
                client,
                at_us,
                deadline_us,
            } => {
                e.u8(T_RESULT_SENT);
                e.u32(*rid);
                e.u32(*client);
                e.u64(*at_us);
                e.u64(*deadline_us);
            }
            StateChange::ResultReported {
                rid,
                outcome,
                fingerprint,
                at_us,
            } => {
                e.u8(T_RESULT_REPORTED);
                e.u32(*rid);
                e.u8(*outcome);
                e.opt_u64(*fingerprint);
                e.u64(*at_us);
            }
            StateChange::ResultCancelled { rid } => {
                e.u8(T_RESULT_CANCELLED);
                e.u32(*rid);
            }
            StateChange::WuValidated {
                wu,
                canonical,
                at_us,
            } => {
                e.u8(T_WU_VALIDATED);
                e.u32(*wu);
                e.u64(*canonical);
                e.u64(*at_us);
            }
            StateChange::WuFailed { wu, at_us } => {
                e.u8(T_WU_FAILED);
                e.u32(*wu);
                e.u64(*at_us);
            }
            StateChange::CreditGranted {
                agreeing,
                dissenting,
                flops_bits,
            } => {
                e.u8(T_CREDIT_GRANTED);
                e.vec_u32(agreeing);
                e.vec_u32(dissenting);
                e.u64(*flops_bits);
            }
            StateChange::CreditError { client } => {
                e.u8(T_CREDIT_ERROR);
                e.u32(*client);
            }
            StateChange::Assimilated { wu, holders, at_us } => {
                e.u8(T_ASSIMILATED);
                e.u32(*wu);
                e.vec_u32(holders);
                e.u64(*at_us);
            }
            StateChange::MrJobSubmitted { job, cfg } => {
                e.u8(T_MR_JOB_SUBMITTED);
                e.u32(*job);
                e.bytes(cfg);
            }
            StateChange::MrWuIndexed {
                wu,
                job,
                reduce,
                idx,
            } => {
                e.u8(T_MR_WU_INDEXED);
                e.u32(*wu);
                e.u32(*job);
                e.bool(*reduce);
                e.u32(*idx);
            }
            StateChange::MrMapValidated {
                job,
                m,
                holders,
                at_us,
            } => {
                e.u8(T_MR_MAP_VALIDATED);
                e.u32(*job);
                e.u32(*m);
                e.vec_u32(holders);
                e.u64(*at_us);
            }
            StateChange::MrReduceValidated { job } => {
                e.u8(T_MR_REDUCE_VALIDATED);
                e.u32(*job);
            }
            StateChange::MrPhase { job, phase, at_us } => {
                e.u8(T_MR_PHASE);
                e.u32(*job);
                e.u8(*phase);
                e.u64(*at_us);
            }
            StateChange::MrStamp { job, which, at_us } => {
                e.u8(T_MR_STAMP);
                e.u32(*job);
                e.u8(*which);
                e.u64(*at_us);
            }
            StateChange::TrustObserved { client, outcome } => {
                e.u8(T_TRUST_OBSERVED);
                e.u32(*client);
                e.u8(*outcome);
            }
            StateChange::TrustSpotCheck { client } => {
                e.u8(T_TRUST_SPOT_CHECK);
                e.u32(*client);
            }
            StateChange::WuQuorumOverride { wu, quorum } => {
                e.u8(T_WU_QUORUM_OVERRIDE);
                e.u32(*wu);
                e.opt_u32(*quorum);
            }
            StateChange::CreditGrantedScaled {
                agreeing,
                dissenting,
                flops_bits,
                scale_bits,
            } => {
                e.u8(T_CREDIT_GRANTED_SCALED);
                e.vec_u32(agreeing);
                e.vec_u32(dissenting);
                e.u64(*flops_bits);
                e.u64(*scale_bits);
            }
            StateChange::TrustConfigured {
                enabled,
                threshold_bits,
                init_bits,
                decay_bits,
                punish_bits,
                probation,
                spot_bits,
            } => {
                e.u8(T_TRUST_CONFIGURED);
                e.bool(*enabled);
                e.u64(*threshold_bits);
                e.u64(*init_bits);
                e.u64(*decay_bits);
                e.u64(*punish_bits);
                e.u64(*probation);
                e.u64(*spot_bits);
            }
            StateChange::MrShufflePlanned {
                job,
                strategy,
                group,
            } => {
                e.u8(T_MR_SHUFFLE_PLANNED);
                e.u32(*job);
                e.u8(*strategy);
                e.u32(*group);
            }
        }
    }

    /// The wire form as a standalone byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(32);
        self.encode(&mut e);
        e.into_vec()
    }

    /// Decode one change from the cursor.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let tag = d.u8()?;
        Ok(match tag {
            T_WU_INSERTED => StateChange::WuInserted {
                wu: d.u32()?,
                at_us: d.u64()?,
                spec: d.bytes()?,
            },
            T_RESULT_CREATED => StateChange::ResultCreated {
                rid: d.u32()?,
                wu: d.u32()?,
            },
            T_RESULT_SENT => StateChange::ResultSent {
                rid: d.u32()?,
                client: d.u32()?,
                at_us: d.u64()?,
                deadline_us: d.u64()?,
            },
            T_RESULT_REPORTED => StateChange::ResultReported {
                rid: d.u32()?,
                outcome: d.u8()?,
                fingerprint: d.opt_u64()?,
                at_us: d.u64()?,
            },
            T_RESULT_CANCELLED => StateChange::ResultCancelled { rid: d.u32()? },
            T_WU_VALIDATED => StateChange::WuValidated {
                wu: d.u32()?,
                canonical: d.u64()?,
                at_us: d.u64()?,
            },
            T_WU_FAILED => StateChange::WuFailed {
                wu: d.u32()?,
                at_us: d.u64()?,
            },
            T_CREDIT_GRANTED => StateChange::CreditGranted {
                agreeing: d.vec_u32()?,
                dissenting: d.vec_u32()?,
                flops_bits: d.u64()?,
            },
            T_CREDIT_ERROR => StateChange::CreditError { client: d.u32()? },
            T_ASSIMILATED => StateChange::Assimilated {
                wu: d.u32()?,
                holders: d.vec_u32()?,
                at_us: d.u64()?,
            },
            T_MR_JOB_SUBMITTED => StateChange::MrJobSubmitted {
                job: d.u32()?,
                cfg: d.bytes()?,
            },
            T_MR_WU_INDEXED => StateChange::MrWuIndexed {
                wu: d.u32()?,
                job: d.u32()?,
                reduce: d.bool()?,
                idx: d.u32()?,
            },
            T_MR_MAP_VALIDATED => StateChange::MrMapValidated {
                job: d.u32()?,
                m: d.u32()?,
                holders: d.vec_u32()?,
                at_us: d.u64()?,
            },
            T_MR_REDUCE_VALIDATED => StateChange::MrReduceValidated { job: d.u32()? },
            T_MR_PHASE => StateChange::MrPhase {
                job: d.u32()?,
                phase: d.u8()?,
                at_us: d.u64()?,
            },
            T_MR_STAMP => StateChange::MrStamp {
                job: d.u32()?,
                which: d.u8()?,
                at_us: d.u64()?,
            },
            T_TRUST_OBSERVED => StateChange::TrustObserved {
                client: d.u32()?,
                outcome: d.u8()?,
            },
            T_TRUST_SPOT_CHECK => StateChange::TrustSpotCheck { client: d.u32()? },
            T_WU_QUORUM_OVERRIDE => StateChange::WuQuorumOverride {
                wu: d.u32()?,
                quorum: d.opt_u32()?,
            },
            T_CREDIT_GRANTED_SCALED => StateChange::CreditGrantedScaled {
                agreeing: d.vec_u32()?,
                dissenting: d.vec_u32()?,
                flops_bits: d.u64()?,
                scale_bits: d.u64()?,
            },
            T_TRUST_CONFIGURED => StateChange::TrustConfigured {
                enabled: d.bool()?,
                threshold_bits: d.u64()?,
                init_bits: d.u64()?,
                decay_bits: d.u64()?,
                punish_bits: d.u64()?,
                probation: d.u64()?,
                spot_bits: d.u64()?,
            },
            T_MR_SHUFFLE_PLANNED => StateChange::MrShufflePlanned {
                job: d.u32()?,
                strategy: d.u8()?,
                group: d.u32()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<StateChange> {
        vec![
            StateChange::WuInserted {
                wu: 0,
                at_us: 1,
                spec: vec![1, 2, 3],
            },
            StateChange::ResultCreated { rid: 5, wu: 0 },
            StateChange::ResultSent {
                rid: 5,
                client: 2,
                at_us: 10,
                deadline_us: 20,
            },
            StateChange::ResultReported {
                rid: 5,
                outcome: 0,
                fingerprint: Some(0xFEED),
                at_us: 15,
            },
            StateChange::ResultCancelled { rid: 6 },
            StateChange::WuValidated {
                wu: 0,
                canonical: 0xFEED,
                at_us: 16,
            },
            StateChange::WuFailed { wu: 1, at_us: 30 },
            StateChange::CreditGranted {
                agreeing: vec![1, 2],
                dissenting: vec![],
                flops_bits: 1e9f64.to_bits(),
            },
            StateChange::CreditError { client: 3 },
            StateChange::Assimilated {
                wu: 0,
                holders: vec![1, 2],
                at_us: 16,
            },
            StateChange::MrJobSubmitted {
                job: 0,
                cfg: vec![9],
            },
            StateChange::MrWuIndexed {
                wu: 0,
                job: 0,
                reduce: false,
                idx: 0,
            },
            StateChange::MrMapValidated {
                job: 0,
                m: 0,
                holders: vec![1],
                at_us: 16,
            },
            StateChange::MrReduceValidated { job: 0 },
            StateChange::MrPhase {
                job: 0,
                phase: 1,
                at_us: 17,
            },
            StateChange::MrStamp {
                job: 0,
                which: 1,
                at_us: 18,
            },
            StateChange::TrustObserved {
                client: 2,
                outcome: 1,
            },
            StateChange::TrustSpotCheck { client: 2 },
            StateChange::WuQuorumOverride {
                wu: 0,
                quorum: Some(1),
            },
            StateChange::CreditGrantedScaled {
                agreeing: vec![2],
                dissenting: vec![],
                flops_bits: 1e9f64.to_bits(),
                scale_bits: 0.75f64.to_bits(),
            },
            StateChange::TrustConfigured {
                enabled: true,
                threshold_bits: 0.05f64.to_bits(),
                init_bits: 0.1f64.to_bits(),
                decay_bits: 0.5f64.to_bits(),
                punish_bits: 0.5f64.to_bits(),
                probation: 3,
                spot_bits: 0.05f64.to_bits(),
            },
            StateChange::MrShufflePlanned {
                job: 0,
                strategy: 2,
                group: 2,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for c in all_variants() {
            let v = c.to_bytes();
            let mut d = Dec::new(&v);
            assert_eq!(StateChange::decode(&mut d).unwrap(), c);
            d.finish().unwrap();
        }
    }

    #[test]
    fn every_variant_has_a_section() {
        use crate::section;
        let counts = all_variants().iter().fold([0usize; 5], |mut acc, c| {
            acc[c.section_index()] += 1;
            acc
        });
        assert_eq!(counts[section::DB], 8);
        assert_eq!(counts[section::CREDIT], 3);
        assert_eq!(counts[section::ASSIM], 1);
        assert_eq!(counts[section::TRACKER], 7);
        assert_eq!(counts[section::TRUST], 3);
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let mut d = Dec::new(&[0xFF]);
        assert_eq!(StateChange::decode(&mut d), Err(WireError::BadTag(0xFF)));
    }
}
