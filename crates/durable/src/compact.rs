//! Log compaction: dropping frames superseded by a committed snapshot.
//!
//! A committed **full** snapshot makes every earlier frame redundant —
//! recovery reads the last full snapshot, layers later incremental
//! snapshots, and replays the changes after them; nothing before the
//! full snapshot's frame is ever consulted. [`compact`] rewrites an
//! image down to exactly the bytes recovery can use:
//!
//! * the magic header,
//! * everything from the start of the last committed full snapshot
//!   frame (or the header, if none) through the last commit frame.
//!
//! The uncommitted tail is dropped too: a mirror only ever holds
//! committed bytes, so compacting an in-memory image (which may carry
//! crash debris) to the same form keeps the two comparable. For a
//! sharded bundle each shard is compacted independently — any shard
//! snapshot fully covers its single section, so per shard every
//! snapshot frame starts a chain.
//!
//! This is the pure counterpart of the journal's mirror rewrite
//! ([`crate::CompactionPolicy`]): `compact(log_bytes())` equals the
//! mirror contents after an unconditional compaction at the last
//! commit. The journal's *in-memory* log is never compacted — it stays
//! the authoritative append-only image so a resumed run can reproduce
//! it bit-for-bit.

use crate::frame::{self, FRAME_COMMIT, FRAME_SNAPSHOT};
use crate::recover::RecoverError;

fn compact_log(log: &[u8]) -> Result<Vec<u8>, RecoverError> {
    let scan = frame::scan(log).map_err(|_| RecoverError::BadMagic)?;
    let last_commit = match scan.frames.iter().rposition(|f| f.kind == FRAME_COMMIT) {
        Some(i) => i,
        None => return Ok(frame::MAGIC.to_vec()), // nothing committed
    };
    let committed = &scan.frames[..=last_commit];
    let chain_start = committed
        .iter()
        .rposition(|f| f.kind == FRAME_SNAPSHOT)
        .map(|i| committed[i].start())
        .unwrap_or(frame::MAGIC.len());
    let mut out = Vec::with_capacity(frame::MAGIC.len() + committed[last_commit].end - chain_start);
    out.extend_from_slice(frame::MAGIC);
    out.extend_from_slice(&log[chain_start..committed[last_commit].end]);
    Ok(out)
}

/// Rewrites `image` (a single log or a sharded bundle) without the
/// frames superseded by committed snapshots. Recovery from the result
/// yields the same sections, tail, boundary sequence and sim-time as
/// from the original — only frame/byte counts shrink.
pub fn compact(image: &[u8]) -> Result<Vec<u8>, RecoverError> {
    if frame::is_bundle(image) {
        let entries = frame::parse_bundle(image).map_err(RecoverError::BadBundle)?;
        let mut compacted = Vec::with_capacity(entries.len());
        for (name, log) in &entries {
            compacted.push((name.clone(), compact_log(log)?));
        }
        let refs: Vec<(&str, &[u8])> = compacted
            .iter()
            .map(|(n, l)| (n.as_str(), l.as_slice()))
            .collect();
        Ok(frame::bundle(&refs))
    } else {
        compact_log(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{DurabilityPlan, Journal};
    use crate::record::StateChange;
    use crate::recover::recover;
    use crate::section;
    use crate::snapshot::Sections;

    fn change(rid: u32) -> StateChange {
        StateChange::ResultCreated { rid, wu: 0 }
    }

    fn all_sections(tag: u8) -> Sections {
        let mut s = Sections::new();
        for name in section::NAMES {
            s.push(name, vec![tag]);
        }
        s
    }

    fn drive(j: &Journal, snap_every: u32) {
        for i in 0..9u32 {
            j.advance_to((i as u64 + 1) * 10);
            j.append(&change(i));
            if i % 3 == 2 {
                j.append(&StateChange::CreditError { client: i });
            }
            j.commit();
            if snap_every > 0 && i % snap_every == snap_every - 1 {
                j.write_snapshot(&all_sections(i as u8));
                j.commit();
            }
        }
        // Uncommitted debris the compacted image must drop.
        j.advance_to(999);
        j.append(&change(999));
    }

    fn assert_equiv(image: &[u8]) {
        let a = recover(image).unwrap();
        let c = compact(image).unwrap();
        let b = recover(&c).unwrap();
        assert_eq!(a.sections, b.sections);
        assert_eq!(a.tail, b.tail);
        assert_eq!(a.committed_seq, b.committed_seq);
        assert_eq!(a.committed_at_us, b.committed_at_us);
        assert_eq!(a.from_snapshot, b.from_snapshot);
        // Compaction is idempotent once the debris is gone.
        assert_eq!(compact(&c).unwrap(), c);
    }

    #[test]
    fn compacted_single_log_recovers_identically() {
        for (snap_every, inc) in [(0, 1), (2, 1), (2, 3), (3, 2)] {
            let plan = DurabilityPlan::new(0.0).with_incremental(inc);
            let j = Journal::new(&plan).unwrap();
            drive(&j, snap_every);
            let img = j.log_bytes();
            assert_equiv(&img);
            if snap_every > 0 {
                assert!(compact(&img).unwrap().len() < img.len());
            }
        }
    }

    #[test]
    fn compacted_bundle_recovers_identically() {
        let plan = DurabilityPlan::new(0.0).with_sharding().with_incremental(2);
        let j = Journal::new(&plan).unwrap();
        drive(&j, 2);
        let img = j.log_bytes();
        assert_equiv(&img);
        assert!(compact(&img).unwrap().len() < img.len());
    }

    #[test]
    fn uncommitted_only_log_compacts_to_magic() {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        j.append(&change(0));
        assert_eq!(compact(&j.log_bytes()).unwrap(), frame::MAGIC.to_vec());
    }
}
