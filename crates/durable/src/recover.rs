//! Recovery: load-latest-snapshot + replay-tail, for single logs and
//! sharded bundles.
//!
//! [`recover`] turns a (possibly torn) log image back into the inputs
//! a server needs to rebuild its state. For a single `VMRWAL02` log:
//!
//! 1. Scan frames, dropping the torn tail ([`crate::frame::scan`]).
//! 2. Truncate to the last **commit** frame — records past it belong
//!    to an event that never finished, so they are discarded.
//! 3. Within that committed prefix, decode the last **full** snapshot
//!    and layer every later **incremental** snapshot over it.
//! 4. Collect every change record after the last snapshot frame (of
//!    either kind) as the replay tail, in order. Dirty-bit tracking in
//!    the journal guarantees no change between a section's last
//!    covering snapshot and the last snapshot frame, so the tail is
//!    complete for every section.
//!
//! For a sharded bundle ([`crate::frame::bundle`]), each shard is
//! recovered the same way, except the commit boundary is chosen
//! globally: every commit writes its `(sim-time, seq)` frame to every
//! shard, so the last event durable across *all* shards is the
//! minimum of the shards' last commit sequences. Each shard is cut at
//! that sequence's commit frame and the shard tails are merged back
//! into the exact global replay order by their per-record sequence
//! numbers.
//!
//! The caller (in `core::recover`) materializes the sections, applies
//! the tail, and audits the result against a deterministic re-run.
//! Errors here are *structural* — a foreign file, a CRC-valid frame
//! that fails to decode, a sequence-number anomaly (duplicated or
//! reordered tails), a record in the wrong shard, or a shard
//! compacted past the global boundary — never a torn tail, which is
//! normal crash debris. The validation exists so that corrupt input
//! becomes a typed error *before* replay reaches the panicky state
//! appliers upstream.

use crate::frame::{
    self, RawFrame, FRAME_CHANGE, FRAME_COMMIT, FRAME_SNAPSHOT, FRAME_SNAPSHOT_INC,
};
use crate::record::StateChange;
use crate::section;
use crate::snapshot::Sections;
use crate::wire::{Dec, WireError};

/// Structural recovery failure.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoverError {
    /// The image does not start with the WAL magic — wrong file or
    /// incompatible format version.
    BadMagic,
    /// A CRC-valid frame failed to decode (writer bug / version skew).
    BadPayload {
        /// Index of the offending frame.
        frame: u64,
        /// The decode failure.
        err: WireError,
    },
    /// A frame carried an unknown kind byte.
    UnknownFrameKind {
        /// Index of the offending frame.
        frame: u64,
        /// The unknown kind.
        kind: u8,
    },
    /// The sharded-bundle container itself failed to parse (it is
    /// written atomically, so this is never crash debris).
    BadBundle(WireError),
    /// The bundle did not hold exactly the canonical shard set, in
    /// order, or a snapshot carried a section foreign to its shard.
    BadShards(String),
    /// Commit or record sequence numbers were not strictly increasing
    /// (a duplicated or reordered tail), or a record sequence appeared
    /// in more than one shard.
    CorruptSequence {
        /// Shard name (`"log"` for a single log, `"merge"` across shards).
        shard: String,
        /// Index of the offending frame within its shard.
        frame: u64,
        /// What was wrong.
        detail: &'static str,
    },
    /// A change record sat in a shard that does not own its section.
    ForeignRecord {
        /// Shard name.
        shard: String,
        /// The record's sequence number.
        seq: u64,
    },
    /// An incremental snapshot appeared with no full snapshot to layer
    /// it over.
    IncrementalWithoutFull {
        /// Index of the offending frame.
        frame: u64,
    },
    /// A shard holds no commit frame for the global boundary sequence
    /// — typically a mirror compacted past what another (torn) shard
    /// can still reach.
    ShardGap {
        /// Shard name.
        shard: String,
        /// The unreachable boundary sequence.
        seq: u64,
    },
    /// Shards disagree on the sim-time of the boundary commit.
    InconsistentCommit {
        /// The boundary sequence.
        seq: u64,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::BadMagic => write!(f, "not a VMR WAL (bad magic)"),
            RecoverError::BadPayload { frame, err } => {
                write!(f, "frame {frame}: payload failed to decode: {err}")
            }
            RecoverError::UnknownFrameKind { frame, kind } => {
                write!(f, "frame {frame}: unknown frame kind {kind:#04x}")
            }
            RecoverError::BadBundle(err) => write!(f, "shard bundle failed to parse: {err}"),
            RecoverError::BadShards(detail) => write!(f, "bad shard set: {detail}"),
            RecoverError::CorruptSequence {
                shard,
                frame,
                detail,
            } => write!(f, "{shard} frame {frame}: {detail}"),
            RecoverError::ForeignRecord { shard, seq } => {
                write!(f, "record {seq} sits in foreign shard `{shard}`")
            }
            RecoverError::IncrementalWithoutFull { frame } => {
                write!(
                    f,
                    "frame {frame}: incremental snapshot without a preceding full one"
                )
            }
            RecoverError::ShardGap { shard, seq } => {
                write!(f, "shard `{shard}` cannot reach commit boundary {seq}")
            }
            RecoverError::InconsistentCommit { seq } => {
                write!(f, "shards disagree on the sim-time of commit {seq}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// Everything recovery extracts from a log image.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// State sections at the committed boundary: the last committed
    /// full snapshot with later incremental snapshots layered over it
    /// (merged across shards for a bundle, in canonical section
    /// order). Empty when the log committed no snapshot — replay then
    /// starts from genesis.
    pub sections: Sections,
    /// True when a committed snapshot was found.
    pub from_snapshot: bool,
    /// Change records to replay on top of the snapshot, in global
    /// record-sequence order.
    pub tail: Vec<StateChange>,
    /// Frames in the committed prefix (including the final commit),
    /// summed across shards for a bundle.
    pub committed_frames: u64,
    /// Change records in the committed prefix.
    pub committed_records: u64,
    /// Sim-time of the boundary commit, microseconds.
    pub committed_at_us: u64,
    /// Byte length of the committed prefix (summed across shards).
    pub committed_bytes: usize,
    /// Sequence number of the boundary commit (0 = nothing committed).
    /// Invariant under compaction and sharding — the resume target.
    pub committed_seq: u64,
}

/// One parsed commit frame.
#[derive(Clone, Copy, Debug)]
struct Commit {
    idx: usize,
    seq: u64,
    now_us: u64,
}

/// Extracts and validates every commit frame of one log.
fn parse_commits(
    log: &[u8],
    frames: &[RawFrame],
    shard: &str,
) -> Result<Vec<Commit>, RecoverError> {
    let mut out: Vec<Commit> = Vec::new();
    for (i, f) in frames.iter().enumerate() {
        if f.kind != FRAME_COMMIT {
            continue;
        }
        let (a, b) = f.body;
        let mut d = Dec::new(&log[a..b]);
        let parsed = (|| {
            let now_us = d.u64()?;
            let seq = d.u64()?;
            Ok::<_, WireError>((now_us, seq))
        })();
        let (now_us, seq) = parsed.map_err(|err| RecoverError::BadPayload {
            frame: i as u64,
            err,
        })?;
        if d.remaining() != 0 {
            return Err(RecoverError::BadPayload {
                frame: i as u64,
                err: WireError::TrailingBytes,
            });
        }
        if seq == 0 || out.last().is_some_and(|c| c.seq >= seq) {
            return Err(RecoverError::CorruptSequence {
                shard: shard.to_string(),
                frame: i as u64,
                detail: "commit sequence not strictly increasing",
            });
        }
        out.push(Commit {
            idx: i,
            seq,
            now_us,
        });
    }
    Ok(out)
}

/// State recovered from one log's committed prefix.
struct Part {
    sections: Sections,
    from_snapshot: bool,
    /// `(record seq, change)` pairs after the last snapshot frame.
    tail: Vec<(u64, StateChange)>,
    records: u64,
}

/// Recovers one committed prefix: layered snapshots + sequence-checked
/// tail. `expect_section` enforces shard affinity for bundle shards.
fn replay_prefix(
    log: &[u8],
    prefix: &[RawFrame],
    expect_section: Option<usize>,
    shard: &str,
) -> Result<Part, RecoverError> {
    let last_full = prefix.iter().rposition(|f| f.kind == FRAME_SNAPSHOT);
    if last_full.is_none() {
        if let Some(i) = prefix.iter().position(|f| f.kind == FRAME_SNAPSHOT_INC) {
            return Err(RecoverError::IncrementalWithoutFull { frame: i as u64 });
        }
    }
    let last_snap = prefix
        .iter()
        .rposition(|f| matches!(f.kind, FRAME_SNAPSHOT | FRAME_SNAPSHOT_INC));

    let decode_sections = |i: usize| -> Result<Sections, RecoverError> {
        let (a, b) = prefix[i].body;
        let mut d = Dec::new(&log[a..b]);
        let s = Sections::decode(&mut d)
            .and_then(|s| d.finish().map(|_| s))
            .map_err(|err| RecoverError::BadPayload {
                frame: i as u64,
                err,
            })?;
        if let Some(sec) = expect_section {
            for (n, _) in &s.entries {
                if n != section::NAMES[sec] {
                    return Err(RecoverError::BadShards(format!(
                        "snapshot carries section `{n}` inside shard `{shard}`"
                    )));
                }
            }
        }
        Ok(s)
    };

    let mut sections = match last_full {
        Some(i) => decode_sections(i)?,
        None => Sections::default(),
    };
    for (i, f) in prefix.iter().enumerate() {
        if f.kind == FRAME_SNAPSHOT_INC && last_full.is_some_and(|lf| i > lf) {
            let inc = decode_sections(i)?;
            for (name, bytes) in inc.entries {
                match sections.entries.iter_mut().find(|(n, _)| *n == name) {
                    Some(e) => e.1 = bytes,
                    None => sections.entries.push((name, bytes)),
                }
            }
        }
    }

    let mut tail = Vec::new();
    let mut records = 0u64;
    let mut last_seq = 0u64;
    for (i, f) in prefix.iter().enumerate() {
        match f.kind {
            FRAME_CHANGE => {
                records += 1;
                let (a, b) = f.body;
                let mut d = Dec::new(&log[a..b]);
                let seq = d.u64().map_err(|err| RecoverError::BadPayload {
                    frame: i as u64,
                    err,
                })?;
                if seq <= last_seq {
                    return Err(RecoverError::CorruptSequence {
                        shard: shard.to_string(),
                        frame: i as u64,
                        detail: "record sequence not strictly increasing",
                    });
                }
                last_seq = seq;
                if last_snap.is_none_or(|s| i > s) {
                    let c = StateChange::decode(&mut d)
                        .and_then(|c| d.finish().map(|_| c))
                        .map_err(|err| RecoverError::BadPayload {
                            frame: i as u64,
                            err,
                        })?;
                    if let Some(sec) = expect_section {
                        if c.section_index() != sec {
                            return Err(RecoverError::ForeignRecord {
                                shard: shard.to_string(),
                                seq,
                            });
                        }
                    }
                    tail.push((seq, c));
                }
            }
            FRAME_SNAPSHOT | FRAME_SNAPSHOT_INC | FRAME_COMMIT => {}
            kind => {
                return Err(RecoverError::UnknownFrameKind {
                    frame: i as u64,
                    kind,
                })
            }
        }
    }

    Ok(Part {
        sections,
        from_snapshot: last_full.is_some(),
        tail,
        records,
    })
}

fn recover_single(log: &[u8]) -> Result<Recovered, RecoverError> {
    let scan = frame::scan(log).map_err(|_| RecoverError::BadMagic)?;
    let commits = parse_commits(log, &scan.frames, "log")?;
    let Some(&last) = commits.last() else {
        return Ok(Recovered::default());
    };
    let prefix = &scan.frames[..=last.idx];
    let part = replay_prefix(log, prefix, None, "log")?;
    Ok(Recovered {
        sections: part.sections,
        from_snapshot: part.from_snapshot,
        tail: part.tail.into_iter().map(|(_, c)| c).collect(),
        committed_frames: (last.idx + 1) as u64,
        committed_records: part.records,
        committed_at_us: last.now_us,
        committed_bytes: prefix[last.idx].end,
        committed_seq: last.seq,
    })
}

fn recover_bundle(image: &[u8]) -> Result<Recovered, RecoverError> {
    let entries = frame::parse_bundle(image).map_err(RecoverError::BadBundle)?;
    let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
    if names != section::NAMES {
        return Err(RecoverError::BadShards(format!(
            "expected shards {:?}, found {names:?}",
            section::NAMES
        )));
    }

    // Scan each shard and pick the global boundary: the minimum of the
    // shards' last commit sequences (every commit frame reaches every
    // shard, so a lower maximum means that shard's tail was torn).
    let mut scans = Vec::with_capacity(entries.len());
    let mut boundary = u64::MAX;
    for (name, log) in &entries {
        let scan = frame::scan(log).map_err(|_| RecoverError::BadMagic)?;
        let commits = parse_commits(log, &scan.frames, name)?;
        boundary = boundary.min(commits.last().map_or(0, |c| c.seq));
        scans.push((scan, commits));
    }
    if boundary == 0 {
        return Ok(Recovered::default());
    }

    let mut merged = Sections::default();
    let mut from_snapshot = false;
    let mut tails: Vec<(u64, StateChange)> = Vec::new();
    let mut committed_frames = 0u64;
    let mut committed_records = 0u64;
    let mut committed_bytes = 0usize;
    let mut committed_at_us = None;
    for (sec_idx, ((name, log), (scan, commits))) in entries.iter().zip(&scans).enumerate() {
        let cut = match commits.iter().find(|c| c.seq == boundary) {
            Some(c) => c,
            None => {
                return Err(RecoverError::ShardGap {
                    shard: name.clone(),
                    seq: boundary,
                })
            }
        };
        match committed_at_us {
            None => committed_at_us = Some(cut.now_us),
            Some(t) if t != cut.now_us => {
                return Err(RecoverError::InconsistentCommit { seq: boundary })
            }
            Some(_) => {}
        }
        let prefix = &scan.frames[..=cut.idx];
        let part = replay_prefix(log, prefix, Some(sec_idx), name)?;
        merged.entries.extend(part.sections.entries);
        from_snapshot |= part.from_snapshot;
        tails.extend(part.tail);
        committed_frames += (cut.idx + 1) as u64;
        committed_records += part.records;
        committed_bytes += prefix[cut.idx].end;
    }

    // Interleave shard tails back into the global append order.
    tails.sort_by_key(|(seq, _)| *seq);
    if tails.windows(2).any(|w| w[0].0 == w[1].0) {
        return Err(RecoverError::CorruptSequence {
            shard: "merge".to_string(),
            frame: 0,
            detail: "record sequence appears in more than one shard",
        });
    }

    Ok(Recovered {
        sections: merged,
        from_snapshot,
        tail: tails.into_iter().map(|(_, c)| c).collect(),
        committed_frames,
        committed_records,
        committed_at_us: committed_at_us.unwrap_or(0),
        committed_bytes,
        committed_seq: boundary,
    })
}

/// Recovers snapshot + replay tail from a log image — a single
/// `VMRWAL02` log or a `VMRSHRD1` bundle, dispatched on the leading
/// magic. See the module docs for the exact semantics.
pub fn recover(image: &[u8]) -> Result<Recovered, RecoverError> {
    if frame::is_bundle(image) {
        recover_bundle(image)
    } else {
        recover_single(image)
    }
}

/// End offsets of the magic header and every structurally valid frame
/// — the legal crash cut points a boundary-exhaustive test iterates.
/// Single logs only; a bundle image is assembled atomically and has no
/// meaningful byte-level crash cuts.
pub fn frame_ends(log: &[u8]) -> Result<Vec<usize>, RecoverError> {
    let scan = frame::scan(log).map_err(|_| RecoverError::BadMagic)?;
    let mut v = Vec::with_capacity(scan.frames.len() + 1);
    v.push(frame::MAGIC.len().min(log.len()));
    v.extend(scan.frames.iter().map(|f| f.end));
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{DurabilityPlan, Journal};

    fn change(rid: u32) -> StateChange {
        StateChange::ResultCreated { rid, wu: 0 }
    }

    fn build_log(snapshot_at: Option<u64>) -> Vec<u8> {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        for i in 0..4u32 {
            j.advance_to(i as u64);
            j.append(&change(i));
            j.commit();
            if snapshot_at == Some(i as u64) {
                let mut s = Sections::new();
                s.push("db", vec![i as u8]);
                j.write_snapshot(&s);
                j.commit();
            }
        }
        // Uncommitted straggler — must be discarded.
        j.advance_to(9);
        j.append(&change(99));
        j.log_bytes()
    }

    #[test]
    fn empty_log_recovers_to_genesis() {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        let r = recover(&j.log_bytes()).unwrap();
        assert!(!r.from_snapshot);
        assert!(r.tail.is_empty());
        assert_eq!(r.committed_frames, 0);
        assert_eq!(r.committed_seq, 0);
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let r = recover(&build_log(None)).unwrap();
        assert!(!r.from_snapshot);
        assert_eq!(r.tail.len(), 4);
        assert_eq!(r.committed_records, 4);
        assert_eq!(r.committed_at_us, 3);
        assert_eq!(r.committed_seq, 4);
        assert_eq!(r.tail[3], change(3));
    }

    #[test]
    fn snapshot_shortens_the_replay_tail() {
        let r = recover(&build_log(Some(1))).unwrap();
        assert!(r.from_snapshot);
        assert_eq!(r.sections.get("db"), Some(&[1u8][..]));
        // Records 2 and 3 came after the snapshot.
        assert_eq!(r.tail, vec![change(2), change(3)]);
        assert_eq!(r.committed_records, 4);
    }

    #[test]
    fn torn_byte_cuts_recover_like_the_containing_boundary() {
        let log = build_log(Some(2));
        let ends = frame_ends(&log).unwrap();
        for cut in 0..=log.len() {
            let r = recover(&log[..cut]).unwrap();
            let boundary = ends.iter().rev().find(|&&e| e <= cut).copied().unwrap_or(0);
            let rb = recover(&log[..boundary]).unwrap();
            assert_eq!(r.committed_frames, rb.committed_frames, "cut {cut}");
            assert_eq!(r.committed_seq, rb.committed_seq, "cut {cut}");
            assert_eq!(r.tail, rb.tail, "cut {cut}");
        }
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        assert_eq!(
            recover(b"GARBAGE!rest").unwrap_err(),
            RecoverError::BadMagic
        );
    }

    /// Duplicating a committed span (a replayed-twice shard tail)
    /// yields a typed sequence error, never double-applied state.
    #[test]
    fn duplicated_tail_is_a_corrupt_sequence() {
        let log = build_log(None);
        let ends = frame_ends(&log).unwrap();
        // Splice the last change+commit pair in again after the end.
        let span = &log[ends[ends.len() - 4]..ends[ends.len() - 2]];
        let mut dup = log.clone();
        dup.extend_from_slice(span);
        match recover(&dup) {
            Err(RecoverError::CorruptSequence { .. }) => {}
            other => panic!("expected CorruptSequence, got {other:?}"),
        }
    }

    /// A torn bundle container is a typed error (it is written
    /// atomically; only shard interiors see crash debris).
    #[test]
    fn torn_bundle_is_typed() {
        let j = Journal::new(&DurabilityPlan::new(0.0).with_sharding()).unwrap();
        j.advance_to(1);
        j.append(&change(0));
        j.commit();
        let img = j.log_bytes();
        for cut in frame::BUNDLE_MAGIC.len()..img.len() {
            match recover(&img[..cut]) {
                Err(RecoverError::BadBundle(_)) | Err(RecoverError::BadShards(_)) => {}
                other => panic!("cut {cut}: expected typed bundle error, got {other:?}"),
            }
        }
    }

    /// Tearing one shard's tail rolls every shard back to the global
    /// boundary — the minimum surviving commit sequence.
    #[test]
    fn torn_shard_rolls_back_to_min_commit() {
        let j = Journal::new(&DurabilityPlan::new(0.0).with_sharding()).unwrap();
        for i in 0..3u32 {
            j.advance_to(i as u64);
            j.append(&change(i)); // db shard
            j.append(&StateChange::CreditError { client: i }); // credit shard
            j.commit();
        }
        let full = recover(&j.log_bytes()).unwrap();
        assert_eq!(full.committed_seq, 3);
        assert_eq!(full.tail.len(), 6);

        // Tear the credit shard back to its first commit.
        let mut shards = frame::parse_bundle(&j.log_bytes()).unwrap();
        let credit_ends = frame_ends(&shards[section::CREDIT].1).unwrap();
        shards[section::CREDIT].1.truncate(credit_ends[2]); // record+commit of event 0
        let entries: Vec<(&str, &[u8])> = shards
            .iter()
            .map(|(n, l)| (n.as_str(), l.as_slice()))
            .collect();
        let torn = recover(&frame::bundle(&entries)).unwrap();
        assert_eq!(torn.committed_seq, 1);
        assert_eq!(torn.committed_at_us, 0);
        assert_eq!(
            torn.tail,
            vec![change(0), StateChange::CreditError { client: 0 }]
        );
    }

    /// A shard compacted past what the rest can reach is a typed gap.
    #[test]
    fn over_compacted_shard_is_a_gap() {
        let j = Journal::new(&DurabilityPlan::new(0.0).with_sharding()).unwrap();
        for i in 0..3u32 {
            j.advance_to(i as u64);
            j.append(&change(i));
            j.commit();
        }
        let mut shards = frame::parse_bundle(&j.log_bytes()).unwrap();
        // Drop the db shard's first two events entirely (as an
        // over-eager compaction without a covering snapshot would).
        let db_ends = frame_ends(&shards[section::DB].1).unwrap();
        let keep_from = db_ends[4]; // after record+commit ×2
        let mut rebuilt = frame::MAGIC.to_vec();
        rebuilt.extend_from_slice(&shards[section::DB].1[keep_from..]);
        shards[section::DB].1 = rebuilt;
        // Tear the credit shard so the global boundary is seq 2,
        // which the compacted db shard no longer holds.
        let credit_ends = frame_ends(&shards[section::CREDIT].1).unwrap();
        shards[section::CREDIT].1.truncate(credit_ends[2]);
        let entries: Vec<(&str, &[u8])> = shards
            .iter()
            .map(|(n, l)| (n.as_str(), l.as_slice()))
            .collect();
        match recover(&frame::bundle(&entries)) {
            Err(RecoverError::ShardGap { shard, seq }) => {
                assert_eq!(shard, "db");
                assert_eq!(seq, 2);
            }
            other => panic!("expected ShardGap, got {other:?}"),
        }
    }

    /// A record framed into the wrong shard is typed, not replayed.
    #[test]
    fn foreign_record_is_typed() {
        let j = Journal::new(&DurabilityPlan::new(0.0).with_sharding()).unwrap();
        j.advance_to(1);
        j.append(&change(0));
        j.commit();
        let mut shards = frame::parse_bundle(&j.log_bytes()).unwrap();
        // Move the db shard's content into the credit shard.
        shards[section::CREDIT].1 = shards[section::DB].1.clone();
        let mut empty = bytes::BytesMut::new();
        frame::put_magic(&mut empty);
        let mut db_log = empty.to_vec();
        // Keep db's commit frame so the boundary still exists there.
        let db_scan = frame::scan(&shards[section::DB].1).unwrap();
        let commit = db_scan
            .frames
            .iter()
            .find(|f| f.kind == FRAME_COMMIT)
            .unwrap();
        db_log.extend_from_slice(&shards[section::DB].1[commit.start()..commit.end]);
        shards[section::DB].1 = db_log;
        let entries: Vec<(&str, &[u8])> = shards
            .iter()
            .map(|(n, l)| (n.as_str(), l.as_slice()))
            .collect();
        match recover(&frame::bundle(&entries)) {
            Err(RecoverError::ForeignRecord { shard, seq }) => {
                assert_eq!(shard, "credit");
                assert_eq!(seq, 1);
            }
            other => panic!("expected ForeignRecord, got {other:?}"),
        }
    }
}
