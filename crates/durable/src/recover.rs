//! Recovery: load-latest-snapshot + replay-tail.
//!
//! [`recover`] turns a (possibly torn) log image back into the inputs
//! a server needs to rebuild its state:
//!
//! 1. Scan frames, dropping the torn tail ([`crate::frame::scan`]).
//! 2. Truncate to the last **commit** frame — records past it belong
//!    to an event that never finished, so they are discarded.
//! 3. Within that committed prefix, find the last **snapshot** frame
//!    and decode its [`Sections`].
//! 4. Collect every change record after the snapshot as the replay
//!    tail, in order.
//!
//! The caller (in `core::recover`) materializes the sections, applies
//! the tail, and audits the result against a deterministic re-run.
//! Errors here are *structural* — a foreign file or a CRC-valid frame
//! that fails to decode (a writer bug, not bit rot) — never a torn
//! tail, which is normal crash debris.

use crate::frame::{self, FRAME_CHANGE, FRAME_COMMIT, FRAME_SNAPSHOT};
use crate::record::StateChange;
use crate::snapshot::Sections;
use crate::wire::{Dec, WireError};

/// Structural recovery failure.
#[derive(Clone, Debug, PartialEq)]
pub enum RecoverError {
    /// The image does not start with the WAL magic — wrong file or
    /// incompatible format version.
    BadMagic,
    /// A CRC-valid frame failed to decode (writer bug / version skew).
    BadPayload {
        /// Index of the offending frame.
        frame: u64,
        /// The decode failure.
        err: WireError,
    },
    /// A frame carried an unknown kind byte.
    UnknownFrameKind {
        /// Index of the offending frame.
        frame: u64,
        /// The unknown kind.
        kind: u8,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::BadMagic => write!(f, "not a VMR WAL (bad magic)"),
            RecoverError::BadPayload { frame, err } => {
                write!(f, "frame {frame}: payload failed to decode: {err}")
            }
            RecoverError::UnknownFrameKind { frame, kind } => {
                write!(f, "frame {frame}: unknown frame kind {kind:#04x}")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// Everything recovery extracts from a log image.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// State sections of the last committed snapshot (empty when the
    /// log committed no snapshot — replay then starts from genesis).
    pub sections: Sections,
    /// True when a committed snapshot was found.
    pub from_snapshot: bool,
    /// Change records to replay on top of the snapshot, in log order.
    pub tail: Vec<StateChange>,
    /// Frames in the committed prefix (including the final commit).
    pub committed_frames: u64,
    /// Change records in the committed prefix.
    pub committed_records: u64,
    /// Sim-time of the last commit frame, microseconds.
    pub committed_at_us: u64,
    /// Byte length of the committed prefix.
    pub committed_bytes: usize,
}

/// Recovers snapshot + replay tail from a log image. See the module
/// docs for the exact semantics.
pub fn recover(log: &[u8]) -> Result<Recovered, RecoverError> {
    let scan = frame::scan(log).map_err(|_| RecoverError::BadMagic)?;

    // Committed prefix: up to and including the last commit frame.
    let last_commit = match scan.frames.iter().rposition(|f| f.kind == FRAME_COMMIT) {
        Some(i) => i,
        None => return Ok(Recovered::default()),
    };
    let committed = &scan.frames[..=last_commit];

    let commit_body = {
        let (a, b) = committed[last_commit].body;
        &log[a..b]
    };
    let committed_at_us = {
        let mut d = Dec::new(commit_body);
        d.u64().map_err(|err| RecoverError::BadPayload {
            frame: last_commit as u64,
            err,
        })?
    };

    // Last committed snapshot, if any.
    let snap_idx = committed.iter().rposition(|f| f.kind == FRAME_SNAPSHOT);
    let (sections, from_snapshot) = match snap_idx {
        Some(i) => {
            let (a, b) = committed[i].body;
            let mut d = Dec::new(&log[a..b]);
            let s = Sections::decode(&mut d)
                .and_then(|s| d.finish().map(|_| s))
                .map_err(|err| RecoverError::BadPayload {
                    frame: i as u64,
                    err,
                })?;
            (s, true)
        }
        None => (Sections::default(), false),
    };

    let mut tail = Vec::new();
    let mut committed_records = 0u64;
    for (i, f) in committed.iter().enumerate() {
        match f.kind {
            FRAME_CHANGE => {
                committed_records += 1;
                if snap_idx.is_none_or(|s| i > s) {
                    let (a, b) = f.body;
                    let mut d = Dec::new(&log[a..b]);
                    let c = StateChange::decode(&mut d)
                        .and_then(|c| d.finish().map(|_| c))
                        .map_err(|err| RecoverError::BadPayload {
                            frame: i as u64,
                            err,
                        })?;
                    tail.push(c);
                }
            }
            FRAME_SNAPSHOT | FRAME_COMMIT => {}
            kind => {
                return Err(RecoverError::UnknownFrameKind {
                    frame: i as u64,
                    kind,
                })
            }
        }
    }

    Ok(Recovered {
        sections,
        from_snapshot,
        tail,
        committed_frames: (last_commit + 1) as u64,
        committed_records,
        committed_at_us,
        committed_bytes: committed[last_commit].end,
    })
}

/// End offsets of the magic header and every structurally valid frame
/// — the legal crash cut points a boundary-exhaustive test iterates.
pub fn frame_ends(log: &[u8]) -> Result<Vec<usize>, RecoverError> {
    let scan = frame::scan(log).map_err(|_| RecoverError::BadMagic)?;
    let mut v = Vec::with_capacity(scan.frames.len() + 1);
    v.push(frame::MAGIC.len().min(log.len()));
    v.extend(scan.frames.iter().map(|f| f.end));
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{DurabilityPlan, Journal};

    fn change(rid: u32) -> StateChange {
        StateChange::ResultCreated { rid, wu: 0 }
    }

    fn build_log(snapshot_at: Option<u64>) -> Vec<u8> {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        for i in 0..4u32 {
            j.advance_to(i as u64);
            j.append(&change(i));
            j.commit();
            if snapshot_at == Some(i as u64) {
                let mut s = Sections::new();
                s.push("db", vec![i as u8]);
                j.write_snapshot(&s);
                j.commit();
            }
        }
        // Uncommitted straggler — must be discarded.
        j.advance_to(9);
        j.append(&change(99));
        j.log_bytes()
    }

    #[test]
    fn empty_log_recovers_to_genesis() {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        let r = recover(&j.log_bytes()).unwrap();
        assert!(!r.from_snapshot);
        assert!(r.tail.is_empty());
        assert_eq!(r.committed_frames, 0);
    }

    #[test]
    fn uncommitted_tail_is_discarded() {
        let r = recover(&build_log(None)).unwrap();
        assert!(!r.from_snapshot);
        assert_eq!(r.tail.len(), 4);
        assert_eq!(r.committed_records, 4);
        assert_eq!(r.committed_at_us, 3);
        assert_eq!(r.tail[3], change(3));
    }

    #[test]
    fn snapshot_shortens_the_replay_tail() {
        let r = recover(&build_log(Some(1))).unwrap();
        assert!(r.from_snapshot);
        assert_eq!(r.sections.get("db"), Some(&[1u8][..]));
        // Records 2 and 3 came after the snapshot.
        assert_eq!(r.tail, vec![change(2), change(3)]);
        assert_eq!(r.committed_records, 4);
    }

    #[test]
    fn torn_byte_cuts_recover_like_the_containing_boundary() {
        let log = build_log(Some(2));
        let ends = frame_ends(&log).unwrap();
        for cut in 0..=log.len() {
            let r = recover(&log[..cut]).unwrap();
            let boundary = ends.iter().rev().find(|&&e| e <= cut).copied().unwrap_or(0);
            let rb = recover(&log[..boundary]).unwrap();
            assert_eq!(r.committed_frames, rb.committed_frames, "cut {cut}");
            assert_eq!(r.tail, rb.tail, "cut {cut}");
        }
    }

    #[test]
    fn foreign_file_is_bad_magic() {
        assert_eq!(
            recover(b"GARBAGE!rest").unwrap_err(),
            RecoverError::BadMagic
        );
    }
}
