//! Minimal binary wire codec used by every durable payload.
//!
//! [`Enc`] appends big-endian primitives to a [`bytes::BytesMut`];
//! [`Dec`] is a checked cursor over a byte slice that returns
//! [`WireError`] instead of panicking, so a corrupt (but CRC-valid —
//! i.e. buggy writer) record surfaces as a recovery error rather than
//! a crash. Strings and blobs are `u32` length-prefixed; `f64` travels
//! as its IEEE-754 bit pattern so encode/decode round-trips are exact;
//! `Option` is a one-byte presence tag. There is no schema evolution —
//! the log format is versioned as a whole by the frame layer's magic.

use bytes::{BufMut, BytesMut};

/// Decode failure: the bytes do not parse as the expected shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes remained than the field needs.
    UnexpectedEof,
    /// An enum/option tag byte had no corresponding variant.
    BadTag(u8),
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// Decoding finished with unconsumed trailing bytes.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnexpectedEof => write!(f, "unexpected end of record"),
            WireError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            WireError::BadUtf8 => write!(f, "length-prefixed string is not UTF-8"),
            WireError::TrailingBytes => write!(f, "trailing bytes after decoded value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a growable byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: BytesMut,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// An empty encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Enc {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Big-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Big-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Big-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// IEEE-754 bit pattern of an `f64` (exact round-trip, NaN included).
    pub fn f64(&mut self, v: f64) {
        self.buf.put_u64(v.to_bits());
    }

    /// Boolean as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// `u32` length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.buf.put_u32(s.len() as u32);
        self.buf.put_slice(s.as_bytes());
    }

    /// `u32` length-prefixed opaque blob.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.put_u32(b.len() as u32);
        self.buf.put_slice(b);
    }

    /// `Option<u32>`: presence byte then the value.
    pub fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.buf.put_u8(0),
            Some(x) => {
                self.buf.put_u8(1);
                self.buf.put_u32(x);
            }
        }
    }

    /// `Option<u64>`: presence byte then the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.buf.put_u8(0),
            Some(x) => {
                self.buf.put_u8(1);
                self.buf.put_u64(x);
            }
        }
    }

    /// `u32` count-prefixed list of `u32`.
    pub fn vec_u32(&mut self, v: &[u32]) {
        self.buf.put_u32(v.len() as u32);
        for &x in v {
            self.buf.put_u32(x);
        }
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// Checked decoding cursor over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Boolean from a strict 0/1 byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// `u32` length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// `u32` length-prefixed opaque blob.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    /// `Option<u32>` from a presence byte.
    pub fn opt_u32(&mut self) -> Result<Option<u32>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// `Option<u64>` from a presence byte.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// `u32` count-prefixed list of `u32`.
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.u32()? as usize;
        // Guard against a corrupt length claiming more than remains.
        if self.buf.len() - self.pos < n.saturating_mul(4) {
            return Err(WireError::UnexpectedEof);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Succeeds only when every byte was consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(513);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.f64(0.1 + 0.2);
        e.bool(true);
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        e.opt_u32(None);
        e.opt_u64(Some(42));
        e.vec_u32(&[9, 8, 7]);
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 513);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.opt_u32().unwrap(), None);
        assert_eq!(d.opt_u64().unwrap(), Some(42));
        assert_eq!(d.vec_u32().unwrap(), vec![9, 8, 7]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut e = Enc::new();
        e.u64(1);
        let v = e.into_vec();
        let mut d = Dec::new(&v[..5]);
        assert_eq!(d.u64(), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn corrupt_list_length_is_caught() {
        let mut e = Enc::new();
        e.u32(u32::MAX); // claims 4 G entries
        let v = e.into_vec();
        assert_eq!(Dec::new(&v).vec_u32(), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let v = e.into_vec();
        let mut d = Dec::new(&v);
        let _ = d.u8().unwrap();
        assert_eq!(d.finish(), Err(WireError::TrailingBytes));
    }
}
