//! # vmr-durable — WAL + snapshot durability for the project server
//!
//! The paper's pull model concentrates every byte of coordination
//! state on the project server: WU/result lifecycle, quorum progress,
//! the JobTracker's map-output registry, the credit ledger. Production
//! BOINC keeps that state alive across crashes by leaning on MySQL;
//! this crate is the equivalent layer for our in-memory server — a
//! from-scratch write-ahead log plus periodic snapshots, with
//! recovery = load-latest-snapshot + replay-tail.
//!
//! * [`StateChange`] — the typed change vocabulary; one variant per
//!   server-state mutator in `vcore`/`core`, each owned by one state
//!   [`section`] ([`record`](crate::record)).
//! * [`Journal`] — the clonable log handle the `Engine` owns and hands
//!   to each mutator; commit frames carrying `(sim-time, commit seq)`
//!   mark event-granularity transactions. Optionally **sharded**: one
//!   log per section, appends contending only per shard
//!   ([`journal`](crate::journal)).
//! * [`Sections`] — named opaque snapshot sections, encoded by the
//!   state-owning crates. Snapshots are **full** or **incremental**
//!   (dirty sections only, layered at recovery)
//!   ([`snapshot`](crate::snapshot)).
//! * [`CompactionPolicy`] / [`compact`](crate::compact::compact) — the
//!   file mirror is rewritten to drop frames superseded by a committed
//!   snapshot ([`compact`](crate::compact)).
//! * [`CrashPlan`] / [`DurabilityPlan`] — deterministic crash-point
//!   injection and run configuration.
//! * [`recover`] — torn-tail-tolerant recovery over a single log or a
//!   sharded bundle, merging shard tails back into global order by
//!   record sequence and turning any structural anomaly into a typed
//!   [`RecoverError`] ([`recover`](crate::recover)).
//!
//! This is a leaf crate like `vmr-obs`: it knows nothing of the
//! structs it persists. Ids are raw integers and crate-specific
//! payloads are opaque blobs encoded with the [`wire`] codec by their
//! owning crate, which keeps the dependency arrow pointing the same
//! way as observability (`vcore`/`core` → `vmr-durable`).
//!
//! Metrics (`dur.wal_records`, `dur.wal_bytes`, `dur.snapshot_us`,
//! `dur.compactions`, `dur.compact_reclaimed_bytes`) flow through
//! `vmr-obs` and compile out with `--no-default-features`; the log
//! itself is **not** feature-gated. See DESIGN.md §3.9 for the format
//! and the recovery invariants.
//!
//! ```
//! use vmr_durable::{DurabilityPlan, Journal, StateChange, recover};
//! let j = Journal::new(&DurabilityPlan::new(60.0)).unwrap();
//! j.advance_to(5);
//! j.append(&StateChange::ResultCreated { rid: 0, wu: 0 });
//! j.commit();
//! let r = recover(&j.log_bytes()).unwrap();
//! assert_eq!(r.tail.len(), 1);
//! assert_eq!(r.committed_seq, 1);
//! ```

#![warn(missing_docs)]

pub mod compact;
pub mod crc;
pub mod frame;
pub mod journal;
pub mod record;
pub mod recover;
pub mod section;
pub mod snapshot;
pub mod wire;

pub use compact::compact;
pub use journal::{sink_image, CompactionPolicy, CrashPlan, DurabilityPlan, Journal};
pub use record::StateChange;
pub use recover::{frame_ends, recover, RecoverError, Recovered};
pub use snapshot::Sections;
pub use wire::{Dec, Enc, WireError};

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: journal → crash → recover at every frame boundary.
    #[test]
    fn recover_matches_committed_prefix_at_every_boundary() {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        let mut per_commit_records = vec![0u64];
        for i in 0..10u32 {
            j.advance_to(i as u64);
            j.append(&StateChange::ResultCreated { rid: i, wu: 0 });
            if i % 2 == 1 {
                j.append(&StateChange::ResultSent {
                    rid: i,
                    client: 1,
                    at_us: i as u64,
                    deadline_us: 100,
                });
            }
            j.commit();
            per_commit_records.push(j.committed_records());
        }
        let log = j.log_bytes();
        for cut in 0..=log.len() {
            let r = recover(&log[..cut]).unwrap();
            // Whatever prefix we recover, the tail length must equal
            // the records covered by the last visible commit.
            assert!(
                per_commit_records.contains(&(r.tail.len() as u64)),
                "cut {cut}"
            );
            assert_eq!(r.committed_records, r.tail.len() as u64);
        }
    }

    /// The same event stream through a single log and a sharded bundle
    /// recovers to identical sections + tail at the final boundary.
    #[test]
    fn sharded_and_single_recover_identically() {
        let drive = |j: &Journal| {
            for i in 0..8u32 {
                j.advance_to(i as u64 * 5);
                j.append(&StateChange::ResultCreated { rid: i, wu: 0 });
                if i % 2 == 0 {
                    j.append(&StateChange::CreditError { client: i });
                }
                if i % 3 == 0 {
                    j.append(&StateChange::MrReduceValidated { job: i });
                }
                j.commit();
                if i == 4 {
                    let mut s = Sections::new();
                    for name in section::NAMES {
                        s.push(name, vec![i as u8]);
                    }
                    j.write_snapshot(&s);
                    j.commit();
                }
            }
        };
        let single = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        let sharded = Journal::new(&DurabilityPlan::new(0.0).with_sharding()).unwrap();
        drive(&single);
        drive(&sharded);
        let a = recover(&single.log_bytes()).unwrap();
        let b = recover(&sharded.log_bytes()).unwrap();
        assert_eq!(a.tail, b.tail);
        assert_eq!(a.committed_seq, b.committed_seq);
        assert_eq!(a.committed_at_us, b.committed_at_us);
        assert_eq!(a.committed_records, b.committed_records);
        // Section content matches (single-log order is writer-chosen
        // but both used canonical order here).
        assert_eq!(a.sections, b.sections);
    }
}
