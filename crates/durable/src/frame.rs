//! Physical log layout: a magic header followed by length-prefixed,
//! CRC-framed records — plus the sharded-bundle container.
//!
//! ```text
//! log      := MAGIC frame*
//! MAGIC    := "VMRWAL02"                     (8 bytes, format version)
//! frame    := len:u32 crc:u32 payload        (len = |payload|, BE)
//! payload  := kind:u8 body                   (crc = CRC-32(payload))
//! ```
//!
//! `kind` distinguishes [`FRAME_CHANGE`] (a global record sequence
//! number followed by one encoded `StateChange`), [`FRAME_SNAPSHOT`]
//! (a full `Sections` dump), [`FRAME_SNAPSHOT_INC`] (an incremental
//! dump holding only sections dirtied since the previous snapshot) and
//! [`FRAME_COMMIT`] (a transaction boundary carrying the commit
//! sim-time and a monotonic commit sequence). The scanner is tolerant
//! of a *torn tail* — a final frame cut short or failing its CRC is
//! dropped, along with everything after it, exactly as a real WAL
//! discards a partial write after a crash. A bad CRC is never an error
//! at this layer; corruption that survives CRC (a buggy writer)
//! surfaces later when the payload fails to decode.
//!
//! A **sharded** WAL ([`crate::DurabilityPlan::sharded`]) is one such
//! log per state section. Its single-image form is a *bundle*: the
//! [`BUNDLE_MAGIC`] followed by a wire-encoded list of
//! `(section name, shard log)` pairs, each shard log being a complete
//! standalone `VMRWAL02` image. [`crate::recover`] dispatches on the
//! leading magic.

use crate::crc::Crc32;
use crate::wire::{Dec, Enc, WireError};
use bytes::{BufMut, BytesMut};

/// Log format magic + version. Bump the trailing digits on any layout
/// change — there is no in-place migration. `02` added the record /
/// commit sequence numbers and incremental snapshot frames.
pub const MAGIC: &[u8; 8] = b"VMRWAL02";

/// Sharded-bundle magic: the image is a list of per-section shard
/// logs, not a single frame stream.
pub const BUNDLE_MAGIC: &[u8; 8] = b"VMRSHRD1";

/// Frame kind: one encoded [`crate::StateChange`], prefixed by its
/// global record sequence number (`u64` BE) — the merge key sharded
/// recovery interleaves shard tails by.
pub const FRAME_CHANGE: u8 = 0;
/// Frame kind: a full state snapshot ([`crate::Sections`]).
pub const FRAME_SNAPSHOT: u8 = 1;
/// Frame kind: a commit (transaction boundary), body = sim-time µs
/// (`u64` BE) + monotonic commit sequence (`u64` BE).
pub const FRAME_COMMIT: u8 = 2;
/// Frame kind: an incremental snapshot — only the sections dirtied
/// since the previous snapshot ([`crate::Sections`] subset). Recovery
/// layers it over the last full snapshot.
pub const FRAME_SNAPSHOT_INC: u8 = 3;

/// Appends the magic header to an empty log buffer.
pub fn put_magic(buf: &mut BytesMut) {
    buf.put_slice(MAGIC);
}

/// Appends one frame; returns the number of bytes written.
pub fn append_frame(buf: &mut BytesMut, kind: u8, body: &[u8]) -> usize {
    let len = 1 + body.len();
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(body);
    buf.put_u32(len as u32);
    buf.put_u32(crc.finish());
    buf.put_u8(kind);
    buf.put_slice(body);
    8 + len
}

/// One frame located in a scanned log.
#[derive(Clone, Copy, Debug)]
pub struct RawFrame {
    /// Frame kind byte.
    pub kind: u8,
    /// Byte range of the body (payload minus the kind byte).
    pub body: (usize, usize),
    /// Offset one past the frame's last byte.
    pub end: usize,
}

impl RawFrame {
    /// Offset of the frame's first byte (the length prefix).
    pub fn start(&self) -> usize {
        self.body.0 - 9
    }
}

/// Result of scanning a log image.
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// Every structurally valid frame, in log order.
    pub frames: Vec<RawFrame>,
    /// Length of the valid prefix; bytes past this are the torn tail.
    pub valid_len: usize,
}

/// The log does not start with [`MAGIC`] (and is long enough that it
/// should) — this is a foreign or incompatible file, not a torn tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BadMagic;

/// Walks the frames of `log`, stopping (without error) at the first
/// torn or CRC-invalid frame. An empty or magic-prefix-only log scans
/// to zero frames.
pub fn scan(log: &[u8]) -> Result<Scan, BadMagic> {
    let head = log.len().min(MAGIC.len());
    if log[..head] != MAGIC[..head] {
        return Err(BadMagic);
    }
    let mut out = Scan {
        frames: Vec::new(),
        valid_len: head,
    };
    if log.len() < MAGIC.len() {
        return Ok(out);
    }
    let mut off = MAGIC.len();
    while log.len() - off >= 8 {
        let len = u32::from_be_bytes(log[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(log[off + 4..off + 8].try_into().unwrap());
        if len == 0 || log.len() - off - 8 < len {
            break; // torn tail
        }
        let payload = &log[off + 8..off + 8 + len];
        if crate::crc::crc32(payload) != crc {
            break; // bit rot or a partially overwritten frame
        }
        let end = off + 8 + len;
        out.frames.push(RawFrame {
            kind: payload[0],
            body: (off + 9, end),
            end,
        });
        out.valid_len = end;
        off = end;
    }
    Ok(out)
}

/// True when `image` carries the sharded-bundle magic.
pub fn is_bundle(image: &[u8]) -> bool {
    image.len() >= BUNDLE_MAGIC.len() && &image[..BUNDLE_MAGIC.len()] == BUNDLE_MAGIC
}

/// Assembles a sharded bundle image from `(section name, shard log)`
/// pairs, in the order given.
pub fn bundle(entries: &[(&str, &[u8])]) -> Vec<u8> {
    let mut e = Enc::with_capacity(
        BUNDLE_MAGIC.len()
            + 8
            + entries
                .iter()
                .map(|(n, b)| n.len() + b.len() + 8)
                .sum::<usize>(),
    );
    e.u32(entries.len() as u32);
    for (name, log) in entries {
        e.str(name);
        e.bytes(log);
    }
    let mut out = Vec::with_capacity(BUNDLE_MAGIC.len() + e.len());
    out.extend_from_slice(BUNDLE_MAGIC);
    out.extend_from_slice(&e.into_vec());
    out
}

/// Splits a bundle image back into `(section name, shard log)` pairs.
/// Fails with [`WireError`] when the container itself is corrupt or
/// truncated (the bundle is written atomically; a torn *shard* is
/// normal crash debris, a torn *container* is not).
pub fn parse_bundle(image: &[u8]) -> Result<Vec<(String, Vec<u8>)>, WireError> {
    debug_assert!(is_bundle(image));
    let mut d = Dec::new(&image[BUNDLE_MAGIC.len()..]);
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(16));
    for _ in 0..n {
        let name = d.str()?;
        let log = d.bytes()?;
        out.push((name, log));
    }
    d.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> BytesMut {
        let mut b = BytesMut::new();
        put_magic(&mut b);
        append_frame(&mut b, FRAME_CHANGE, b"alpha");
        append_frame(&mut b, FRAME_COMMIT, &7u64.to_be_bytes());
        append_frame(&mut b, FRAME_SNAPSHOT, b"snap");
        b
    }

    #[test]
    fn scan_round_trips_frames() {
        let log = sample_log();
        let scan = scan(&log).unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.valid_len, log.len());
        assert_eq!(scan.frames[0].kind, FRAME_CHANGE);
        let (a, b) = scan.frames[0].body;
        assert_eq!(&log[a..b], b"alpha");
        assert_eq!(scan.frames[0].start(), MAGIC.len());
        assert_eq!(scan.frames[1].kind, FRAME_COMMIT);
        assert_eq!(scan.frames[2].kind, FRAME_SNAPSHOT);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut() {
        let log = sample_log();
        let full = scan(&log).unwrap();
        let ends: Vec<usize> = full.frames.iter().map(|f| f.end).collect();
        for cut in MAGIC.len()..log.len() {
            let s = scan(&log[..cut]).unwrap();
            // Every wholly-contained frame survives; nothing partial does.
            let want = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(s.frames.len(), want, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_crc_truncates_from_that_frame() {
        let log = sample_log();
        let mut bytes = log.to_vec();
        let second = scan(&log).unwrap().frames[1];
        bytes[second.body.0] ^= 0x40;
        let s = scan(&bytes).unwrap();
        assert_eq!(s.frames.len(), 1);
        assert_eq!(s.valid_len, scan(&log).unwrap().frames[0].end);
    }

    #[test]
    fn foreign_bytes_are_bad_magic() {
        assert_eq!(scan(b"NOTAWAL0rest").unwrap_err(), BadMagic);
        // A torn magic prefix is fine (empty log being created).
        assert!(scan(&MAGIC[..3]).unwrap().frames.is_empty());
        assert!(scan(b"").unwrap().frames.is_empty());
    }

    #[test]
    fn bundle_round_trips() {
        let a = sample_log().to_vec();
        let b = {
            let mut l = BytesMut::new();
            put_magic(&mut l);
            l.to_vec()
        };
        let img = bundle(&[("db", &a), ("credit", &b)]);
        assert!(is_bundle(&img));
        assert!(!is_bundle(&a));
        let back = parse_bundle(&img).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "db");
        assert_eq!(back[0].1, a);
        assert_eq!(back[1].0, "credit");
        assert_eq!(back[1].1, b);
    }

    #[test]
    fn torn_bundle_container_is_a_wire_error() {
        let a = sample_log().to_vec();
        let img = bundle(&[("db", &a)]);
        for cut in BUNDLE_MAGIC.len()..img.len() {
            assert!(parse_bundle(&img[..cut]).is_err(), "cut at {cut}");
        }
    }
}
