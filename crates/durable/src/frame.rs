//! Physical log layout: a magic header followed by length-prefixed,
//! CRC-framed records.
//!
//! ```text
//! log      := MAGIC frame*
//! MAGIC    := "VMRWAL01"                     (8 bytes, format version)
//! frame    := len:u32 crc:u32 payload        (len = |payload|, BE)
//! payload  := kind:u8 body                   (crc = CRC-32(payload))
//! ```
//!
//! `kind` distinguishes [`FRAME_CHANGE`] (one encoded `StateChange`),
//! [`FRAME_SNAPSHOT`] (a full `Sections` dump) and [`FRAME_COMMIT`]
//! (a transaction boundary carrying the commit sim-time). The scanner
//! is tolerant of a *torn tail* — a final frame cut short or failing
//! its CRC is dropped, along with everything after it, exactly as a
//! real WAL discards a partial write after a crash. A bad CRC is never
//! an error at this layer; corruption that survives CRC (a buggy
//! writer) surfaces later when the payload fails to decode.

use crate::crc::Crc32;
use bytes::{BufMut, BytesMut};

/// Log format magic + version. Bump the trailing digits on any layout
/// change — there is no in-place migration.
pub const MAGIC: &[u8; 8] = b"VMRWAL01";

/// Frame kind: one encoded [`crate::StateChange`].
pub const FRAME_CHANGE: u8 = 0;
/// Frame kind: a full state snapshot ([`crate::Sections`]).
pub const FRAME_SNAPSHOT: u8 = 1;
/// Frame kind: a commit (transaction boundary), body = sim-time µs.
pub const FRAME_COMMIT: u8 = 2;

/// Appends the magic header to an empty log buffer.
pub fn put_magic(buf: &mut BytesMut) {
    buf.put_slice(MAGIC);
}

/// Appends one frame; returns the number of bytes written.
pub fn append_frame(buf: &mut BytesMut, kind: u8, body: &[u8]) -> usize {
    let len = 1 + body.len();
    let mut crc = Crc32::new();
    crc.update(&[kind]);
    crc.update(body);
    buf.put_u32(len as u32);
    buf.put_u32(crc.finish());
    buf.put_u8(kind);
    buf.put_slice(body);
    8 + len
}

/// One frame located in a scanned log.
#[derive(Clone, Copy, Debug)]
pub struct RawFrame {
    /// Frame kind byte.
    pub kind: u8,
    /// Byte range of the body (payload minus the kind byte).
    pub body: (usize, usize),
    /// Offset one past the frame's last byte.
    pub end: usize,
}

/// Result of scanning a log image.
#[derive(Clone, Debug, Default)]
pub struct Scan {
    /// Every structurally valid frame, in log order.
    pub frames: Vec<RawFrame>,
    /// Length of the valid prefix; bytes past this are the torn tail.
    pub valid_len: usize,
}

/// The log does not start with [`MAGIC`] (and is long enough that it
/// should) — this is a foreign or incompatible file, not a torn tail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BadMagic;

/// Walks the frames of `log`, stopping (without error) at the first
/// torn or CRC-invalid frame. An empty or magic-prefix-only log scans
/// to zero frames.
pub fn scan(log: &[u8]) -> Result<Scan, BadMagic> {
    let head = log.len().min(MAGIC.len());
    if log[..head] != MAGIC[..head] {
        return Err(BadMagic);
    }
    let mut out = Scan {
        frames: Vec::new(),
        valid_len: head,
    };
    if log.len() < MAGIC.len() {
        return Ok(out);
    }
    let mut off = MAGIC.len();
    while log.len() - off >= 8 {
        let len = u32::from_be_bytes(log[off..off + 4].try_into().unwrap()) as usize;
        let crc = u32::from_be_bytes(log[off + 4..off + 8].try_into().unwrap());
        if len == 0 || log.len() - off - 8 < len {
            break; // torn tail
        }
        let payload = &log[off + 8..off + 8 + len];
        if crate::crc::crc32(payload) != crc {
            break; // bit rot or a partially overwritten frame
        }
        let end = off + 8 + len;
        out.frames.push(RawFrame {
            kind: payload[0],
            body: (off + 9, end),
            end,
        });
        out.valid_len = end;
        off = end;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> BytesMut {
        let mut b = BytesMut::new();
        put_magic(&mut b);
        append_frame(&mut b, FRAME_CHANGE, b"alpha");
        append_frame(&mut b, FRAME_COMMIT, &7u64.to_be_bytes());
        append_frame(&mut b, FRAME_SNAPSHOT, b"snap");
        b
    }

    #[test]
    fn scan_round_trips_frames() {
        let log = sample_log();
        let scan = scan(&log).unwrap();
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.valid_len, log.len());
        assert_eq!(scan.frames[0].kind, FRAME_CHANGE);
        let (a, b) = scan.frames[0].body;
        assert_eq!(&log[a..b], b"alpha");
        assert_eq!(scan.frames[1].kind, FRAME_COMMIT);
        assert_eq!(scan.frames[2].kind, FRAME_SNAPSHOT);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut() {
        let log = sample_log();
        let full = scan(&log).unwrap();
        let ends: Vec<usize> = full.frames.iter().map(|f| f.end).collect();
        for cut in MAGIC.len()..log.len() {
            let s = scan(&log[..cut]).unwrap();
            // Every wholly-contained frame survives; nothing partial does.
            let want = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(s.frames.len(), want, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_crc_truncates_from_that_frame() {
        let log = sample_log();
        let mut bytes = log.to_vec();
        let second = scan(&log).unwrap().frames[1];
        bytes[second.body.0] ^= 0x40;
        let s = scan(&bytes).unwrap();
        assert_eq!(s.frames.len(), 1);
        assert_eq!(s.valid_len, scan(&log).unwrap().frames[0].end);
    }

    #[test]
    fn foreign_bytes_are_bad_magic() {
        assert_eq!(scan(b"NOTAWAL0rest").unwrap_err(), BadMagic);
        // A torn magic prefix is fine (empty log being created).
        assert!(scan(&MAGIC[..3]).unwrap().frames.is_empty());
        assert!(scan(b"").unwrap().frames.is_empty());
    }
}
