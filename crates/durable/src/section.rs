//! The canonical state-section vocabulary shared by snapshots and the
//! sharded WAL.
//!
//! Server state is partitioned into five named sections — the project
//! database, the credit ledger, the assimilator, the MapReduce
//! JobTracker and the host trust ledger. Snapshot frames carry them by
//! name
//! ([`crate::Sections`]); the sharded journal keys one log per section
//! ([`crate::DurabilityPlan::sharded`]); and every
//! [`crate::StateChange`] variant maps to exactly one section
//! ([`crate::StateChange::section_index`]), which is what routes a
//! change record to its shard and sets that shard's dirty bit for
//! incremental snapshots.
//!
//! The list is append-only and its order is canonical: recovery
//! assembles merged sections in this order, so two equal server states
//! recovered through different paths (single log, sharded bundle,
//! compacted mirror) compare byte-identical.

/// Index of the project-database section.
pub const DB: usize = 0;
/// Index of the credit-ledger section.
pub const CREDIT: usize = 1;
/// Index of the assimilator section.
pub const ASSIM: usize = 2;
/// Index of the JobTracker section.
pub const TRACKER: usize = 3;
/// Index of the host trust-ledger section.
pub const TRUST: usize = 4;

/// Canonical section names, in canonical order.
pub const NAMES: [&str; 5] = ["db", "credit", "assim", "tracker", "trust"];

/// Number of sections (= number of shards in a sharded WAL).
pub const COUNT: usize = NAMES.len();

/// Resolves a section name to its canonical index.
pub fn index_of(name: &str) -> Option<usize> {
    NAMES.iter().position(|&n| n == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_indices_agree() {
        assert_eq!(index_of("db"), Some(DB));
        assert_eq!(index_of("credit"), Some(CREDIT));
        assert_eq!(index_of("assim"), Some(ASSIM));
        assert_eq!(index_of("tracker"), Some(TRACKER));
        assert_eq!(index_of("trust"), Some(TRUST));
        assert_eq!(index_of("ghost"), None);
        assert_eq!(COUNT, 5);
    }
}
