//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the frame
//! checksum of the write-ahead log. Table-driven, table built at
//! compile time; no dependency on external crates.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// Incremental CRC-32 state, for checksumming a frame without first
/// concatenating its header byte and body into a scratch buffer.
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.0;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The final checksum value.
    pub fn finish(self) -> u32 {
        !self.0
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// CRC-32 of `data` (IEEE, as used by zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = b"frame payload".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x01;
        assert_ne!(crc32(&a), crc32(&b));
    }
}
