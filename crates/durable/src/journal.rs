//! The write-ahead log handle.
//!
//! A [`Journal`] is a cheaply clonable handle to one shared log; the
//! `Engine` owns the master copy and hands clones to the project
//! database, credit ledger and assimilator so each mutator appends its
//! own [`StateChange`] at the point of mutation (write-ahead: the
//! record is framed into the log before the in-memory state changes).
//!
//! **Time.** The engine calls [`Journal::advance_to`] once per
//! dispatched event; every record appended while that event runs
//! shares its sim-time, so mutators never thread a timestamp just for
//! the log.
//!
//! **Transactions.** The simulation mutates state only while
//! dispatching one event, so the natural atomicity unit is the event:
//! the engine calls [`Journal::commit`] after each dispatched event
//! that appended records, which writes a `FRAME_COMMIT` boundary
//! carrying the event's sim-time plus a monotonic *commit sequence*.
//! Recovery discards any records after the last commit frame — a
//! crash mid-event can never expose a half-applied transition.
//!
//! **Sharding.** With [`DurabilityPlan::sharded`], the journal keeps
//! one log per state section ([`crate::section`]); a change record
//! routes to its section's shard under that shard's own lock, so
//! appends to different sections never contend — the append path
//! touches only atomics plus one shard mutex. Each commit writes the
//! same `(sim-time, commit seq)` boundary to *every* shard, which
//! makes the recoverable boundary of a set of independently torn
//! shards simply the minimum of their last commit sequences; recovery
//! merges shard tails back into the global order by the per-record
//! sequence number ([`crate::recover`]).
//!
//! **Incremental snapshots.** Applying a change sets its section's
//! dirty bit; [`Journal::write_snapshot`] encodes only dirty sections
//! (an incremental frame), forcing a full snapshot every
//! [`DurabilityPlan::full_snapshot_every`]-th one. An incremental
//! snapshot with nothing dirty is skipped entirely.
//!
//! **Compaction.** A committed full snapshot supersedes every earlier
//! frame; when the [`CompactionPolicy`] triggers, the file mirror is
//! rewritten (temp file + atomic rename) to start at that snapshot.
//! The in-memory log is never compacted — it stays the authoritative,
//! append-only image (`log_bytes` of a resumed run must reproduce the
//! original bytes bit-for-bit).
//!
//! **Crash injection.** A [`CrashPlan`] deterministically kills the
//! log: after the Nth change record, or at the first event boundary
//! at-or-after a sim-time. Once crashed the journal accepts nothing
//! further, exactly as if the server process died — the in-memory
//! engine may keep running, but that state is what a real crash would
//! have lost. It composes with `vcore::FaultPlan` (client-side faults)
//! without interaction: one kills volunteers, the other the server.
//!
//! A disabled journal (the default) is a `None` and every call is a
//! single branch — experiments that do not opt in pay nothing.

use crate::frame;
use crate::record::StateChange;
use crate::section;
use crate::snapshot::Sections;
use crate::wire::Enc;
use bytes::BytesMut;
use parking_lot::Mutex;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use vmr_obs::{Counter, Histo, Obs};

/// Deterministic crash point for the durability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CrashPlan {
    /// Kill the log immediately after the Nth change record (1-based).
    pub after_records: Option<u64>,
    /// Kill the log at the first event boundary at-or-after this
    /// sim-time (microseconds).
    pub at_us: Option<u64>,
}

impl CrashPlan {
    /// No crash.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Crash after the Nth change record.
    pub fn after_records(n: u64) -> Self {
        CrashPlan {
            after_records: Some(n),
            at_us: None,
        }
    }

    /// Crash at a sim-time (microseconds).
    pub fn at_us(t: u64) -> Self {
        CrashPlan {
            after_records: None,
            at_us: Some(t),
        }
    }

    /// True when no crash is scheduled.
    pub fn is_none(&self) -> bool {
        self.after_records.is_none() && self.at_us.is_none()
    }
}

/// When to rewrite the file mirror so frames superseded by a committed
/// snapshot are dropped. The default ([`CompactionPolicy::never`])
/// keeps the mirror append-only.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompactionPolicy {
    /// Rewrite when the mirror file reaches this many bytes.
    pub max_mirror_bytes: Option<u64>,
    /// Rewrite when this many superseded change records sit in the
    /// mirror (records before the last committed chain-start snapshot).
    pub max_superseded_records: Option<u64>,
}

impl CompactionPolicy {
    /// Never compact (the default).
    pub fn never() -> Self {
        CompactionPolicy::default()
    }

    /// Compact when the mirror reaches `n` bytes.
    pub fn max_mirror_bytes(n: u64) -> Self {
        CompactionPolicy {
            max_mirror_bytes: Some(n),
            max_superseded_records: None,
        }
    }

    /// Compact when `n` superseded change records accumulate.
    pub fn max_superseded_records(n: u64) -> Self {
        CompactionPolicy {
            max_mirror_bytes: None,
            max_superseded_records: Some(n),
        }
    }

    /// True when no trigger is configured.
    pub fn is_never(&self) -> bool {
        self.max_mirror_bytes.is_none() && self.max_superseded_records.is_none()
    }

    fn triggered(&self, mirror_bytes: u64, superseded_records: u64) -> bool {
        self.max_mirror_bytes.is_some_and(|n| mirror_bytes >= n)
            || self
                .max_superseded_records
                .is_some_and(|n| superseded_records >= n)
    }
}

/// Configuration for one journaled run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurabilityPlan {
    /// Master switch; a disabled plan builds a no-op [`Journal`].
    pub enabled: bool,
    /// Snapshot cadence in sim-seconds; `<= 0` disables snapshots
    /// (recovery then replays the whole log).
    pub snapshot_every_s: f64,
    /// Every Kth snapshot is full; the K−1 between are incremental
    /// (dirty sections only). `0` or `1` = every snapshot is full.
    pub full_snapshot_every: u32,
    /// One log per state section instead of a single shared log.
    pub sharded: bool,
    /// Mirror-rewrite policy; [`CompactionPolicy::never`] by default.
    pub compaction: CompactionPolicy,
    /// Deterministic crash point, if any.
    pub crash: CrashPlan,
    /// Optional file mirror: committed bytes are appended (and
    /// flushed) at every commit. Sharded plans mirror each shard to
    /// `{path}.{section}` (see [`DurabilityPlan::sink_paths`]).
    pub sink: Option<PathBuf>,
    /// Group-commit: the mirror is written and flushed every Nth
    /// commit instead of every commit, coalescing the accumulated
    /// committed bytes into one write + fsync per interval. `0` or `1`
    /// is the historical flush-per-commit behaviour. The in-memory log
    /// and its commit frames are unaffected — only mirror I/O is
    /// deferred, so a crash between flushes loses at most the last
    /// N−1 committed events *from the mirror* (the recoverable
    /// boundary moves back to the last flushed commit).
    pub flush_every_commits: u64,
    /// Drive mirror compaction from a detached background thread
    /// (nudged at each commit) instead of inline on the commit path.
    /// Rewrites are mirror-only, so this never affects simulation
    /// state — it only moves the rewrite cost off the hot path.
    pub background_compaction: bool,
}

impl DurabilityPlan {
    /// Durability off (the default).
    pub fn disabled() -> Self {
        DurabilityPlan::default()
    }

    /// Durability on with the given snapshot cadence (sim-seconds).
    pub fn new(snapshot_every_s: f64) -> Self {
        DurabilityPlan {
            enabled: true,
            snapshot_every_s,
            full_snapshot_every: 1,
            sharded: false,
            compaction: CompactionPolicy::never(),
            crash: CrashPlan::none(),
            sink: None,
            flush_every_commits: 1,
            background_compaction: false,
        }
    }

    /// Adds a crash point.
    pub fn with_crash(mut self, crash: CrashPlan) -> Self {
        self.crash = crash;
        self
    }

    /// Adds a file mirror for committed bytes.
    pub fn with_sink(mut self, path: impl Into<PathBuf>) -> Self {
        self.sink = Some(path.into());
        self
    }

    /// Makes every Kth snapshot full and the rest incremental.
    pub fn with_incremental(mut self, full_every: u32) -> Self {
        self.full_snapshot_every = full_every;
        self
    }

    /// Switches to one log per state section.
    pub fn with_sharding(mut self) -> Self {
        self.sharded = true;
        self
    }

    /// Sets the mirror compaction policy.
    pub fn with_compaction(mut self, policy: CompactionPolicy) -> Self {
        self.compaction = policy;
        self
    }

    /// Group-commit: flush the mirror every `n` commits (see
    /// [`DurabilityPlan::flush_every_commits`]).
    pub fn with_group_commit(mut self, n: u64) -> Self {
        self.flush_every_commits = n;
        self
    }

    /// Runs mirror compaction on a background thread.
    pub fn with_background_compaction(mut self) -> Self {
        self.background_compaction = true;
        self
    }

    /// The mirror file paths this plan writes: `[sink]` for a single
    /// log, `{sink}.{section}` per section when sharded, empty without
    /// a sink.
    pub fn sink_paths(&self) -> Vec<PathBuf> {
        match &self.sink {
            None => Vec::new(),
            Some(p) if !self.sharded => vec![p.clone()],
            Some(p) => section::NAMES
                .iter()
                .map(|n| {
                    let mut os = p.clone().into_os_string();
                    os.push(format!(".{n}"));
                    PathBuf::from(os)
                })
                .collect(),
        }
    }
}

/// Reads a plan's mirror file(s) back into one recoverable image —
/// the single log, or the shard bundle assembled from the per-section
/// mirrors. This is what a restarted server hands to
/// [`crate::recover`].
pub fn sink_image(plan: &DurabilityPlan) -> std::io::Result<Vec<u8>> {
    let paths = plan.sink_paths();
    if paths.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            "plan has no sink",
        ));
    }
    if !plan.sharded {
        return std::fs::read(&paths[0]);
    }
    let mut logs = Vec::with_capacity(paths.len());
    for p in &paths {
        logs.push(std::fs::read(p)?);
    }
    let entries: Vec<(&str, &[u8])> = section::NAMES
        .iter()
        .zip(&logs)
        .map(|(n, l)| (*n, l.as_slice()))
        .collect();
    Ok(frame::bundle(&entries))
}

/// Pre-resolved metric handles (no-ops without the `record` feature).
struct DurObs {
    wal_records: Counter,
    wal_bytes: Counter,
    snapshot_us: Histo,
    compactions: Counter,
    compact_reclaimed: Counter,
}

/// Log position of the last commit frame.
#[derive(Clone, Copy, Debug, Default)]
struct Watermark {
    bytes: usize,
    frames: u64,
    records: u64,
}

/// One log (the only one, or one section's).
struct Shard {
    log: BytesMut,
    /// Frames appended (changes + snapshots + commits).
    frames: u64,
    /// Change records appended.
    records: u64,
    committed: Watermark,
    /// Offset of the frame the committed log is self-contained from:
    /// the last committed chain-start snapshot, else the magic header.
    chain_start: usize,
    /// Change records superseded by `chain_start`.
    superseded: u64,
    /// Snapshot written but not yet committed:
    /// `(frame offset, records at write, starts a chain)`.
    pending_snap: Option<(usize, u64, bool)>,
    sink: Option<std::fs::File>,
    sink_path: Option<PathBuf>,
    /// In-memory offset mirrored so far.
    sink_pos: usize,
    /// In-memory offset where the mirror's content (after its magic)
    /// begins; grows at each compaction.
    sink_from: usize,
    /// Current mirror file length.
    mirror_len: u64,
    /// Superseded records already dropped by past compactions.
    dropped: u64,
    /// Commits since the mirror was last flushed (group-commit).
    unflushed_commits: u64,
}

impl Shard {
    fn new(sink_path: Option<PathBuf>) -> std::io::Result<Self> {
        let mut log = BytesMut::with_capacity(4096);
        frame::put_magic(&mut log);
        let sink = match &sink_path {
            Some(p) => Some(std::fs::File::create(p)?),
            None => None,
        };
        Ok(Shard {
            log,
            frames: 0,
            records: 0,
            committed: Watermark::default(),
            chain_start: frame::MAGIC.len(),
            superseded: 0,
            pending_snap: None,
            sink,
            sink_path,
            sink_pos: 0,
            sink_from: frame::MAGIC.len(),
            mirror_len: 0,
            dropped: 0,
            unflushed_commits: 0,
        })
    }

    fn append_frame(&mut self, kind: u8, body: &[u8]) -> usize {
        let n = frame::append_frame(&mut self.log, kind, body);
        self.frames += 1;
        n
    }

    /// Mirrors newly committed bytes, honouring group-commit: the
    /// write + flush happens only every `flush_every`-th commit, so
    /// the accumulated committed bytes of the whole interval coalesce
    /// into one syscall pair. Inline compaction (when not delegated to
    /// the background thread) runs after a real flush.
    fn mirror(
        &mut self,
        policy: &CompactionPolicy,
        flush_every: u64,
        background: bool,
        obs: Option<&DurObs>,
    ) {
        if self.sink.is_none() {
            return;
        }
        self.unflushed_commits += 1;
        if self.unflushed_commits < flush_every.max(1) {
            return; // defer to the group boundary
        }
        self.flush_to_committed();
        if !background {
            self.maybe_compact(policy, obs);
        }
    }

    /// Appends everything committed-but-unmirrored to the sink and
    /// flushes it. Mirror failure is non-fatal: the in-memory log
    /// stays authoritative; the mirror is best-effort.
    fn flush_to_committed(&mut self) {
        self.unflushed_commits = 0;
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let end = self.committed.bytes;
        if end > self.sink_pos {
            let chunk = self.log[self.sink_pos..end].to_vec();
            if sink.write_all(&chunk).and_then(|_| sink.flush()).is_ok() {
                self.sink_pos = end;
                self.mirror_len += chunk.len() as u64;
            }
        }
    }

    /// Rewrites the mirror if the compaction policy triggers and the
    /// mirrored prefix already contains the chain-start snapshot.
    fn maybe_compact(&mut self, policy: &CompactionPolicy, obs: Option<&DurObs>) {
        if self.chain_start > self.sink_from
            && self.sink_pos >= self.chain_start
            && policy.triggered(self.mirror_len, self.superseded - self.dropped)
        {
            self.compact_mirror(obs);
        }
    }

    /// Rewrites the mirror as `MAGIC + log[chain_start..sink_pos]` via
    /// a temp file and atomic rename, then reopens it for appending.
    fn compact_mirror(&mut self, obs: Option<&DurObs>) {
        let Some(path) = self.sink_path.clone() else {
            return;
        };
        let mut content = Vec::with_capacity(frame::MAGIC.len() + self.sink_pos - self.chain_start);
        content.extend_from_slice(frame::MAGIC);
        content.extend_from_slice(&self.log[self.chain_start..self.sink_pos]);
        let tmp = {
            let mut os = path.clone().into_os_string();
            os.push(".tmp");
            PathBuf::from(os)
        };
        let rewritten = std::fs::write(&tmp, &content)
            .and_then(|_| std::fs::rename(&tmp, &path))
            .and_then(|_| std::fs::OpenOptions::new().append(true).open(&path));
        match rewritten {
            Ok(f) => {
                let reclaimed = self.mirror_len.saturating_sub(content.len() as u64);
                self.mirror_len = content.len() as u64;
                self.sink_from = self.chain_start;
                self.dropped = self.superseded;
                self.sink = Some(f);
                if let Some(o) = obs {
                    o.compactions.inc();
                    o.compact_reclaimed.add(reclaimed);
                }
            }
            Err(_) => {
                std::fs::remove_file(&tmp).ok();
            }
        }
    }
}

/// Commit-side bookkeeping, touched once per committed event.
struct Ctl {
    /// Last allocated commit sequence (0 = nothing committed yet).
    commit_seq: u64,
    /// Snapshots written (drives the full/incremental cycle).
    snap_counter: u64,
    next_snapshot_us: u64,
}

struct Core {
    sharded: bool,
    /// Every Kth snapshot is full (`<= 1` = always full).
    full_every: u64,
    /// Snapshot cadence, microseconds; 0 = never.
    snapshot_every_us: u64,
    compaction: CompactionPolicy,
    /// Mirror flush interval in commits (group-commit; 1 = every).
    flush_every: u64,
    /// Nudge channel to the background compaction thread, when one
    /// runs. `std::sync::mpsc::Sender` is `!Sync`, hence the mutex.
    compact_tx: Option<Mutex<std::sync::mpsc::Sender<()>>>,
    crash_after: Option<u64>,
    crash_at: Option<u64>,
    /// One shard per section when sharded, else a single shard.
    shards: Vec<Mutex<Shard>>,
    /// Sim-time of the event being dispatched, microseconds.
    now_us: AtomicU64,
    /// Change records appended (doubles as the record-sequence source).
    records: AtomicU64,
    crashed: AtomicBool,
    /// Anything appended (records or snapshots) since the last commit.
    any_pending: AtomicBool,
    /// Per-section dirty bits for incremental snapshots.
    dirty: [AtomicBool; section::COUNT],
    ctl: Mutex<Ctl>,
    obs: OnceLock<DurObs>,
}

/// Handle to one shared write-ahead log; clones append to the same log.
#[derive(Clone, Default)]
pub struct Journal(Option<Arc<Core>>);

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Journal(disabled)"),
            Some(core) => write!(
                f,
                "Journal(shards={}, frames={}, records={}, bytes={}, crashed={})",
                core.shards.len(),
                self.frames(),
                self.records(),
                self.log_len(),
                core.crashed.load(Ordering::Acquire)
            ),
        }
    }
}

impl Journal {
    /// A no-op journal: every call is a single branch.
    pub fn disabled() -> Self {
        Journal(None)
    }

    /// Builds a journal from a plan. A disabled plan yields the no-op
    /// handle; an enabled one starts a fresh log (and file mirrors).
    pub fn new(plan: &DurabilityPlan) -> std::io::Result<Self> {
        if !plan.enabled {
            return Ok(Journal(None));
        }
        let every_us = if plan.snapshot_every_s > 0.0 {
            (plan.snapshot_every_s * 1e6) as u64
        } else {
            0
        };
        let sink_paths = plan.sink_paths();
        let shard_count = if plan.sharded { section::COUNT } else { 1 };
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            shards.push(Mutex::new(Shard::new(sink_paths.get(i).cloned())?));
        }
        let background =
            plan.background_compaction && plan.sink.is_some() && !plan.compaction.is_never();
        let (compact_tx, compact_rx) = if background {
            let (tx, rx) = std::sync::mpsc::channel();
            (Some(Mutex::new(tx)), Some(rx))
        } else {
            (None, None)
        };
        let core = Arc::new(Core {
            sharded: plan.sharded,
            full_every: plan.full_snapshot_every.max(1) as u64,
            snapshot_every_us: every_us,
            compaction: plan.compaction,
            flush_every: plan.flush_every_commits.max(1),
            compact_tx,
            crash_after: plan.crash.after_records,
            crash_at: plan.crash.at_us,
            shards,
            now_us: AtomicU64::new(0),
            records: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            any_pending: AtomicBool::new(false),
            dirty: Default::default(),
            ctl: Mutex::new(Ctl {
                commit_seq: 0,
                snap_counter: 0,
                next_snapshot_us: every_us,
            }),
            obs: OnceLock::new(),
        });
        if let Some(rx) = compact_rx {
            // Detached worker holding only a weak ref: it exits when
            // the last Journal handle drops (channel disconnects) or
            // the core is gone by the time a nudge arrives. Rewrites
            // are mirror-only, so the worker never touches sim state.
            let weak = Arc::downgrade(&core);
            std::thread::Builder::new()
                .name("vmr-wal-compact".into())
                .spawn(move || {
                    while rx.recv().is_ok() {
                        // Coalesce queued nudges into one sweep.
                        while rx.try_recv().is_ok() {}
                        let Some(core) = weak.upgrade() else { break };
                        for m in &core.shards {
                            m.lock().maybe_compact(&core.compaction, core.obs.get());
                        }
                    }
                })
                .ok();
        }
        Ok(Journal(Some(core)))
    }

    /// Resolves the `dur.*` metric handles against `obs`.
    pub fn attach_obs(&self, obs: &Obs) {
        if let Some(core) = &self.0 {
            let _ = core.obs.set(DurObs {
                wal_records: obs.counter("dur.wal_records"),
                wal_bytes: obs.counter("dur.wal_bytes"),
                snapshot_us: obs.histogram("dur.snapshot_us"),
                compactions: obs.counter("dur.compactions"),
                compact_reclaimed: obs.counter("dur.compact_reclaimed_bytes"),
            });
        }
    }

    /// True when this handle appends to a live log.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// True when this journal keeps one log per state section.
    pub fn sharded(&self) -> bool {
        self.0.as_ref().is_some_and(|c| c.sharded)
    }

    /// Advances the journal's sim-clock to the event being dispatched
    /// and trips a time-based crash at that boundary.
    pub fn advance_to(&self, now_us: u64) {
        let Some(core) = &self.0 else { return };
        core.now_us.store(now_us, Ordering::Release);
        if matches!(core.crash_at, Some(t) if now_us >= t) {
            core.crashed.store(true, Ordering::Release);
        }
    }

    /// Appends one change record at the current event's sim-time,
    /// routing it to its section's shard. No-op when disabled or
    /// crashed; flips to crashed per the [`CrashPlan`].
    pub fn append(&self, change: &StateChange) {
        let Some(core) = &self.0 else { return };
        if core.crashed.load(Ordering::Acquire) {
            return;
        }
        let sec = change.section_index();
        let shard = if core.sharded { sec } else { 0 };
        let seq = {
            let mut s = core.shards[shard].lock();
            // Allocate the global record sequence under the shard lock
            // so each shard's records carry strictly increasing
            // sequences (the invariant recovery validates).
            let seq = core.records.fetch_add(1, Ordering::AcqRel) + 1;
            let mut body = Enc::with_capacity(48);
            body.u64(seq);
            change.encode(&mut body);
            let n = s.append_frame(frame::FRAME_CHANGE, &body.into_vec());
            s.records += 1;
            if let Some(o) = core.obs.get() {
                o.wal_records.inc();
                o.wal_bytes.add(n as u64);
            }
            seq
        };
        core.dirty[sec].store(true, Ordering::Release);
        core.any_pending.store(true, Ordering::Release);
        if core.crash_after == Some(seq) {
            core.crashed.store(true, Ordering::Release);
        }
    }

    /// Writes a commit frame closing the current transaction (the
    /// event being dispatched) — to every shard when sharded, so the
    /// global boundary is the minimum of the shards' last commit
    /// sequences. No-op when nothing is pending.
    pub fn commit(&self) {
        let Some(core) = &self.0 else { return };
        if core.crashed.load(Ordering::Acquire) {
            return;
        }
        if !core.any_pending.swap(false, Ordering::AcqRel) {
            return;
        }
        let mut ctl = core.ctl.lock();
        ctl.commit_seq += 1;
        let seq = ctl.commit_seq;
        let now = core.now_us.load(Ordering::Acquire);
        let mut body = [0u8; 16];
        body[..8].copy_from_slice(&now.to_be_bytes());
        body[8..].copy_from_slice(&seq.to_be_bytes());
        for m in &core.shards {
            let mut s = m.lock();
            let n = s.append_frame(frame::FRAME_COMMIT, &body);
            if let Some(o) = core.obs.get() {
                o.wal_bytes.add(n as u64);
            }
            if let Some((off, recs, starts_chain)) = s.pending_snap.take() {
                if starts_chain {
                    s.chain_start = off;
                    s.superseded = recs;
                }
            }
            s.committed = Watermark {
                bytes: s.log.len(),
                frames: s.frames,
                records: s.records,
            };
            s.mirror(
                &core.compaction,
                core.flush_every,
                core.compact_tx.is_some(),
                core.obs.get(),
            );
        }
        if let Some(tx) = &core.compact_tx {
            let _ = tx.lock().send(());
        }
    }

    /// Forces any committed-but-unflushed mirror bytes out (the tail
    /// of a group-commit interval). Called at clean run end so the
    /// mirror captures the final commits; no-op when disabled or
    /// crashed — a crashed journal's mirror must stay exactly what the
    /// "dead server" left behind.
    pub fn flush_sink(&self) {
        let Some(core) = &self.0 else { return };
        if core.crashed.load(Ordering::Acquire) {
            return;
        }
        for m in &core.shards {
            m.lock().flush_to_committed();
        }
    }

    /// True when a snapshot is due at the current event's sim-time.
    pub fn snapshot_due(&self) -> bool {
        let Some(core) = &self.0 else { return false };
        if core.crashed.load(Ordering::Acquire) || core.snapshot_every_us == 0 {
            return false;
        }
        core.now_us.load(Ordering::Acquire) >= core.ctl.lock().next_snapshot_us
    }

    /// Writes a snapshot and schedules the next one. Every
    /// [`DurabilityPlan::full_snapshot_every`]-th snapshot encodes all
    /// sections (full); the rest encode only sections dirtied since
    /// the last snapshot (incremental) — skipped entirely, returning
    /// `None`, when nothing is dirty. Also `None` when disabled or
    /// crashed; otherwise the total encoded snapshot size.
    pub fn write_snapshot(&self, sections: &Sections) -> Option<usize> {
        let core = self.0.as_ref()?;
        if core.crashed.load(Ordering::Acquire) {
            return None;
        }
        let t0 = std::time::Instant::now();
        let mut ctl = core.ctl.lock();
        if core.snapshot_every_us > 0 {
            let now = core.now_us.load(Ordering::Acquire);
            while ctl.next_snapshot_us <= now {
                ctl.next_snapshot_us += core.snapshot_every_us;
            }
        }
        let full = core.full_every <= 1 || ctl.snap_counter % core.full_every == 0;
        let covered: Vec<bool> = sections
            .entries
            .iter()
            .map(|(name, _)| {
                full || section::index_of(name)
                    .is_none_or(|i| core.dirty[i].load(Ordering::Acquire))
            })
            .collect();
        if !full && !covered.iter().any(|&c| c) {
            return None; // incremental with nothing dirty: skip
        }
        let written = if core.sharded {
            let mut total = 0usize;
            for ((name, bytes), &cov) in sections.entries.iter().zip(&covered) {
                if !cov {
                    continue;
                }
                let Some(idx) = section::index_of(name) else {
                    debug_assert!(false, "unknown section {name:?} in sharded snapshot");
                    continue;
                };
                let mut one = Sections::new();
                one.push(name, bytes.clone());
                let body = one.to_bytes();
                let mut s = core.shards[idx].lock();
                let off = s.log.len();
                // Per shard the snapshot always covers its whole (single)
                // section, so every sharded snapshot frame is full and
                // starts a new compaction chain.
                let n = s.append_frame(frame::FRAME_SNAPSHOT, &body);
                s.pending_snap = Some((off, s.records, true));
                if let Some(o) = core.obs.get() {
                    o.wal_bytes.add(n as u64);
                }
                total += body.len();
            }
            total
        } else {
            let subset = if full {
                sections.clone()
            } else {
                let mut sub = Sections::new();
                for ((name, bytes), &cov) in sections.entries.iter().zip(&covered) {
                    if cov {
                        sub.push(name, bytes.clone());
                    }
                }
                sub
            };
            let body = subset.to_bytes();
            let kind = if full {
                frame::FRAME_SNAPSHOT
            } else {
                frame::FRAME_SNAPSHOT_INC
            };
            let mut s = core.shards[0].lock();
            let off = s.log.len();
            let n = s.append_frame(kind, &body);
            // Only a full snapshot is self-contained; incrementals
            // extend the chain of the last full one.
            s.pending_snap = Some((off, s.records, full));
            if let Some(o) = core.obs.get() {
                o.wal_bytes.add(n as u64);
            }
            body.len()
        };
        for ((name, _), &cov) in sections.entries.iter().zip(&covered) {
            if cov {
                if let Some(i) = section::index_of(name) {
                    core.dirty[i].store(false, Ordering::Release);
                }
            }
        }
        ctl.snap_counter += 1;
        core.any_pending.store(true, Ordering::Release);
        if let Some(o) = core.obs.get() {
            o.snapshot_us.record(t0.elapsed().as_micros() as f64);
        }
        Some(written)
    }

    /// True once the crash plan has fired.
    pub fn crashed(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|c| c.crashed.load(Ordering::Acquire))
    }

    /// Frames appended so far across all shards.
    pub fn frames(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.shards.iter().map(|m| m.lock().frames).sum())
    }

    /// Change records appended so far.
    pub fn records(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.records.load(Ordering::Acquire))
    }

    /// Frames up to and including the last commit frame (summed
    /// across shards).
    pub fn committed_frames(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| {
            c.shards.iter().map(|m| m.lock().committed.frames).sum()
        })
    }

    /// Change records covered by the last commit frame.
    pub fn committed_records(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| {
            c.shards.iter().map(|m| m.lock().committed.records).sum()
        })
    }

    /// Sequence number of the last commit (0 = nothing committed).
    /// Unlike frame or byte counts this is invariant under compaction
    /// and sharding, which is why resume targets it.
    pub fn committed_seq(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.ctl.lock().commit_seq)
    }

    /// Total log length in bytes (including any uncommitted tail) —
    /// exactly `log_bytes().len()`.
    pub fn log_len(&self) -> usize {
        let Some(core) = &self.0 else { return 0 };
        if !core.sharded {
            return core.shards[0].lock().log.len();
        }
        // Bundle container: magic + u32 count + per shard
        // (u32+name, u32+log).
        frame::BUNDLE_MAGIC.len()
            + 4
            + core
                .shards
                .iter()
                .zip(section::NAMES)
                .map(|(m, n)| 8 + n.len() + m.lock().log.len())
                .sum::<usize>()
    }

    /// A copy of the log image, including any uncommitted tail — what
    /// a crashed server's disk would hold. Sharded journals return the
    /// bundle form ([`frame::bundle`]).
    pub fn log_bytes(&self) -> Vec<u8> {
        let Some(core) = &self.0 else {
            return Vec::new();
        };
        if !core.sharded {
            return core.shards[0].lock().log.to_vec();
        }
        let logs: Vec<Vec<u8>> = core.shards.iter().map(|m| m.lock().log.to_vec()).collect();
        let entries: Vec<(&str, &[u8])> = section::NAMES
            .iter()
            .zip(&logs)
            .map(|(n, l)| (*n, l.as_slice()))
            .collect();
        frame::bundle(&entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::recover;

    fn change(rid: u32) -> StateChange {
        StateChange::ResultCreated { rid, wu: 0 }
    }

    fn tracker_change(job: u32) -> StateChange {
        StateChange::MrReduceValidated { job }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vmr-durable-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disabled_journal_is_inert() {
        let j = Journal::disabled();
        j.advance_to(1);
        j.append(&change(0));
        j.commit();
        assert!(!j.enabled());
        assert!(!j.sharded());
        assert_eq!(j.records(), 0);
        assert_eq!(j.committed_seq(), 0);
        assert!(j.log_bytes().is_empty());
        assert!(!j.snapshot_due());
    }

    #[test]
    fn append_commit_watermarks() {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        j.advance_to(5);
        j.append(&change(0));
        j.append(&change(1));
        assert_eq!(j.records(), 2);
        assert_eq!(j.committed_records(), 0);
        assert_eq!(j.committed_seq(), 0);
        j.commit();
        assert_eq!(j.committed_records(), 2);
        assert_eq!(j.committed_frames(), 3);
        assert_eq!(j.committed_seq(), 1);
        // Idle commit writes nothing.
        let frames = j.frames();
        j.commit();
        assert_eq!(j.frames(), frames);
        assert_eq!(j.committed_seq(), 1);
    }

    #[test]
    fn crash_after_nth_record_stops_the_log() {
        let plan = DurabilityPlan::new(0.0).with_crash(CrashPlan::after_records(2));
        let j = Journal::new(&plan).unwrap();
        j.append(&change(0));
        assert!(!j.crashed());
        j.append(&change(1));
        assert!(j.crashed());
        let len = j.log_len();
        j.append(&change(2));
        j.commit();
        assert_eq!(j.log_len(), len);
        assert_eq!(j.records(), 2);
        assert_eq!(j.committed_records(), 0); // the tail never committed
    }

    #[test]
    fn crash_at_time_trips_on_the_first_late_boundary() {
        let plan = DurabilityPlan::new(0.0).with_crash(CrashPlan::at_us(100));
        let j = Journal::new(&plan).unwrap();
        j.advance_to(99);
        j.append(&change(0));
        j.commit();
        assert!(!j.crashed());
        j.advance_to(100);
        assert!(j.crashed());
        j.append(&change(1));
        assert_eq!(j.records(), 1);
    }

    #[test]
    fn snapshot_cadence_schedules_forward() {
        let j = Journal::new(&DurabilityPlan::new(10.0)).unwrap();
        j.advance_to(9_999_999);
        assert!(!j.snapshot_due());
        j.advance_to(10_000_000);
        assert!(j.snapshot_due());
        assert!(j.write_snapshot(&Sections::new()).is_some());
        assert!(!j.snapshot_due());
        j.advance_to(19_999_999);
        assert!(!j.snapshot_due());
        j.advance_to(20_000_000);
        assert!(j.snapshot_due());
    }

    #[test]
    fn sink_mirrors_committed_bytes_only() {
        let dir = temp_dir("sink");
        let path = dir.join("wal.bin");
        let plan = DurabilityPlan::new(0.0).with_sink(&path);
        let j = Journal::new(&plan).unwrap();
        j.advance_to(1);
        j.append(&change(0));
        assert_eq!(std::fs::read(&path).unwrap().len(), 0);
        j.commit();
        let mirrored = std::fs::read(&path).unwrap();
        assert_eq!(mirrored.len(), j.log_len());
        j.append(&change(1)); // uncommitted → not mirrored
        assert_eq!(std::fs::read(&path).unwrap().len(), mirrored.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn all_sections(tag: u8) -> Sections {
        let mut s = Sections::new();
        for name in section::NAMES {
            s.push(name, vec![tag]);
        }
        s
    }

    #[test]
    fn incremental_snapshots_cover_only_dirty_sections() {
        let plan = DurabilityPlan::new(0.0).with_incremental(3);
        let j = Journal::new(&plan).unwrap();
        j.advance_to(1);
        j.append(&change(0)); // dirties db
        j.commit();
        // Snapshot 0 of the cycle: full, despite only db being dirty.
        assert!(j.write_snapshot(&all_sections(1)).is_some());
        j.commit();
        let r = recover(&j.log_bytes()).unwrap();
        assert_eq!(r.sections.entries.len(), section::COUNT);

        // Snapshot 1: incremental; only the tracker is dirty now.
        j.advance_to(2);
        j.append(&tracker_change(0));
        j.commit();
        assert!(j.write_snapshot(&all_sections(2)).is_some());
        j.commit();
        let r = recover(&j.log_bytes()).unwrap();
        // Layered: tracker from the increment, the rest from the full.
        assert_eq!(r.sections.get("tracker"), Some(&[2u8][..]));
        assert_eq!(r.sections.get("db"), Some(&[1u8][..]));
        assert!(r.tail.is_empty());

        // Snapshot 2 with nothing dirty: skipped entirely.
        assert_eq!(j.write_snapshot(&all_sections(3)), None);
    }

    #[test]
    fn every_kth_snapshot_is_full() {
        let plan = DurabilityPlan::new(0.0).with_incremental(2);
        let j = Journal::new(&plan).unwrap();
        let mut sizes = Vec::new();
        for i in 0..4u32 {
            j.advance_to(i as u64 + 1);
            j.append(&change(i)); // dirty db each round
            j.commit();
            sizes.push(j.write_snapshot(&all_sections(i as u8)).unwrap());
            j.commit();
        }
        // Cycle of 2: full, inc, full, inc — incs (db only) are smaller.
        assert_eq!(sizes[0], sizes[2]);
        assert!(sizes[1] < sizes[0]);
        assert_eq!(sizes[1], sizes[3]);
        let r = recover(&j.log_bytes()).unwrap();
        assert_eq!(r.sections.get("db"), Some(&[3u8][..]));
        assert_eq!(r.sections.get("tracker"), Some(&[2u8][..]));
    }

    #[test]
    fn sharded_journal_routes_by_section_and_bundles() {
        let plan = DurabilityPlan::new(0.0).with_sharding();
        let j = Journal::new(&plan).unwrap();
        assert!(j.sharded());
        j.advance_to(7);
        j.append(&change(0));
        j.append(&tracker_change(1));
        j.commit();
        let img = j.log_bytes();
        assert_eq!(img.len(), j.log_len());
        assert!(frame::is_bundle(&img));
        let shards = frame::parse_bundle(&img).unwrap();
        assert_eq!(
            shards.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            section::NAMES
        );
        // Every shard got the commit frame; only db/tracker got a record.
        let counts: Vec<usize> = shards
            .iter()
            .map(|(_, log)| frame::scan(log).unwrap().frames.len())
            .collect();
        assert_eq!(counts, vec![2, 1, 1, 2, 1]);
        let r = recover(&img).unwrap();
        assert_eq!(r.committed_seq, 1);
        assert_eq!(r.tail, vec![change(0), tracker_change(1)]);
        assert_eq!(r.committed_at_us, 7);
    }

    #[test]
    fn compaction_shrinks_the_mirror_and_preserves_recovery() {
        let dir = temp_dir("compact");
        let path = dir.join("wal.bin");
        let plan = DurabilityPlan::new(0.0)
            .with_sink(&path)
            .with_compaction(CompactionPolicy::max_superseded_records(4));
        let j = Journal::new(&plan).unwrap();
        for i in 0..6u32 {
            j.advance_to(i as u64 + 1);
            j.append(&change(i));
            j.commit();
        }
        let uncompacted = std::fs::read(&path).unwrap();
        assert_eq!(uncompacted.len(), j.log_len());
        // A committed snapshot supersedes the 6 records → compaction.
        j.write_snapshot(&all_sections(9)).unwrap();
        j.commit();
        let compacted = std::fs::read(&path).unwrap();
        assert!(
            compacted.len() < j.log_len(),
            "mirror {} vs log {}",
            compacted.len(),
            j.log_len()
        );
        // Both images recover to the same state and boundary.
        let a = recover(&compacted).unwrap();
        let b = recover(&j.log_bytes()).unwrap();
        assert_eq!(a.sections, b.sections);
        assert_eq!(a.tail, b.tail);
        assert_eq!(a.committed_seq, b.committed_seq);
        assert_eq!(a.committed_at_us, b.committed_at_us);
        // Appends after compaction land in the rewritten mirror.
        j.advance_to(100);
        j.append(&change(99));
        j.commit();
        let grown = std::fs::read(&path).unwrap();
        assert!(grown.len() > compacted.len());
        let a2 = recover(&grown).unwrap();
        assert_eq!(a2.tail, vec![change(99)]);
        assert_eq!(
            a2.committed_seq,
            recover(&j.log_bytes()).unwrap().committed_seq
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_defers_mirror_flush_to_the_interval() {
        let dir = temp_dir("group");
        let path = dir.join("wal.bin");
        let plan = DurabilityPlan::new(0.0)
            .with_sink(&path)
            .with_group_commit(3);
        let j = Journal::new(&plan).unwrap();
        // Two committed events: still inside the group window → the
        // mirror holds nothing yet.
        for i in 0..2u32 {
            j.advance_to(i as u64 + 1);
            j.append(&change(i));
            j.commit();
        }
        assert_eq!(std::fs::read(&path).unwrap().len(), 0, "flush must defer");
        // Third commit closes the group: one write covers all three.
        j.advance_to(3);
        j.append(&change(2));
        j.commit();
        let flushed = std::fs::read(&path).unwrap();
        assert_eq!(flushed.len(), j.log_len());
        let r = recover(&flushed).unwrap();
        assert_eq!(r.committed_seq, 3);
        assert_eq!(r.tail.len(), 3);
        // A dangling commit inside the next window is recovered only
        // up to the last *flushed* group boundary...
        j.advance_to(4);
        j.append(&change(3));
        j.commit();
        let partial = recover(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(partial.committed_seq, 3);
        // ...until a clean shutdown forces the tail out.
        j.flush_sink();
        let r = recover(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(r.committed_seq, 4);
        assert_eq!(r.tail.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashed_journal_never_flushes_the_sink() {
        let dir = temp_dir("group-crash");
        let path = dir.join("wal.bin");
        let plan = DurabilityPlan::new(0.0)
            .with_sink(&path)
            .with_group_commit(10)
            .with_crash(CrashPlan::after_records(2));
        let j = Journal::new(&plan).unwrap();
        j.advance_to(1);
        j.append(&change(0));
        j.commit();
        j.append(&change(1)); // trips the crash
        assert!(j.crashed());
        j.flush_sink();
        // The deferred commit died with the "server": the mirror holds
        // exactly what a real crashed process would have left.
        assert_eq!(std::fs::read(&path).unwrap().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_compaction_thread_rewrites_the_mirror() {
        let dir = temp_dir("bg-compact");
        let path = dir.join("wal.bin");
        let plan = DurabilityPlan::new(0.0)
            .with_sink(&path)
            .with_compaction(CompactionPolicy::max_superseded_records(4))
            .with_background_compaction();
        let j = Journal::new(&plan).unwrap();
        for i in 0..6u32 {
            j.advance_to(i as u64 + 1);
            j.append(&change(i));
            j.commit();
        }
        j.write_snapshot(&all_sections(9)).unwrap();
        j.commit();
        // The rewrite happens off-thread; wait for it (bounded).
        let mut compacted = Vec::new();
        for _ in 0..500 {
            compacted = std::fs::read(&path).unwrap();
            if !compacted.is_empty() && compacted.len() < j.log_len() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(
            compacted.len() < j.log_len(),
            "background compaction never ran: mirror {} vs log {}",
            compacted.len(),
            j.log_len()
        );
        // The compacted mirror recovers to the same state and boundary.
        let a = recover(&compacted).unwrap();
        let b = recover(&j.log_bytes()).unwrap();
        assert_eq!(a.sections, b.sections);
        assert_eq!(a.tail, b.tail);
        assert_eq!(a.committed_seq, b.committed_seq);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_sink_paths_and_image() {
        let dir = temp_dir("shard-sink");
        let path = dir.join("wal.bin");
        let plan = DurabilityPlan::new(0.0).with_sharding().with_sink(&path);
        assert_eq!(plan.sink_paths().len(), section::COUNT);
        assert!(plan.sink_paths()[0].to_string_lossy().ends_with(".db"));
        let j = Journal::new(&plan).unwrap();
        j.advance_to(3);
        j.append(&change(0));
        j.append(&tracker_change(1));
        j.commit();
        let disk = sink_image(&plan).unwrap();
        assert_eq!(disk, j.log_bytes());
        let r = recover(&disk).unwrap();
        assert_eq!(r.committed_seq, 1);
        assert_eq!(r.tail.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
