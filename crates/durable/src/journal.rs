//! The write-ahead log handle.
//!
//! A [`Journal`] is a cheaply clonable handle to one shared log; the
//! `Engine` owns the master copy and hands clones to the project
//! database, credit ledger and assimilator so each mutator appends its
//! own [`StateChange`] at the point of mutation (write-ahead: the
//! record is framed into the log before the in-memory state changes).
//!
//! **Time.** The engine calls [`Journal::advance_to`] once per
//! dispatched event; every record appended while that event runs
//! shares its sim-time, so mutators never thread a timestamp just for
//! the log.
//!
//! **Transactions.** The simulation mutates state only while
//! dispatching one event, so the natural atomicity unit is the event:
//! the engine calls [`Journal::commit`] after each dispatched event
//! that appended records, which writes a `FRAME_COMMIT` boundary.
//! Recovery discards any records after the last commit frame — a
//! crash mid-event can never expose a half-applied transition.
//!
//! **Crash injection.** A [`CrashPlan`] deterministically kills the
//! log: after the Nth change record, or at the first event boundary
//! at-or-after a sim-time. Once crashed the journal accepts nothing
//! further, exactly as if the server process died — the in-memory
//! engine may keep running, but that state is what a real crash would
//! have lost. It composes with `vcore::FaultPlan` (client-side faults)
//! without interaction: one kills volunteers, the other the server.
//!
//! A disabled journal (the default) is a `None` and every call is a
//! single branch — experiments that do not opt in pay nothing.

use crate::frame;
use crate::record::StateChange;
use crate::snapshot::Sections;
use bytes::BytesMut;
use parking_lot::Mutex;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use vmr_obs::{Counter, Histo, Obs};

/// Deterministic crash point for the durability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CrashPlan {
    /// Kill the log immediately after the Nth change record (1-based).
    pub after_records: Option<u64>,
    /// Kill the log at the first event boundary at-or-after this
    /// sim-time (microseconds).
    pub at_us: Option<u64>,
}

impl CrashPlan {
    /// No crash.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Crash after the Nth change record.
    pub fn after_records(n: u64) -> Self {
        CrashPlan {
            after_records: Some(n),
            at_us: None,
        }
    }

    /// Crash at a sim-time (microseconds).
    pub fn at_us(t: u64) -> Self {
        CrashPlan {
            after_records: None,
            at_us: Some(t),
        }
    }

    /// True when no crash is scheduled.
    pub fn is_none(&self) -> bool {
        self.after_records.is_none() && self.at_us.is_none()
    }
}

/// Configuration for one journaled run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurabilityPlan {
    /// Master switch; a disabled plan builds a no-op [`Journal`].
    pub enabled: bool,
    /// Full-snapshot cadence in sim-seconds; `<= 0` disables snapshots
    /// (recovery then replays the whole log).
    pub snapshot_every_s: f64,
    /// Deterministic crash point, if any.
    pub crash: CrashPlan,
    /// Optional file mirror: committed bytes are appended (and
    /// flushed) to this path at every commit.
    pub sink: Option<PathBuf>,
}

impl DurabilityPlan {
    /// Durability off (the default).
    pub fn disabled() -> Self {
        DurabilityPlan::default()
    }

    /// Durability on with the given snapshot cadence (sim-seconds).
    pub fn new(snapshot_every_s: f64) -> Self {
        DurabilityPlan {
            enabled: true,
            snapshot_every_s,
            crash: CrashPlan::none(),
            sink: None,
        }
    }

    /// Adds a crash point.
    pub fn with_crash(mut self, crash: CrashPlan) -> Self {
        self.crash = crash;
        self
    }

    /// Adds a file mirror for committed bytes.
    pub fn with_sink(mut self, path: impl Into<PathBuf>) -> Self {
        self.sink = Some(path.into());
        self
    }
}

/// Pre-resolved metric handles (no-ops without the `record` feature).
struct DurObs {
    wal_records: Counter,
    wal_bytes: Counter,
    snapshot_us: Histo,
}

/// Log position of the last commit frame.
#[derive(Clone, Copy, Debug, Default)]
struct Watermark {
    bytes: usize,
    frames: u64,
    records: u64,
}

struct Inner {
    log: BytesMut,
    /// Frames appended (changes + snapshots + commits).
    frames: u64,
    /// Change records appended.
    records: u64,
    committed: Watermark,
    /// Change records appended since the last commit frame.
    pending: bool,
    /// Sim-time of the event being dispatched, microseconds.
    now_us: u64,
    /// Snapshot cadence, microseconds; 0 = never.
    snapshot_every_us: u64,
    next_snapshot_us: u64,
    crash: CrashPlan,
    crashed: bool,
    sink: Option<std::fs::File>,
    sink_pos: usize,
    obs: Option<DurObs>,
}

impl Inner {
    fn append_frame(&mut self, kind: u8, body: &[u8]) -> usize {
        let n = frame::append_frame(&mut self.log, kind, body);
        self.frames += 1;
        if let Some(o) = &self.obs {
            o.wal_bytes.add(n as u64);
        }
        n
    }
}

/// Handle to one shared write-ahead log; clones append to the same log.
#[derive(Clone, Default)]
pub struct Journal(Option<Arc<Mutex<Inner>>>);

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Journal(disabled)"),
            Some(inner) => {
                let g = inner.lock();
                write!(
                    f,
                    "Journal(frames={}, records={}, bytes={}, crashed={})",
                    g.frames,
                    g.records,
                    g.log.len(),
                    g.crashed
                )
            }
        }
    }
}

impl Journal {
    /// A no-op journal: every call is a single branch.
    pub fn disabled() -> Self {
        Journal(None)
    }

    /// Builds a journal from a plan. A disabled plan yields the no-op
    /// handle; an enabled one starts a fresh log (and file mirror).
    pub fn new(plan: &DurabilityPlan) -> std::io::Result<Self> {
        if !plan.enabled {
            return Ok(Journal(None));
        }
        let mut log = BytesMut::with_capacity(4096);
        frame::put_magic(&mut log);
        let every_us = if plan.snapshot_every_s > 0.0 {
            (plan.snapshot_every_s * 1e6) as u64
        } else {
            0
        };
        let sink = match &plan.sink {
            Some(p) => Some(std::fs::File::create(p)?),
            None => None,
        };
        Ok(Journal(Some(Arc::new(Mutex::new(Inner {
            log,
            frames: 0,
            records: 0,
            committed: Watermark::default(),
            pending: false,
            now_us: 0,
            snapshot_every_us: every_us,
            next_snapshot_us: every_us,
            crash: plan.crash,
            crashed: false,
            sink,
            sink_pos: 0,
            obs: None,
        })))))
    }

    /// Resolves the `dur.*` metric handles against `obs`.
    pub fn attach_obs(&self, obs: &Obs) {
        if let Some(inner) = &self.0 {
            inner.lock().obs = Some(DurObs {
                wal_records: obs.counter("dur.wal_records"),
                wal_bytes: obs.counter("dur.wal_bytes"),
                snapshot_us: obs.histogram("dur.snapshot_us"),
            });
        }
    }

    /// True when this handle appends to a live log.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Advances the journal's sim-clock to the event being dispatched
    /// and trips a time-based crash at that boundary.
    pub fn advance_to(&self, now_us: u64) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock();
        g.now_us = now_us;
        if !g.crashed && matches!(g.crash.at_us, Some(t) if now_us >= t) {
            g.crashed = true;
        }
    }

    /// Appends one change record at the current event's sim-time.
    /// No-op when disabled or crashed; flips to crashed per the
    /// [`CrashPlan`].
    pub fn append(&self, change: &StateChange) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock();
        if g.crashed {
            return;
        }
        let body = change.to_bytes();
        g.append_frame(frame::FRAME_CHANGE, &body);
        g.records += 1;
        g.pending = true;
        if let Some(o) = &g.obs {
            o.wal_records.inc();
        }
        if g.crash.after_records == Some(g.records) {
            g.crashed = true;
        }
    }

    /// Writes a commit frame closing the current transaction (the
    /// event being dispatched). No-op when nothing is pending.
    pub fn commit(&self) {
        let Some(inner) = &self.0 else { return };
        let mut g = inner.lock();
        if g.crashed || !g.pending {
            return;
        }
        let t = g.now_us;
        g.append_frame(frame::FRAME_COMMIT, &t.to_be_bytes());
        g.pending = false;
        g.committed = Watermark {
            bytes: g.log.len(),
            frames: g.frames,
            records: g.records,
        };
        let end = g.committed.bytes;
        let start = g.sink_pos;
        if g.sink.is_some() && end > start {
            let chunk = g.log[start..end].to_vec();
            let sink = g.sink.as_mut().unwrap();
            // Mirror failure is non-fatal: the in-memory log stays
            // authoritative for this run; the mirror is best-effort.
            if sink.write_all(&chunk).and_then(|_| sink.flush()).is_ok() {
                g.sink_pos = end;
            }
        }
    }

    /// True when a snapshot is due at the current event's sim-time.
    pub fn snapshot_due(&self) -> bool {
        let Some(inner) = &self.0 else { return false };
        let g = inner.lock();
        !g.crashed && g.snapshot_every_us > 0 && g.now_us >= g.next_snapshot_us
    }

    /// Writes a full-state snapshot frame and schedules the next one.
    /// Returns the encoded snapshot size, or `None` when disabled or
    /// crashed.
    pub fn write_snapshot(&self, sections: &Sections) -> Option<usize> {
        let Some(inner) = &self.0 else { return None };
        let mut g = inner.lock();
        if g.crashed {
            return None;
        }
        let t0 = std::time::Instant::now();
        let body = sections.to_bytes();
        g.append_frame(frame::FRAME_SNAPSHOT, &body);
        g.pending = true; // the closing commit covers the snapshot too
        if g.snapshot_every_us > 0 {
            while g.next_snapshot_us <= g.now_us {
                g.next_snapshot_us += g.snapshot_every_us;
            }
        }
        if let Some(o) = &g.obs {
            o.snapshot_us.record(t0.elapsed().as_micros() as f64);
        }
        Some(body.len())
    }

    /// True once the crash plan has fired.
    pub fn crashed(&self) -> bool {
        self.0.as_ref().is_some_and(|i| i.lock().crashed)
    }

    /// Frames appended so far (changes + snapshots + commits).
    pub fn frames(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.lock().frames)
    }

    /// Change records appended so far.
    pub fn records(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.lock().records)
    }

    /// Frames up to and including the last commit frame.
    pub fn committed_frames(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.lock().committed.frames)
    }

    /// Change records covered by the last commit frame.
    pub fn committed_records(&self) -> u64 {
        self.0.as_ref().map_or(0, |i| i.lock().committed.records)
    }

    /// Total log length in bytes (including any uncommitted tail).
    pub fn log_len(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.lock().log.len())
    }

    /// A copy of the log image, including any uncommitted tail — what
    /// a crashed server's disk would hold.
    pub fn log_bytes(&self) -> Vec<u8> {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |i| i.lock().log.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn change(rid: u32) -> StateChange {
        StateChange::ResultCreated { rid, wu: 0 }
    }

    #[test]
    fn disabled_journal_is_inert() {
        let j = Journal::disabled();
        j.advance_to(1);
        j.append(&change(0));
        j.commit();
        assert!(!j.enabled());
        assert_eq!(j.records(), 0);
        assert!(j.log_bytes().is_empty());
        assert!(!j.snapshot_due());
    }

    #[test]
    fn append_commit_watermarks() {
        let j = Journal::new(&DurabilityPlan::new(0.0)).unwrap();
        j.advance_to(5);
        j.append(&change(0));
        j.append(&change(1));
        assert_eq!(j.records(), 2);
        assert_eq!(j.committed_records(), 0);
        j.commit();
        assert_eq!(j.committed_records(), 2);
        assert_eq!(j.committed_frames(), 3);
        // Idle commit writes nothing.
        let frames = j.frames();
        j.commit();
        assert_eq!(j.frames(), frames);
    }

    #[test]
    fn crash_after_nth_record_stops_the_log() {
        let plan = DurabilityPlan::new(0.0).with_crash(CrashPlan::after_records(2));
        let j = Journal::new(&plan).unwrap();
        j.append(&change(0));
        assert!(!j.crashed());
        j.append(&change(1));
        assert!(j.crashed());
        let len = j.log_len();
        j.append(&change(2));
        j.commit();
        assert_eq!(j.log_len(), len);
        assert_eq!(j.records(), 2);
        assert_eq!(j.committed_records(), 0); // the tail never committed
    }

    #[test]
    fn crash_at_time_trips_on_the_first_late_boundary() {
        let plan = DurabilityPlan::new(0.0).with_crash(CrashPlan::at_us(100));
        let j = Journal::new(&plan).unwrap();
        j.advance_to(99);
        j.append(&change(0));
        j.commit();
        assert!(!j.crashed());
        j.advance_to(100);
        assert!(j.crashed());
        j.append(&change(1));
        assert_eq!(j.records(), 1);
    }

    #[test]
    fn snapshot_cadence_schedules_forward() {
        let j = Journal::new(&DurabilityPlan::new(10.0)).unwrap();
        j.advance_to(9_999_999);
        assert!(!j.snapshot_due());
        j.advance_to(10_000_000);
        assert!(j.snapshot_due());
        assert!(j.write_snapshot(&Sections::new()).is_some());
        assert!(!j.snapshot_due());
        j.advance_to(19_999_999);
        assert!(!j.snapshot_due());
        j.advance_to(20_000_000);
        assert!(j.snapshot_due());
    }

    #[test]
    fn sink_mirrors_committed_bytes_only() {
        let dir = std::env::temp_dir().join(format!("vmr-durable-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.bin");
        let plan = DurabilityPlan::new(0.0).with_sink(&path);
        let j = Journal::new(&plan).unwrap();
        j.advance_to(1);
        j.append(&change(0));
        assert_eq!(std::fs::read(&path).unwrap().len(), 0);
        j.commit();
        let mirrored = std::fs::read(&path).unwrap();
        assert_eq!(mirrored.len(), j.log_len());
        j.append(&change(1)); // uncommitted → not mirrored
        assert_eq!(std::fs::read(&path).unwrap().len(), mirrored.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
