//! Full-state snapshots: an ordered list of named, opaque sections.
//!
//! Each owning crate encodes its own state (`vcore` the project
//! database / credit ledger / assimilator, `core` the JobTracker) into
//! one section; `vmr-durable` only frames them. Section order is
//! chosen by the writer and preserved, so an encoded snapshot is
//! canonical: two equal server states produce byte-identical section
//! dumps, which is what the recovery audit compares.

use crate::wire::{Dec, Enc, WireError};

/// An ordered list of `(name, bytes)` state sections.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Sections {
    /// The sections, in writer-chosen (and preserved) order.
    pub entries: Vec<(String, Vec<u8>)>,
}

impl Sections {
    /// An empty snapshot.
    pub fn new() -> Self {
        Sections::default()
    }

    /// Appends a named section.
    pub fn push(&mut self, name: &str, bytes: Vec<u8>) {
        self.entries.push((name.to_string(), bytes));
    }

    /// The bytes of section `name`, if present.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Append the wire form to `e`.
    pub fn encode(&self, e: &mut Enc) {
        e.u32(self.entries.len() as u32);
        for (name, bytes) in &self.entries {
            e.str(name);
            e.bytes(bytes);
        }
    }

    /// The wire form as a standalone byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e =
            Enc::with_capacity(64 + self.entries.iter().map(|(_, b)| b.len()).sum::<usize>());
        self.encode(&mut e);
        e.into_vec()
    }

    /// Decode from the cursor.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, WireError> {
        let n = d.u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let name = d.str()?;
            let bytes = d.bytes()?;
            entries.push((name, bytes));
        }
        Ok(Sections { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_order_and_bytes() {
        let mut s = Sections::new();
        s.push("db", vec![1, 2, 3]);
        s.push("credit", vec![]);
        s.push("tracker", vec![9]);
        let v = s.to_bytes();
        let mut d = Dec::new(&v);
        let back = Sections::decode(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, s);
        assert_eq!(back.get("credit"), Some(&[][..]));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn equal_states_encode_identically() {
        let mut a = Sections::new();
        a.push("db", vec![5, 6]);
        let mut b = Sections::new();
        b.push("db", vec![5, 6]);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
