//! Property tests for the durability layer's newest moving parts:
//! mirror compaction, incremental snapshots and the sharded WAL merge.
//!
//! * **Differential compaction**: for any scripted journal run,
//!   `compact(image)` recovers to exactly the same state as the
//!   uncompacted image — same sections, same replay tail, same commit
//!   boundary — and compaction is idempotent.
//! * **Shard-merge equivalence**: the same event stream driven through
//!   a single-log journal and a sharded journal recovers identically
//!   at *every* commit boundary, not just the final one.

use proptest::prelude::*;
use vmr_durable::{
    compact, recover, section, DurabilityPlan, Journal, Recovered, Sections, StateChange,
};

/// One scripted journal operation.
#[derive(Clone, Debug)]
enum Op {
    /// Append a state change (routes to a section-owned shard).
    Change(StateChange),
    /// Commit the open transaction.
    Commit,
    /// Write a snapshot (full or incremental per the plan) + commit.
    Snapshot,
}

/// Maps a raw `(kind, a, b)` triple to an op. Changes cover all four
/// state sections so sharded runs exercise every shard; recovery does
/// not re-apply them to live state, so ids need not be replay-valid.
fn op(kind: u8, a: u32, b: u32) -> Op {
    match kind {
        0 => Op::Change(StateChange::ResultCreated { rid: a, wu: b }),
        1 => Op::Change(StateChange::ResultSent {
            rid: a,
            client: b,
            at_us: u64::from(a) * 7,
            deadline_us: 1_000_000,
        }),
        2 => Op::Change(StateChange::WuValidated {
            wu: a,
            canonical: u64::from(b) << 3,
            at_us: u64::from(a),
        }),
        3 => Op::Change(StateChange::CreditGranted {
            agreeing: vec![a, b],
            dissenting: vec![],
            flops_bits: f64::from(a).to_bits(),
        }),
        4 => Op::Change(StateChange::CreditError { client: a }),
        5 => Op::Change(StateChange::Assimilated {
            wu: a,
            holders: vec![b],
            at_us: u64::from(a) * 3,
        }),
        6 => Op::Change(StateChange::MrReduceValidated { job: a }),
        7 => Op::Change(StateChange::MrStamp {
            job: a,
            which: (b % 5) as u8,
            at_us: u64::from(b),
        }),
        8 => Op::Commit,
        _ => Op::Snapshot,
    }
}

/// Drives one journal through the script. Section payloads are a
/// deterministic function of the step index, so two journals driven
/// with the same script snapshot identical content.
fn drive(j: &Journal, ops: &[Op]) {
    for (step, o) in ops.iter().enumerate() {
        j.advance_to(step as u64 * 11);
        match o {
            Op::Change(c) => j.append(c),
            Op::Commit => j.commit(),
            Op::Snapshot => {
                let mut s = Sections::new();
                for (i, name) in section::NAMES.iter().enumerate() {
                    s.push(name, vec![step as u8, i as u8, 0xA5]);
                }
                j.write_snapshot(&s);
                j.commit();
            }
        }
    }
}

/// Sorted sections, replay tail, commit seq, commit sim-time, seeded.
type Digest = (Vec<(String, Vec<u8>)>, Vec<StateChange>, u64, u64, bool);

/// The recovery-observable state of an image that is invariant under
/// compaction: sections, replay tail and the commit boundary identity.
/// (`committed_records`/`committed_frames`/`committed_bytes` are *not*
/// included — they count what the image physically holds, which
/// compaction legitimately shrinks.)
fn digest(r: &Recovered) -> Digest {
    let mut sections: Vec<(String, Vec<u8>)> = r
        .sections
        .entries
        .iter()
        .map(|(n, b)| (n.clone(), b.clone()))
        .collect();
    // Single-log snapshots store sections in writer order, bundles in
    // canonical order; compare order-insensitively.
    sections.sort();
    (
        sections,
        r.tail.clone(),
        r.committed_seq,
        r.committed_at_us,
        r.from_snapshot,
    )
}

proptest! {
    /// A compacted image recovers byte-identically to the original —
    /// for single logs and sharded bundles, full and incremental
    /// snapshot plans alike — and `compact` is a fixpoint.
    #[test]
    fn compacted_image_recovers_identically(
        raw in proptest::collection::vec((0u8..10, 0u32..40, 0u32..40), 1..80),
        full_every in 0u32..4,
        sharded in proptest::prelude::any::<bool>(),
    ) {
        let ops: Vec<Op> = raw.into_iter().map(|(k, a, b)| op(k, a, b)).collect();
        let mut plan = DurabilityPlan::new(0.0).with_incremental(full_every);
        if sharded {
            plan = plan.with_sharding();
        }
        let j = Journal::new(&plan).unwrap();
        drive(&j, &ops);
        let image = j.log_bytes();

        let compacted = compact(&image).unwrap();
        prop_assert!(compacted.len() <= image.len());
        let a = recover(&image).unwrap();
        let b = recover(&compacted).unwrap();
        prop_assert_eq!(digest(&a), digest(&b));
        // Idempotence: compacting a compacted image changes nothing.
        prop_assert_eq!(&compact(&compacted).unwrap(), &compacted);
    }

    /// Sharded recovery equals single-log recovery at every commit
    /// boundary: same sections, same merged tail in global record
    /// order, same commit sequence and sim-time.
    #[test]
    fn sharded_recovery_matches_single_log_at_every_boundary(
        raw in proptest::collection::vec((0u8..10, 0u32..40, 0u32..40), 1..60),
        full_every in 0u32..4,
    ) {
        let ops: Vec<Op> = raw.into_iter().map(|(k, a, b)| op(k, a, b)).collect();
        let single = Journal::new(
            &DurabilityPlan::new(0.0).with_incremental(full_every),
        ).unwrap();
        let sharded = Journal::new(
            &DurabilityPlan::new(0.0).with_incremental(full_every).with_sharding(),
        ).unwrap();

        // Drive both journals in lockstep, capturing each image at
        // every commit boundary.
        let mut boundaries: Vec<(Vec<u8>, Vec<u8>)> = vec![];
        for (step, o) in ops.iter().enumerate() {
            for j in [&single, &sharded] {
                j.advance_to(step as u64 * 11);
                match o {
                    Op::Change(c) => j.append(c),
                    Op::Commit => j.commit(),
                    Op::Snapshot => {
                        let mut s = Sections::new();
                        for (i, name) in section::NAMES.iter().enumerate() {
                            s.push(name, vec![step as u8, i as u8, 0xA5]);
                        }
                        j.write_snapshot(&s);
                        j.commit();
                    }
                }
            }
            if !matches!(o, Op::Change(_)) {
                boundaries.push((single.log_bytes(), sharded.log_bytes()));
            }
        }

        for (i, (s_img, b_img)) in boundaries.iter().enumerate() {
            let a = recover(s_img).unwrap();
            let b = recover(b_img).unwrap();
            prop_assert_eq!(digest(&a), digest(&b), "boundary {}", i);
            // Neither image is compacted, so the physical record count
            // must agree too.
            prop_assert_eq!(
                a.committed_records, b.committed_records,
                "record count at boundary {}", i
            );
        }
    }
}
