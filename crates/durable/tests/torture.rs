//! WAL torture harness: a deterministic, seeded corruption fuzzer over
//! journals recorded from real (small) Table I style experiment runs.
//!
//! Every assault asserts the same contract: recovery either succeeds
//! at a valid commit boundary (`committed_seq` no later than the
//! intact image's) or returns a typed [`RecoverError`] — it must
//! *never* panic, and the recovered state must feed cleanly into the
//! full server-state materializer (`RecoveredServerState::from_log`).
//!
//! Assault classes:
//! 1. truncation at every byte offset (a strided sample under
//!    `TORTURE_SMOKE=1`),
//! 2. single-bit flips in headers, payloads and CRCs,
//! 3. duplicated / reordered / cross-planted shard tail frames in
//!    sharded bundles.
//!
//! The fuzzer RNG is a fixed-seed xorshift, so a failure reproduces
//! exactly by rerunning the test.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use vmr_core::config::MrMode;
use vmr_core::experiment::{run_experiment, ExperimentConfig};
use vmr_core::recover::RecoveredServerState;
use vmr_durable::frame::{bundle, is_bundle, parse_bundle};
use vmr_durable::{compact, frame_ends, recover, DurabilityPlan};

/// xorshift64*: deterministic, dependency-free fuzzing RNG.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// `TORTURE_SMOKE=1` bounds the budget for CI smoke runs.
fn smoke() -> bool {
    std::env::var_os("TORTURE_SMOKE").is_some()
}

/// Records one WAL image from a quick experiment run under `plan`.
fn quick_wal(plan: DurabilityPlan) -> Vec<u8> {
    let mut cfg = ExperimentConfig::table1(4, 2, 1, MrMode::InterClient);
    cfg.input_bytes = 4 << 20; // tiny job: a rich log, a quick run
    cfg.durable = plan;
    let out = run_experiment(&cfg).expect("valid experiment config");
    assert!(out.all_done && !out.crashed, "seed run must finish");
    out.wal.expect("durability was enabled")
}

/// The corpus: real journals across every plan shape, plus their
/// compacted mirrors. Recorded once per test binary.
fn corpus() -> &'static Vec<(&'static str, Vec<u8>)> {
    static CORPUS: OnceLock<Vec<(&'static str, Vec<u8>)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let single = quick_wal(DurabilityPlan::new(45.0));
        let inc = quick_wal(DurabilityPlan::new(45.0).with_incremental(3));
        let sharded = quick_wal(
            DurabilityPlan::new(45.0)
                .with_incremental(3)
                .with_sharding(),
        );
        let inc_compacted = compact(&inc).expect("intact image compacts");
        let sharded_compacted = compact(&sharded).expect("intact bundle compacts");
        vec![
            ("single", single),
            ("incremental", inc),
            ("incremental-compacted", inc_compacted),
            ("sharded", sharded),
            ("sharded-compacted", sharded_compacted),
        ]
    })
}

/// One assault verdict: recovery must not panic; on success the
/// boundary must be one the intact image had already committed; on
/// failure the error must be typed (and therefore displayable).
fn assert_survives(name: &str, image: &[u8], baseline_seq: u64, ctx: &str) {
    let recovered = catch_unwind(AssertUnwindSafe(|| recover(image)))
        .unwrap_or_else(|_| panic!("{name}: recover panicked ({ctx})"));
    match recovered {
        Ok(r) => assert!(
            r.committed_seq <= baseline_seq,
            "{name}: corrupt image advanced the boundary past the \
             intact one ({} > {baseline_seq}) ({ctx})",
            r.committed_seq
        ),
        Err(e) => {
            // Typed and displayable — corruption is a result, never
            // an abort.
            let _ = format!("{e}");
        }
    }
    // The full materializer (snapshot decode + tail replay through the
    // real appliers) must hold the same never-panic contract.
    let applied = catch_unwind(AssertUnwindSafe(|| RecoveredServerState::from_log(image)));
    assert!(applied.is_ok(), "{name}: from_log panicked ({ctx})");
}

#[test]
fn truncation_at_every_byte_offset() {
    for (name, image) in corpus() {
        let baseline = recover(image).expect("intact image recovers");
        assert!(baseline.committed_seq > 0, "{name}: trivial corpus image");
        // Full mode cuts at every byte; smoke strides (coprime with
        // typical frame sizes so cuts land on every alignment class).
        let stride = if smoke() { 37 } else { 1 };
        let mut cut = 0;
        while cut <= image.len() {
            assert_survives(name, &image[..cut], baseline.committed_seq, "truncation");
            cut += stride;
        }
        // The boundary cuts (empty, magic-only, full) always run.
        for cut in [0, 8.min(image.len()), image.len()] {
            assert_survives(name, &image[..cut], baseline.committed_seq, "truncation");
        }
    }
}

#[test]
fn single_bit_flips_never_panic() {
    let mut rng = XorShift::new(0x7031_7031);
    for (name, image) in corpus() {
        let baseline = recover(image).expect("intact image recovers");
        let flips = if smoke() { 200 } else { 2_000 };
        let mut mutated = image.clone();
        for _ in 0..flips {
            let byte = rng.below(mutated.len());
            let bit = 1u8 << rng.below(8);
            mutated[byte] ^= bit;
            assert_survives(
                name,
                &mutated,
                baseline.committed_seq,
                &format!("bit flip at byte {byte}"),
            );
            mutated[byte] ^= bit; // restore: flips are independent
        }
        // Pair of simultaneous flips: header + payload interplay.
        for _ in 0..flips / 4 {
            let (b1, b2) = (rng.below(mutated.len()), rng.below(mutated.len()));
            let (m1, m2) = (1u8 << rng.below(8), 1u8 << rng.below(8));
            mutated[b1] ^= m1;
            mutated[b2] ^= m2;
            assert_survives(name, &mutated, baseline.committed_seq, "double flip");
            mutated[b2] ^= m2;
            mutated[b1] ^= m1;
        }
        assert_eq!(&mutated, image, "restore discipline broke");
    }
}

/// Splits one shard log into its magic prefix and per-frame byte
/// ranges. Shard logs inside a bundle are standalone WAL images, so
/// `frame_ends` applies directly.
fn shard_frames(log: &[u8]) -> Vec<(usize, usize)> {
    let ends = frame_ends(log).expect("intact shard scans");
    let mut frames = vec![];
    let mut start = 8; // past magic
    for end in ends {
        frames.push((start, end));
        start = end;
    }
    frames
}

#[test]
fn duplicated_and_reordered_shard_tails() {
    let mut rng = XorShift::new(0x5EED_CAFE);
    for (name, image) in corpus() {
        if !is_bundle(image) {
            continue;
        }
        let baseline = recover(image).expect("intact bundle recovers");
        let shards = parse_bundle(image).expect("intact bundle parses");
        let cases = if smoke() { 60 } else { 600 };
        for case in 0..cases {
            let mut mutated: Vec<(String, Vec<u8>)> = shards.clone();
            let si = rng.below(mutated.len());
            let frames = shard_frames(&mutated[si].1);
            if frames.is_empty() {
                continue;
            }
            match case % 3 {
                0 => {
                    // Duplicate a frame onto its shard's tail.
                    let (s, e) = frames[rng.below(frames.len())];
                    let dup = mutated[si].1[s..e].to_vec();
                    mutated[si].1.extend_from_slice(&dup);
                }
                1 => {
                    // Reorder: swap two frames within one shard.
                    let (a, b) = (rng.below(frames.len()), rng.below(frames.len()));
                    let (fa, fb) = (frames[a.min(b)], frames[a.max(b)]);
                    if fa == fb {
                        continue;
                    }
                    let log = &mutated[si].1;
                    let mut out = log[..fa.0].to_vec();
                    out.extend_from_slice(&log[fb.0..fb.1]);
                    out.extend_from_slice(&log[fa.1..fb.0]);
                    out.extend_from_slice(&log[fa.0..fa.1]);
                    out.extend_from_slice(&log[fb.1..]);
                    mutated[si].1 = out;
                }
                _ => {
                    // Cross-plant: append one shard's frame to another
                    // (wrong-section records must be typed, not applied).
                    let ti = rng.below(mutated.len());
                    let (s, e) = frames[rng.below(frames.len())];
                    let moved = mutated[si].1[s..e].to_vec();
                    mutated[ti].1.extend_from_slice(&moved);
                }
            }
            let entries: Vec<(&str, &[u8])> = mutated
                .iter()
                .map(|(n, b)| (n.as_str(), b.as_slice()))
                .collect();
            let rebundled = bundle(&entries);
            assert_survives(name, &rebundled, baseline.committed_seq, "shard tamper");
        }
    }
}

/// Sanity anchor for the whole harness: the intact corpus images all
/// recover to their own full boundary and materialize cleanly.
#[test]
fn intact_corpus_recovers_to_its_own_boundary() {
    for (name, image) in corpus() {
        let r = recover(image).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(r.committed_seq > 0, "{name}");
        let state = RecoveredServerState::from_log(image).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(state.committed_seq, r.committed_seq, "{name}");
        assert_eq!(state.tracker.jobs.len(), 1, "{name}");
    }
}
