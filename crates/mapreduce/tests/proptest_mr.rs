//! Property tests: the distributed pipeline must equal the sequential
//! oracle for arbitrary inputs and job geometries, and the supporting
//! primitives must hold their invariants.

use proptest::prelude::*;
use vmr_mapreduce::apps::{DistGrep, UrlVisits, WordCount};
use vmr_mapreduce::{
    run_local_parallel, run_map_task, run_reduce_task, run_sequential, HashPartitioner, JobSpec,
    Sha256,
};

/// Arbitrary whitespace-y text.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-d]{1,6}", 0..300).prop_map(|words| words.join(" "))
}

proptest! {
    /// Word count through the partitioned task pipeline equals the
    /// oracle for any text and any geometry.
    #[test]
    fn wordcount_pipeline_equals_oracle(
        text in text_strategy(),
        n_maps in 1usize..8,
        n_reduces in 1usize..6,
        threads in 1usize..5,
    ) {
        let data = text.as_bytes().to_vec();
        let job = JobSpec::new("wc", n_maps, n_reduces);
        let par = run_local_parallel(&WordCount, &data, &job, threads);
        let seq = run_sequential(&WordCount, &[&data[..]]);
        prop_assert_eq!(par, seq);
    }

    /// Total count conservation: the sum of all word counts equals the
    /// number of tokens, under any geometry.
    #[test]
    fn wordcount_conserves_tokens(
        text in text_strategy(),
        n_maps in 1usize..6,
        n_reduces in 1usize..6,
    ) {
        let data = text.as_bytes().to_vec();
        let job = JobSpec::new("wc", n_maps, n_reduces);
        let out = run_local_parallel(&WordCount, &data, &job, 2);
        let total: u64 = out.values().sum();
        let tokens = vmr_mapreduce::record::tokens(&data).count() as u64;
        prop_assert_eq!(total, tokens);
    }

    /// Every intermediate pair lands in exactly the partition its key
    /// hashes to — the §III.C invariant that lets each reducer fetch
    /// only its own slice from every mapper.
    #[test]
    fn partitioning_is_total_and_consistent(
        text in text_strategy(),
        n_reduces in 1usize..8,
    ) {
        let part = HashPartitioner::new(n_reduces);
        let mo = run_map_task(&WordCount, text.as_bytes(), &part, |k| k.as_bytes().to_vec());
        prop_assert_eq!(mo.partitions.len(), n_reduces);
        for (p, pairs) in mo.partitions.iter().enumerate() {
            for (k, _) in pairs {
                prop_assert_eq!(part.partition_str(k), p);
            }
        }
    }

    /// Grep: reduce output counts equal raw match counts.
    #[test]
    fn grep_counts_match(
        lines in proptest::collection::vec("[a-c x]{0,12}", 0..60),
        pattern in "[a-c]",
    ) {
        let data = lines.join("\n").into_bytes();
        let app = DistGrep::new(pattern.clone());
        let part = HashPartitioner::new(3);
        let mo = run_map_task(&app, &data, &part, |k| k.as_bytes().to_vec());
        let inputs: Vec<_> = (0..3).map(|p| mo.partitions[p].clone()).collect();
        let reduced = run_reduce_task(&app, inputs);
        let expected: u64 = lines
            .iter()
            .filter(|l| !l.is_empty() && l.contains(&pattern))
            .count() as u64;
        let got: u64 = reduced.values().sum();
        prop_assert_eq!(got, expected);
    }

    /// UrlVisits conserves total bytes through the full pipeline.
    #[test]
    fn urlvisits_conserves_bytes(
        entries in proptest::collection::vec(("[a-f]{1,5}", 1u64..10_000), 0..80),
        n_maps in 1usize..5,
        n_reduces in 1usize..5,
    ) {
        let data: String = entries
            .iter()
            .map(|(u, b)| format!("/{u} {b}\n"))
            .collect();
        let job = JobSpec::new("uv", n_maps, n_reduces);
        let out = run_local_parallel(&UrlVisits, data.as_bytes(), &job, 2);
        let expected: u64 = entries.iter().map(|(_, b)| b).sum();
        let got: u64 = out.values().sum();
        prop_assert_eq!(got, expected);
    }

    /// SHA-256 streaming at any split equals one-shot.
    #[test]
    fn sha256_split_invariance(
        data in proptest::collection::vec(any::<u8>(), 0..400),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((data.len() as f64) * split_frac) as usize;
        let mut a = Sha256::new();
        a.update(&data);
        let mut b = Sha256::new();
        b.update(&data[..split]);
        b.update(&data[split..]);
        prop_assert_eq!(a.finalize(), b.finalize());
    }

    /// split_text tiles any input exactly.
    #[test]
    fn split_tiles_input(
        data in proptest::collection::vec(any::<u8>(), 0..2_000),
        n in 1usize..12,
    ) {
        let ranges = vmr_mapreduce::record::split_text(&data, n);
        prop_assert_eq!(ranges.len(), n);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, data.len());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
    }

    /// Wire codec: encode → decode is the identity on map outputs.
    #[test]
    fn codec_roundtrip(text in text_strategy()) {
        let part = HashPartitioner::new(2);
        let mo = run_map_task(&WordCount, text.as_bytes(), &part, |k| k.as_bytes().to_vec());
        for p in 0..2 {
            let enc = mo.encode_partition(&WordCount, p);
            let dec = vmr_mapreduce::decode_partition(&WordCount, &enc);
            prop_assert_eq!(&dec, &mo.partitions[p]);
        }
    }
}
