//! Bloom filters, and set-membership MapReduce.
//!
//! §V (related work) highlights ParaMEDIC's trick: "using the reduce
//! phase as a bloom filter enabled large scale. Results came back as 0
//! or 1, and the successful searches would then be re-run locally. This
//! turned out to be faster than transferring the full result back to
//! the master." For a volunteer cloud this matters doubly: reduce
//! outputs (and hence uploads through volunteers' thin uplinks) shrink
//! from result sets to fixed-size bit arrays.

use crate::hashes::fnv1a;

/// A classic Bloom filter over byte-string items.
#[derive(Clone, Debug, PartialEq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: usize,
    n_hashes: u32,
    n_items: u64,
}

impl BloomFilter {
    /// A filter with `n_bits` bits (rounded up to a multiple of 64) and
    /// `n_hashes` probe positions per item.
    pub fn new(n_bits: usize, n_hashes: u32) -> Self {
        assert!(n_bits > 0 && n_hashes > 0);
        let words = n_bits.div_ceil(64);
        BloomFilter {
            bits: vec![0; words],
            n_bits: words * 64,
            n_hashes,
            n_items: 0,
        }
    }

    /// Sizes a filter for `n_items` at a target false-positive rate
    /// (standard optimum: m = −n·ln p ∕ ln²2, k = m/n·ln 2).
    pub fn with_capacity(n_items: usize, fp_rate: f64) -> Self {
        let n = n_items.max(1) as f64;
        let p = fp_rate.clamp(1e-9, 0.5);
        let m = (-n * p.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2)).ceil();
        let k = ((m / n) * std::f64::consts::LN_2).round().max(1.0);
        BloomFilter::new(m as usize, k as u32)
    }

    /// Double hashing: position_i = h1 + i·h2 (Kirsch–Mitzenmacher).
    fn positions(&self, item: &[u8]) -> impl Iterator<Item = usize> + '_ {
        let h1 = fnv1a(item);
        // Independent second hash: FNV over the reversed length-prefixed
        // item (cheap and adequate for double hashing).
        let mut pre = item.to_vec();
        pre.push(0x9e);
        pre.reverse();
        let h2 = fnv1a(&pre) | 1; // odd → full period mod power of two
        let n_bits = self.n_bits as u64;
        (0..self.n_hashes as u64)
            .map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % n_bits) as usize)
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: &[u8]) {
        let positions: Vec<usize> = self.positions(item).collect();
        for p in positions {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.n_items += 1;
    }

    /// Membership test: false negatives never, false positives rarely.
    pub fn contains(&self, item: &[u8]) -> bool {
        self.positions(item)
            .all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// Unions another filter into this one (the reduce operation).
    ///
    /// # Panics
    /// If geometries differ.
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.n_bits, other.n_bits, "filter geometry mismatch");
        assert_eq!(self.n_hashes, other.n_hashes, "filter geometry mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
        self.n_items += other.n_items;
    }

    /// Estimated false-positive rate at the current fill.
    pub fn fp_estimate(&self) -> f64 {
        let set = self.bits.iter().map(|w| w.count_ones() as f64).sum::<f64>();
        let frac = set / self.n_bits as f64;
        frac.powi(self.n_hashes as i32)
    }

    /// Items inserted (including unioned).
    pub fn n_items(&self) -> u64 {
        self.n_items
    }

    /// Size of the filter in bytes (the reduce-output size).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Hex encoding (wire form: `n_hashes:hex(bits)`).
    pub fn encode(&self) -> String {
        let mut s = format!("{}:", self.n_hashes);
        for w in &self.bits {
            s.push_str(&format!("{w:016x}"));
        }
        s
    }

    /// Parses [`BloomFilter::encode`] output.
    pub fn decode(text: &str) -> Option<BloomFilter> {
        let (k, hex) = text.split_once(':')?;
        let n_hashes: u32 = k.parse().ok()?;
        if hex.is_empty() || hex.len() % 16 != 0 || n_hashes == 0 {
            return None;
        }
        let mut bits = Vec::with_capacity(hex.len() / 16);
        for chunk in hex.as_bytes().chunks(16) {
            let s = std::str::from_utf8(chunk).ok()?;
            bits.push(u64::from_str_radix(s, 16).ok()?);
        }
        let n_bits = bits.len() * 64;
        Some(BloomFilter {
            bits,
            n_bits,
            n_hashes,
            n_items: 0,
        })
    }
}

/// Set-membership MapReduce (the §V pattern): map scans its chunk for
/// lines containing a pattern and inserts the *line's key* (first
/// token) into a Bloom filter; reduce unions the filters. The driver
/// then answers "does key X have a match?" from the tiny filter and
/// re-runs only positives locally.
#[derive(Clone, Debug)]
pub struct BloomGrep {
    /// Substring to search for.
    pub pattern: String,
    /// Filter bits per map task.
    pub filter_bits: usize,
    /// Probes per item.
    pub n_hashes: u32,
}

impl BloomGrep {
    /// A search for `pattern` with a 16 KiB / 4-hash filter.
    pub fn new(pattern: impl Into<String>) -> Self {
        BloomGrep {
            pattern: pattern.into(),
            filter_bits: 16 * 1024 * 8,
            n_hashes: 4,
        }
    }
}

impl crate::api::MapReduceApp for BloomGrep {
    type K = String;
    /// The encoded filter.
    type V = String;

    fn name(&self) -> &str {
        "bloomgrep"
    }

    fn input_format(&self) -> crate::api::InputFormat {
        crate::api::InputFormat::Lines
    }

    fn map(&self, chunk: &[u8], emit: &mut dyn FnMut(String, String)) {
        let mut filter = BloomFilter::new(self.filter_bits, self.n_hashes);
        let mut any = false;
        for line in crate::record::lines(chunk) {
            let Ok(s) = std::str::from_utf8(line) else {
                continue;
            };
            if s.contains(&self.pattern) {
                let key = s.split_ascii_whitespace().next().unwrap_or(s);
                filter.insert(key.as_bytes());
                any = true;
            }
        }
        if any {
            emit("filter".to_string(), filter.encode());
        }
    }

    fn reduce(&self, _key: &String, values: &[String]) -> String {
        let mut acc = BloomFilter::new(self.filter_bits, self.n_hashes);
        for v in values {
            if let Some(f) = BloomFilter::decode(v) {
                acc.union(&f);
            }
        }
        acc.encode()
    }

    fn combine(&self, key: &String, values: &[String]) -> Vec<String> {
        vec![self.reduce(key, values)]
    }

    fn encode(&self, key: &Self::K, value: &Self::V, out: &mut String) {
        out.push_str(key);
        out.push('\t');
        out.push_str(value);
        out.push('\n');
    }

    fn decode(&self, line: &str) -> Option<(String, String)> {
        let (k, v) = line.split_once('\t')?;
        Some((k.to_string(), v.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MapReduceApp;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::with_capacity(1000, 0.01);
        let items: Vec<String> = (0..1000).map(|i| format!("item-{i}")).collect();
        for it in &items {
            f.insert(it.as_bytes());
        }
        for it in &items {
            assert!(f.contains(it.as_bytes()), "false negative on {it}");
        }
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut f = BloomFilter::with_capacity(5000, 0.01);
        for i in 0..5000 {
            f.insert(format!("in-{i}").as_bytes());
        }
        let fps = (0..20_000)
            .filter(|i| f.contains(format!("out-{i}").as_bytes()))
            .count();
        let rate = fps as f64 / 20_000.0;
        assert!(rate < 0.03, "fp rate {rate} too high");
        assert!(f.fp_estimate() < 0.03);
    }

    #[test]
    fn union_is_bitwise_or() {
        let mut a = BloomFilter::new(1024, 3);
        let mut b = BloomFilter::new(1024, 3);
        a.insert(b"x");
        b.insert(b"y");
        a.union(&b);
        assert!(a.contains(b"x"));
        assert!(a.contains(b"y"));
        assert_eq!(a.n_items(), 2);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn union_rejects_mismatched_geometry() {
        let mut a = BloomFilter::new(1024, 3);
        let b = BloomFilter::new(2048, 3);
        a.union(&b);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut f = BloomFilter::new(512, 5);
        f.insert(b"alpha");
        f.insert(b"beta");
        let g = BloomFilter::decode(&f.encode()).unwrap();
        assert_eq!(g.bits, f.bits);
        assert_eq!(g.n_hashes, 5);
        assert!(g.contains(b"alpha"));
        assert!(BloomFilter::decode("garbage").is_none());
        assert!(BloomFilter::decode("3:zz").is_none());
    }

    #[test]
    fn bloomgrep_end_to_end_matches_grep_semantics() {
        let app = BloomGrep::new("ERROR");
        let data = b"req1 ok\nreq2 ERROR disk\nreq3 ok\nreq4 ERROR net\nreq5 ok\n";
        let job = crate::api::JobSpec::new("bg", 2, 1);
        let out = crate::local::run_local_parallel(&app, data, &job, 2);
        let filter = BloomFilter::decode(&out["filter"]).unwrap();
        // Matching keys are members; non-matching keys (almost surely) not.
        assert!(filter.contains(b"req2"));
        assert!(filter.contains(b"req4"));
        assert!(!filter.contains(b"req1"));
        assert!(!filter.contains(b"req3"));
        // The §V payoff: the reduce output is a fixed-size filter, far
        // smaller than a full result set would scale to.
        assert_eq!(filter.size_bytes(), app.filter_bits / 8);
    }

    #[test]
    fn empty_chunk_emits_nothing() {
        let app = BloomGrep::new("x");
        let mut n = 0;
        app.map(b"a b\nc d\n", &mut |_, _| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn size_shrinks_vs_result_transfer() {
        // 10k matching lines of ~40 bytes each would be ~400 KB of
        // reduce output; the filter stays at its fixed size.
        let app = BloomGrep::new("hit");
        let mut data = String::new();
        for i in 0..10_000 {
            data.push_str(&format!("key{i} hit payload-{i}\n"));
        }
        let job = crate::api::JobSpec::new("bg", 4, 1);
        let out = crate::local::run_local_parallel(&app, data.as_bytes(), &job, 2);
        let encoded = &out["filter"];
        // Hex-encoded 16 KiB filter ≈ 33 KB, vs ~400 KB of raw matches.
        assert!(
            encoded.len() < data.len() / 5,
            "filter ({}) must be far smaller than the data ({})",
            encoded.len(),
            data.len()
        );
    }
}
