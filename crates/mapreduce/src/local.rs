//! Local executors.
//!
//! * [`run_sequential`] — the correctness oracle: single-threaded,
//!   deterministic, no partitioning.
//! * [`run_map_task`] / [`run_reduce_task`] — the task-level building
//!   blocks every distributed runtime (simulated BOINC-MR, real TCP
//!   cluster) composes.
//! * [`run_local_parallel`] — a threaded executor (crossbeam scoped
//!   threads) that runs the full partitioned pipeline in-process.

use crate::api::{JobSpec, MapReduceApp};
use crate::partition::HashPartitioner;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Splits `data` into `n` chunks at the record boundary the app needs.
pub fn split_input<A: MapReduceApp>(app: &A, data: &[u8], n: usize) -> Vec<std::ops::Range<usize>> {
    match app.input_format() {
        crate::api::InputFormat::Tokens => crate::record::split_text(data, n),
        crate::api::InputFormat::Lines => crate::record::split_lines(data, n),
    }
}

/// Runs the whole job single-threaded without partitioning; the output
/// is the ground truth other executors are checked against.
pub fn run_sequential<A: MapReduceApp>(app: &A, chunks: &[&[u8]]) -> BTreeMap<A::K, A::V> {
    let mut grouped: BTreeMap<A::K, Vec<A::V>> = BTreeMap::new();
    for chunk in chunks {
        app.map(chunk, &mut |k, v| grouped.entry(k).or_default().push(v));
    }
    grouped
        .into_iter()
        .map(|(k, vs)| {
            let out = app.reduce(&k, &vs);
            (k, out)
        })
        .collect()
}

/// Output of one map task: intermediate pairs bucketed by reduce
/// partition, with the combiner already applied per key.
pub struct MapOutput<A: MapReduceApp> {
    /// `partitions[p]` holds the pairs reducer `p` will consume, sorted
    /// by key for determinism.
    pub partitions: Vec<Vec<(A::K, A::V)>>,
}

impl<A: MapReduceApp> MapOutput<A> {
    /// Size in bytes of partition `p` under the app's text encoding —
    /// what the simulator charges the network for.
    pub fn partition_bytes(&self, app: &A, p: usize) -> u64 {
        let mut s = String::new();
        for (k, v) in &self.partitions[p] {
            app.encode(k, v, &mut s);
        }
        s.len() as u64
    }

    /// Renders partition `p` in the app's line format (what actually
    /// crosses the wire in the real runtime).
    pub fn encode_partition(&self, app: &A, p: usize) -> String {
        let mut s = String::new();
        for (k, v) in &self.partitions[p] {
            app.encode(k, v, &mut s);
        }
        s
    }
}

/// Executes one map task over `chunk`, partitioning by `part`.
pub fn run_map_task<A: MapReduceApp>(
    app: &A,
    chunk: &[u8],
    part: &HashPartitioner,
    key_bytes: impl Fn(&A::K) -> Vec<u8>,
) -> MapOutput<A> {
    // Group within the task so the combiner sees all local values.
    let mut grouped: BTreeMap<A::K, Vec<A::V>> = BTreeMap::new();
    app.map(chunk, &mut |k, v| grouped.entry(k).or_default().push(v));
    let mut partitions: Vec<Vec<(A::K, A::V)>> =
        (0..part.n_reduces()).map(|_| Vec::new()).collect();
    for (k, vs) in grouped {
        let p = part.partition_bytes(&key_bytes(&k));
        for v in app.combine(&k, &vs) {
            partitions[p].push((k.clone(), v));
        }
    }
    MapOutput { partitions }
}

/// Parses an encoded partition back into pairs (the receiving side of
/// an inter-client transfer).
pub fn decode_partition<A: MapReduceApp>(app: &A, text: &str) -> Vec<(A::K, A::V)> {
    text.lines().filter_map(|l| app.decode(l)).collect()
}

/// Executes one reduce task over its partition slice from every map.
pub fn run_reduce_task<A: MapReduceApp>(
    app: &A,
    inputs: Vec<Vec<(A::K, A::V)>>,
) -> BTreeMap<A::K, A::V> {
    let mut grouped: BTreeMap<A::K, Vec<A::V>> = BTreeMap::new();
    for part in inputs {
        for (k, v) in part {
            grouped.entry(k).or_default().push(v);
        }
    }
    grouped
        .into_iter()
        .map(|(k, vs)| {
            let out = app.reduce(&k, &vs);
            (k, out)
        })
        .collect()
}

/// Full partitioned pipeline on `n_threads` local threads. String keys
/// only (the canonical wire form) — all bundled apps use string keys.
pub fn run_local_parallel<A>(
    app: &A,
    data: &[u8],
    job: &JobSpec,
    n_threads: usize,
) -> BTreeMap<A::K, A::V>
where
    A: MapReduceApp<K = String>,
{
    let part = HashPartitioner::new(job.n_reduces);
    let ranges = split_input(app, data, job.n_maps);
    let n_threads = n_threads.max(1);

    // ----- map phase -----
    let next_map = AtomicUsize::new(0);
    let mut map_outputs: Vec<Option<MapOutput<A>>> = (0..job.n_maps).map(|_| None).collect();
    {
        let slots: Vec<parking_lot::Mutex<&mut Option<MapOutput<A>>>> = map_outputs
            .iter_mut()
            .map(parking_lot::Mutex::new)
            .collect();
        crossbeam::scope(|s| {
            for _ in 0..n_threads {
                s.spawn(|_| loop {
                    let m = next_map.fetch_add(1, Ordering::Relaxed);
                    if m >= job.n_maps {
                        break;
                    }
                    let out = run_map_task(app, &data[ranges[m].clone()], &part, |k| {
                        k.as_bytes().to_vec()
                    });
                    **slots[m].lock() = Some(out);
                });
            }
        })
        .expect("map worker panicked");
    }
    let map_outputs: Vec<MapOutput<A>> = map_outputs
        .into_iter()
        .map(|o| o.expect("map slot unfilled"))
        .collect();

    // ----- shuffle + reduce phase -----
    let next_red = AtomicUsize::new(0);
    let mut red_outputs: Vec<Option<BTreeMap<A::K, A::V>>> =
        (0..job.n_reduces).map(|_| None).collect();
    {
        type RedSlot<'a, A> = parking_lot::Mutex<
            &'a mut Option<BTreeMap<<A as MapReduceApp>::K, <A as MapReduceApp>::V>>,
        >;
        let slots: Vec<RedSlot<'_, A>> = red_outputs
            .iter_mut()
            .map(parking_lot::Mutex::new)
            .collect();
        crossbeam::scope(|s| {
            for _ in 0..n_threads {
                s.spawn(|_| loop {
                    let p = next_red.fetch_add(1, Ordering::Relaxed);
                    if p >= job.n_reduces {
                        break;
                    }
                    let inputs: Vec<Vec<(A::K, A::V)>> = map_outputs
                        .iter()
                        .map(|mo| mo.partitions[p].clone())
                        .collect();
                    **slots[p].lock() = Some(run_reduce_task(app, inputs));
                });
            }
        })
        .expect("reduce worker panicked");
    }

    // ----- merge ("the final output … can be merged into a single
    // file, if necessary") -----
    let mut merged = BTreeMap::new();
    for out in red_outputs.into_iter().flatten() {
        merged.extend(out);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::wordcount::WordCount;

    const TEXT: &[u8] = b"the quick brown fox jumps over the lazy dog the end";

    #[test]
    fn sequential_counts_are_right() {
        let out = run_sequential(&WordCount, &[TEXT]);
        assert_eq!(out["the"], 3);
        assert_eq!(out["fox"], 1);
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn map_task_partitions_cover_all_pairs() {
        let part = HashPartitioner::new(3);
        let mo = run_map_task(&WordCount, TEXT, &part, |k| k.as_bytes().to_vec());
        let total: usize = mo.partitions.iter().map(Vec::len).sum();
        // Combiner collapses the three "the"s into one pair.
        assert_eq!(total, 9);
        // All copies of a key are in exactly one partition.
        for p in &mo.partitions {
            for (k, _) in p {
                assert_eq!(
                    part.partition_str(k),
                    mo.partitions
                        .iter()
                        .position(|q| std::ptr::eq(q, p))
                        .unwrap()
                );
            }
        }
    }

    #[test]
    fn task_pipeline_equals_oracle() {
        let part = HashPartitioner::new(4);
        let ranges = crate::record::split_text(TEXT, 3);
        let maps: Vec<MapOutput<WordCount>> = ranges
            .iter()
            .map(|r| {
                run_map_task(&WordCount, &TEXT[r.clone()], &part, |k| {
                    k.as_bytes().to_vec()
                })
            })
            .collect();
        let mut combined = BTreeMap::new();
        for p in 0..4 {
            let inputs: Vec<_> = maps.iter().map(|m| m.partitions[p].clone()).collect();
            combined.extend(run_reduce_task(&WordCount, inputs));
        }
        assert_eq!(combined, run_sequential(&WordCount, &[TEXT]));
    }

    #[test]
    fn parallel_equals_oracle() {
        let data = TEXT.repeat(200);
        let job = JobSpec::new("wc", 8, 3);
        let par = run_local_parallel(&WordCount, &data, &job, 4);
        let seq = run_sequential(&WordCount, &[&data[..]]);
        assert_eq!(par, seq);
    }

    #[test]
    fn encode_decode_partition_roundtrip() {
        let part = HashPartitioner::new(2);
        let mo = run_map_task(&WordCount, TEXT, &part, |k| k.as_bytes().to_vec());
        let text = mo.encode_partition(&WordCount, 0);
        let decoded = decode_partition(&WordCount, &text);
        assert_eq!(decoded, mo.partitions[0]);
        assert_eq!(mo.partition_bytes(&WordCount, 0), text.len() as u64);
    }

    #[test]
    fn single_thread_single_partition() {
        let job = JobSpec::new("wc", 1, 1);
        let out = run_local_parallel(&WordCount, TEXT, &job, 1);
        assert_eq!(out, run_sequential(&WordCount, &[TEXT]));
    }
}
