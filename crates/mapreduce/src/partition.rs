//! Key partitioning: which reducer owns a key.
//!
//! §III.C: "Each map output's key (a word in our example) is hashed and
//! the output file to write to is decided based on the number of reduce
//! tasks – modulo the number of reducers."

use crate::hashes::fnv1a;
use std::hash::Hash;

/// Assigns keys to reduce partitions by FNV-1a hash modulo `n_reduces`.
#[derive(Clone, Copy, Debug)]
pub struct HashPartitioner {
    n_reduces: usize,
}

impl HashPartitioner {
    /// A partitioner over `n_reduces` partitions.
    ///
    /// # Panics
    /// If `n_reduces == 0`.
    pub fn new(n_reduces: usize) -> Self {
        assert!(n_reduces > 0, "need at least one reducer");
        HashPartitioner { n_reduces }
    }

    /// Number of partitions.
    pub fn n_reduces(&self) -> usize {
        self.n_reduces
    }

    /// Partition of a raw key encoding.
    pub fn partition_bytes(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.n_reduces as u64) as usize
    }

    /// Partition of any hashable key via its `Debug`-stable byte form is
    /// unreliable; callers with typed keys use [`Self::partition_with`]
    /// and supply the canonical encoding.
    pub fn partition_with<K: Hash>(&self, key: &K, encode: impl Fn(&K) -> Vec<u8>) -> usize {
        self.partition_bytes(&encode(key))
    }

    /// Partition of a string key (the common case: words, URLs, terms).
    pub fn partition_str(&self, key: &str) -> usize {
        self.partition_bytes(key.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_in_range() {
        let p = HashPartitioner::new(5);
        for i in 0..1000 {
            let k = format!("key{i}");
            assert!(p.partition_str(&k) < 5);
        }
    }

    #[test]
    fn deterministic() {
        let p = HashPartitioner::new(7);
        assert_eq!(p.partition_str("hello"), p.partition_str("hello"));
    }

    #[test]
    fn single_partition_takes_all() {
        let p = HashPartitioner::new(1);
        assert_eq!(p.partition_str("anything"), 0);
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let p = HashPartitioner::new(4);
        let mut counts = [0usize; 4];
        for i in 0..40_000 {
            counts[p.partition_str(&format!("word-{i}"))] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "partition skew too large: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one reducer")]
    fn zero_reducers_rejected() {
        HashPartitioner::new(0);
    }
}
