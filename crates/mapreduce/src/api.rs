//! The MapReduce application interface.
//!
//! The paper did not ship a "full-blown MapReduce API" (§III.C) — it
//! hard-wired word count into the client. This crate *does* provide the
//! API, so every executor (sequential oracle, threaded local runtime,
//! simulated BOINC-MR, real TCP cluster) runs the same application code.

use std::fmt::Debug;
use std::hash::Hash;

/// Key type bound: hashable (partitioning), ordered (deterministic
/// reduce order), printable (text encoding).
pub trait Key: Clone + Eq + Hash + Ord + Send + Sync + Debug + 'static {}
impl<T: Clone + Eq + Hash + Ord + Send + Sync + Debug + 'static> Key for T {}

/// Value type bound.
pub trait Value: Clone + Send + Sync + Debug + 'static {}
impl<T: Clone + Send + Sync + Debug + 'static> Value for T {}

/// The record boundary an application's input respects: chunk cuts must
/// not split a record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InputFormat {
    /// Whitespace-separated tokens (word count).
    #[default]
    Tokens,
    /// Newline-terminated records (grep, log processing).
    Lines,
}

/// A complete MapReduce application: map + reduce + wire codec, with an
/// optional combiner.
pub trait MapReduceApp: Send + Sync {
    /// Intermediate/output key.
    type K: Key;
    /// Intermediate/output value.
    type V: Value;

    /// Application name (work unit labels, directories).
    fn name(&self) -> &str;

    /// How input chunks must be cut (token vs line boundaries).
    fn input_format(&self) -> InputFormat {
        InputFormat::Tokens
    }

    /// Processes one input chunk, emitting intermediate pairs.
    fn map(&self, chunk: &[u8], emit: &mut dyn FnMut(Self::K, Self::V));

    /// Folds all values of one key into the final value.
    fn reduce(&self, key: &Self::K, values: &[Self::V]) -> Self::V;

    /// Optional map-side combiner: pre-folds values of one key within a
    /// single map task's output. Defaults to no combining.
    fn combine(&self, _key: &Self::K, values: &[Self::V]) -> Vec<Self::V> {
        values.to_vec()
    }

    /// Encodes one pair as a text line (the paper's format: `word 1`).
    fn encode(&self, key: &Self::K, value: &Self::V, out: &mut String);

    /// Parses a line produced by [`MapReduceApp::encode`].
    fn decode(&self, line: &str) -> Option<(Self::K, Self::V)>;
}

/// Static description of a job: how the input splits and how many
/// reducers partition the key space (`mr_jobtracker.xml` in the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Job name.
    pub name: String,
    /// Number of map tasks (== number of input chunks).
    pub n_maps: usize,
    /// Number of reduce tasks (key-space partitions).
    pub n_reduces: usize,
}

impl JobSpec {
    /// A job with the given geometry.
    pub fn new(name: impl Into<String>, n_maps: usize, n_reduces: usize) -> Self {
        let spec = JobSpec {
            name: name.into(),
            n_maps,
            n_reduces,
        };
        assert!(spec.n_maps > 0, "need at least one map task");
        assert!(spec.n_reduces > 0, "need at least one reduce task");
        spec
    }

    /// Canonical name of the intermediate file holding map `m`'s output
    /// for partition `p` — the unit of inter-client transfer.
    pub fn partition_file(&self, m: usize, p: usize) -> String {
        format!("{}_m{m}_p{p}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_basics() {
        let j = JobSpec::new("wc", 4, 2);
        assert_eq!(j.partition_file(1, 0), "wc_m1_p0");
        assert_eq!(j.n_maps, 4);
    }

    #[test]
    #[should_panic(expected = "at least one map")]
    fn zero_maps_rejected() {
        JobSpec::new("wc", 0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one reduce")]
    fn zero_reduces_rejected() {
        JobSpec::new("wc", 1, 0);
    }
}
