//! Input splitting.
//!
//! §IV.A: "We set a fixed size of 1GB for the initial input file to be
//! split into chunks (number of chunks is the same as the number of
//! maps)." A text file must be split on token boundaries or words would
//! be cut in half at chunk edges; this module splits on whitespace near
//! the equal-size offsets, exactly once per byte.

/// Splits `data` into `n` chunks of near-equal size, moving each cut
/// forward to the next whitespace byte so no token straddles two chunks.
/// Returns exactly `n` ranges covering `data` (trailing chunks may be
/// empty for tiny inputs).
pub fn split_text(data: &[u8], n: usize) -> Vec<std::ops::Range<usize>> {
    assert!(n > 0, "need at least one chunk");
    let len = data.len();
    let mut cuts = Vec::with_capacity(n + 1);
    cuts.push(0usize);
    for i in 1..n {
        let target = len * i / n;
        let mut cut = target.max(*cuts.last().unwrap());
        // Advance to just past the next whitespace (or EOF).
        while cut < len && !data[cut].is_ascii_whitespace() {
            cut += 1;
        }
        while cut < len && data[cut].is_ascii_whitespace() {
            cut += 1;
        }
        cuts.push(cut.min(len));
    }
    cuts.push(len);
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Splits `data` into `n` chunks cutting only after `\n`, so no *line*
/// straddles two chunks (needed by line-oriented apps: grep, logs).
pub fn split_lines(data: &[u8], n: usize) -> Vec<std::ops::Range<usize>> {
    assert!(n > 0, "need at least one chunk");
    let len = data.len();
    let mut cuts = Vec::with_capacity(n + 1);
    cuts.push(0usize);
    for i in 1..n {
        let target = len * i / n;
        let mut cut = target.max(*cuts.last().unwrap());
        while cut < len && data[cut] != b'\n' {
            cut += 1;
        }
        if cut < len {
            cut += 1; // include the newline in the left chunk
        }
        cuts.push(cut.min(len));
    }
    cuts.push(len);
    cuts.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Iterates whitespace-separated tokens of a chunk.
pub fn tokens(chunk: &[u8]) -> impl Iterator<Item = &[u8]> {
    chunk
        .split(|b| b.is_ascii_whitespace())
        .filter(|t| !t.is_empty())
}

/// Iterates newline-separated non-empty lines of a chunk.
pub fn lines(chunk: &[u8]) -> impl Iterator<Item = &[u8]> {
    chunk.split(|&b| b == b'\n').filter(|l| !l.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_without_overlap() {
        let data = b"the quick brown fox jumps over the lazy dog ".repeat(100);
        let ranges = split_text(&data, 7);
        assert_eq!(ranges.len(), 7);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, data.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "chunks must tile the input");
        }
    }

    #[test]
    fn no_token_straddles_chunks() {
        let data = b"alpha beta gamma delta epsilon zeta eta theta ".repeat(50);
        let ranges = split_text(&data, 5);
        let whole: Vec<&[u8]> = tokens(&data).collect();
        let mut pieces = Vec::new();
        for r in &ranges {
            pieces.extend(tokens(&data[r.clone()]));
        }
        assert_eq!(whole, pieces, "token streams must be identical");
    }

    #[test]
    fn single_chunk_is_whole_input() {
        let data = b"hello world";
        let ranges = split_text(data, 1);
        assert_eq!(ranges, vec![0..data.len()]);
    }

    #[test]
    fn more_chunks_than_tokens() {
        let data = b"a b";
        let ranges = split_text(data, 10);
        assert_eq!(ranges.len(), 10);
        assert_eq!(ranges.last().unwrap().end, data.len());
        let collected: Vec<&[u8]> = ranges
            .iter()
            .flat_map(|r| tokens(&data[r.clone()]))
            .collect();
        assert_eq!(collected, vec![b"a" as &[u8], b"b"]);
    }

    #[test]
    fn empty_input() {
        let ranges = split_text(b"", 3);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| r.is_empty()));
    }

    #[test]
    fn split_lines_never_cuts_a_line() {
        let data = b"alpha one\nbeta two\ngamma three\ndelta four\nepsilon five\n".repeat(20);
        let ranges = split_lines(&data, 4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges.last().unwrap().end, data.len());
        let whole: Vec<&[u8]> = lines(&data).collect();
        let mut pieces = Vec::new();
        for r in &ranges {
            pieces.extend(lines(&data[r.clone()]));
        }
        assert_eq!(whole, pieces);
        for r in &ranges {
            if r.end < data.len() && !r.is_empty() {
                assert_eq!(data[r.end - 1], b'\n', "chunk must end on a newline");
            }
        }
    }

    #[test]
    fn split_lines_without_trailing_newline() {
        let data = b"a 1\nb 2\nc 3";
        let ranges = split_lines(data, 2);
        let pieces: Vec<&[u8]> = ranges
            .iter()
            .flat_map(|r| lines(&data[r.clone()]))
            .collect();
        assert_eq!(pieces, vec![b"a 1" as &[u8], b"b 2", b"c 3"]);
    }

    #[test]
    fn tokens_skip_blank_runs() {
        let toks: Vec<&[u8]> = tokens(b"  a\t\tb \n c  ").collect();
        assert_eq!(toks, vec![b"a" as &[u8], b"b", b"c"]);
    }

    #[test]
    fn lines_skip_empty() {
        let ls: Vec<&[u8]> = lines(b"one\n\ntwo\nthree\n").collect();
        assert_eq!(ls, vec![b"one" as &[u8], b"two", b"three"]);
    }
}
