//! Synthetic text corpus generation.
//!
//! The paper's experiments use a 1 GB text file for word count. We
//! cannot ship such a file, so we generate one deterministically: a
//! Zipf-distributed stream over a synthetic vocabulary (natural-language
//! word frequencies are famously Zipfian, which is what makes word count
//! outputs small relative to inputs).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic corpus.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    /// Vocabulary size (distinct words).
    pub vocabulary: usize,
    /// Zipf exponent (1.0 ≈ natural text).
    pub exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            vocabulary: 50_000,
            exponent: 1.0,
            seed: 0x5eed,
        }
    }
}

/// A deterministic word stream with Zipfian frequencies.
pub struct CorpusGen {
    words: Vec<String>,
    cumulative: Vec<f64>,
    rng: SmallRng,
}

impl CorpusGen {
    /// Builds the generator (materializes the vocabulary and CDF).
    pub fn new(spec: &CorpusSpec) -> Self {
        assert!(spec.vocabulary > 0);
        let words = (0..spec.vocabulary).map(synth_word).collect();
        let mut cumulative = Vec::with_capacity(spec.vocabulary);
        let mut acc = 0.0;
        for rank in 1..=spec.vocabulary {
            acc += 1.0 / (rank as f64).powf(spec.exponent);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        CorpusGen {
            words,
            cumulative,
            rng: SmallRng::seed_from_u64(spec.seed),
        }
    }

    /// Draws the next word.
    pub fn next_word(&mut self) -> &str {
        let u: f64 = self.rng.random();
        let idx = self
            .cumulative
            .partition_point(|&c| c < u)
            .min(self.words.len() - 1);
        &self.words[idx]
    }

    /// Generates approximately `bytes` of space-separated text (stops at
    /// the first word boundary past the target).
    pub fn generate(&mut self, bytes: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(bytes + 16);
        while out.len() < bytes {
            let w = {
                let s = self.next_word();
                // Borrow dance: copy the bytes before touching `out`.
                s.as_bytes().to_vec()
            };
            out.extend_from_slice(&w);
            // Newlines every ~12 words keep lines bounded.
            if out.len() % 97 < 8 {
                out.push(b'\n');
            } else {
                out.push(b' ');
            }
        }
        out
    }
}

/// Deterministic pronounceable pseudo-word for vocabulary rank `i`.
fn synth_word(i: usize) -> String {
    const ONSETS: [&str; 16] = [
        "b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "ch", "st",
    ];
    const NUCLEI: [&str; 8] = ["a", "e", "i", "o", "u", "ai", "ou", "ea"];
    let mut s = String::new();
    let mut x = i + 1;
    while x > 0 {
        s.push_str(ONSETS[x % ONSETS.len()]);
        s.push_str(NUCLEI[(x / ONSETS.len()) % NUCLEI.len()]);
        x /= ONSETS.len() * NUCLEI.len();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn vocabulary_words_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(synth_word(i)), "duplicate word at rank {i}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::default();
        let a = CorpusGen::new(&spec).generate(10_000);
        let b = CorpusGen::new(&spec).generate(10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn generated_size_close_to_target() {
        let mut g = CorpusGen::new(&CorpusSpec::default());
        let data = g.generate(100_000);
        assert!(data.len() >= 100_000);
        assert!(data.len() < 100_100, "overshoot bounded by one word");
    }

    #[test]
    fn distribution_is_zipf_like() {
        let mut g = CorpusGen::new(&CorpusSpec {
            vocabulary: 1000,
            exponent: 1.0,
            seed: 7,
        });
        let mut counts: HashMap<String, usize> = HashMap::new();
        for _ in 0..200_000 {
            *counts.entry(g.next_word().to_string()).or_insert(0) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Rank-1 word should appear roughly 2× rank-2 and 10× rank-10.
        let r1 = freqs[0] as f64;
        let r2 = freqs[1] as f64;
        let r10 = freqs[9] as f64;
        assert!((r1 / r2 - 2.0).abs() < 0.5, "r1/r2 = {}", r1 / r2);
        assert!((r1 / r10 - 10.0).abs() < 3.0, "r1/r10 = {}", r1 / r10);
    }

    #[test]
    fn corpus_tokens_roundtrip_with_record_reader() {
        let mut g = CorpusGen::new(&CorpusSpec::default());
        let data = g.generate(50_000);
        let n_tokens = crate::record::tokens(&data).count();
        assert!(n_tokens > 5_000, "got {n_tokens} tokens");
    }
}
