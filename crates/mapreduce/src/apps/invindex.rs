//! Inverted index — term → sorted document-id list. The classic
//! "web-scale" MapReduce workload (the paper's §II motivates deploying
//! BOINC clients as distributed web crawlers; this is the indexing side
//! of that pipeline).
//!
//! Input chunks are lines of the form `doc_id<TAB>text…`.

use crate::api::MapReduceApp;
use crate::record::lines;

/// Builds `term → "doc1,doc2,…"` postings.
#[derive(Clone, Copy, Debug, Default)]
pub struct InvertedIndex;

impl MapReduceApp for InvertedIndex {
    type K = String;
    /// Comma-joined sorted unique doc ids (string form keeps the wire
    /// codec line-oriented like the paper's).
    type V = String;

    fn name(&self) -> &str {
        "invindex"
    }

    fn input_format(&self) -> crate::api::InputFormat {
        crate::api::InputFormat::Lines
    }

    fn map(&self, chunk: &[u8], emit: &mut dyn FnMut(String, String)) {
        for line in lines(chunk) {
            let Ok(s) = std::str::from_utf8(line) else {
                continue;
            };
            let Some((doc, text)) = s.split_once('\t') else {
                continue;
            };
            for term in text.split_ascii_whitespace() {
                emit(term.to_string(), doc.to_string());
            }
        }
    }

    fn reduce(&self, _key: &String, values: &[String]) -> String {
        let mut docs: Vec<&str> = values
            .iter()
            .flat_map(|v| v.split(','))
            .filter(|d| !d.is_empty())
            .collect();
        docs.sort_unstable();
        docs.dedup();
        docs.join(",")
    }

    fn combine(&self, key: &String, values: &[String]) -> Vec<String> {
        vec![self.reduce(key, values)]
    }

    fn encode(&self, key: &String, value: &String, out: &mut String) {
        out.push_str(key);
        out.push('\t');
        out.push_str(value);
        out.push('\n');
    }

    fn decode(&self, line: &str) -> Option<(String, String)> {
        let (t, d) = line.split_once('\t')?;
        Some((t.to_string(), d.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_terms_to_docs() {
        let ix = InvertedIndex;
        let mut out = Vec::new();
        ix.map(b"d1\tred fox\nd2\tred dog\n", &mut |k, v| out.push((k, v)));
        assert!(out.contains(&("red".into(), "d1".into())));
        assert!(out.contains(&("red".into(), "d2".into())));
        assert!(out.contains(&("fox".into(), "d1".into())));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn reduce_sorts_and_dedups() {
        let ix = InvertedIndex;
        let postings = ix.reduce(&"red".into(), &["d2".into(), "d1".into(), "d2".into()]);
        assert_eq!(postings, "d1,d2");
    }

    #[test]
    fn combiner_collapses_partial_postings() {
        let ix = InvertedIndex;
        let combined = ix.combine(&"t".into(), &["d3,d1".into(), "d2".into()]);
        assert_eq!(combined, vec!["d1,d2,d3".to_string()]);
    }

    #[test]
    fn codec_roundtrip() {
        let ix = InvertedIndex;
        let mut s = String::new();
        ix.encode(&"term".into(), &"d1,d2".into(), &mut s);
        assert_eq!(
            ix.decode(s.trim_end()),
            Some(("term".into(), "d1,d2".into()))
        );
    }

    #[test]
    fn malformed_lines_skipped() {
        let ix = InvertedIndex;
        let mut n = 0;
        ix.map(b"no-tab-here\nd1\tok\n", &mut |_, _| n += 1);
        assert_eq!(n, 1);
    }
}
