//! Monte-Carlo π — classic volunteer-computing work expressed as
//! MapReduce.
//!
//! §II argues BOINC historically supports only embarrassingly parallel
//! jobs; MapReduce *subsumes* them: a pure Monte-Carlo estimation is
//! just a map over seed ranges with a trivial sum-reduce. Input chunks
//! are lines `seed n_samples`; map counts dart hits inside the unit
//! quarter-circle; reduce sums hits and totals, from which the driver
//! computes π ≈ 4·hits/total.

use crate::api::{InputFormat, MapReduceApp};
use crate::record::lines;

/// Counts quarter-circle hits over seeded sample blocks.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonteCarloPi;

/// Generates the job input: `blocks` lines of `seed n_samples`.
pub fn pi_input(blocks: usize, samples_per_block: u64, seed0: u64) -> Vec<u8> {
    let mut out = String::new();
    for b in 0..blocks {
        out.push_str(&format!("{} {}\n", seed0 + b as u64, samples_per_block));
    }
    out.into_bytes()
}

/// Extracts the π estimate from the job's merged output.
pub fn pi_estimate(output: &std::collections::BTreeMap<String, u64>) -> Option<f64> {
    let hits = *output.get("hits")?;
    let total = *output.get("total")?;
    (total > 0).then(|| 4.0 * hits as f64 / total as f64)
}

impl MapReduceApp for MonteCarloPi {
    type K = String;
    type V = u64;

    fn name(&self) -> &str {
        "montecarlo-pi"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Lines
    }

    fn map(&self, chunk: &[u8], emit: &mut dyn FnMut(String, u64)) {
        for line in lines(chunk) {
            let Ok(s) = std::str::from_utf8(line) else {
                continue;
            };
            let Some((seed, n)) = s.split_once(' ') else {
                continue;
            };
            let (Ok(seed), Ok(n)) = (seed.trim().parse::<u64>(), n.trim().parse::<u64>()) else {
                continue;
            };
            // Deterministic per-seed xorshift* stream: every replica of
            // this block produces identical counts, so quorum validation
            // works exactly as for word count.
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut next = move || {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
                state
            };
            let mut hits = 0u64;
            for _ in 0..n {
                let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
                let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
                if x * x + y * y <= 1.0 {
                    hits += 1;
                }
            }
            emit("hits".to_string(), hits);
            emit("total".to_string(), n);
        }
    }

    fn reduce(&self, _key: &String, values: &[u64]) -> u64 {
        values.iter().sum()
    }

    fn combine(&self, _key: &String, values: &[u64]) -> Vec<u64> {
        vec![values.iter().sum()]
    }

    fn encode(&self, key: &String, value: &u64, out: &mut String) {
        out.push_str(key);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }

    fn decode(&self, line: &str) -> Option<(String, u64)> {
        let (k, v) = line.rsplit_once(' ')?;
        Some((k.to_string(), v.trim().parse().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::JobSpec;
    use crate::local::{run_local_parallel, run_sequential};

    #[test]
    fn estimates_pi_reasonably() {
        let input = pi_input(20, 50_000, 7);
        let job = JobSpec::new("pi", 5, 1);
        let out = run_local_parallel(&MonteCarloPi, &input, &job, 4);
        let pi = pi_estimate(&out).unwrap();
        assert!(
            (pi - std::f64::consts::PI).abs() < 0.01,
            "π estimate {pi} too far off"
        );
        assert_eq!(out["total"], 20 * 50_000);
    }

    #[test]
    fn replicas_agree_bit_for_bit() {
        // The quorum-validation prerequisite: identical inputs produce
        // identical outputs on any worker.
        let input = pi_input(4, 10_000, 99);
        let a = run_sequential(&MonteCarloPi, &[&input[..]]);
        let b = run_sequential(&MonteCarloPi, &[&input[..]]);
        assert_eq!(a, b);
    }

    #[test]
    fn partitioned_equals_sequential() {
        let input = pi_input(12, 5_000, 3);
        let job = JobSpec::new("pi", 4, 2);
        assert_eq!(
            run_local_parallel(&MonteCarloPi, &input, &job, 3),
            run_sequential(&MonteCarloPi, &[&input[..]])
        );
    }

    #[test]
    fn malformed_lines_skipped() {
        let mut n = 0;
        MonteCarloPi.map(b"not numbers\n5 abc\n7 100\n", &mut |_, _| n += 1);
        assert_eq!(n, 2, "only the valid line emits (hits + total)");
    }

    #[test]
    fn codec_roundtrip() {
        let app = MonteCarloPi;
        let mut s = String::new();
        app.encode(&"hits".into(), &42, &mut s);
        assert_eq!(app.decode(s.trim_end()), Some(("hits".into(), 42)));
    }

    #[test]
    fn more_samples_tighter_estimate() {
        let run = |blocks: usize, per: u64| {
            let input = pi_input(blocks, per, 11);
            let out = run_sequential(&MonteCarloPi, &[&input[..]]);
            (pi_estimate(&out).unwrap() - std::f64::consts::PI).abs()
        };
        let coarse = run(2, 1_000);
        let fine = run(50, 50_000);
        assert!(fine < coarse + 0.01, "fine {fine} vs coarse {coarse}");
        assert!(fine < 0.005);
    }
}
