//! Distributed grep — the classic second MapReduce example (Dean &
//! Ghemawat §2.3), and the shape of workload the paper's §V discusses
//! for Bloom-filter-style reduces: map emits matching lines, reduce is
//! (nearly) the identity.

use crate::api::MapReduceApp;
use crate::record::lines;

/// Emits `(line, count)` for every line containing the pattern.
#[derive(Clone, Debug)]
pub struct DistGrep {
    /// Substring to search for.
    pub pattern: String,
}

impl DistGrep {
    /// A grep for `pattern`.
    pub fn new(pattern: impl Into<String>) -> Self {
        DistGrep {
            pattern: pattern.into(),
        }
    }
}

impl MapReduceApp for DistGrep {
    type K = String;
    type V = u64;

    fn name(&self) -> &str {
        "grep"
    }

    fn input_format(&self) -> crate::api::InputFormat {
        crate::api::InputFormat::Lines
    }

    fn map(&self, chunk: &[u8], emit: &mut dyn FnMut(String, u64)) {
        for line in lines(chunk) {
            if let Ok(s) = std::str::from_utf8(line) {
                if s.contains(&self.pattern) {
                    emit(s.to_string(), 1);
                }
            }
        }
    }

    fn reduce(&self, _key: &String, values: &[u64]) -> u64 {
        // Duplicate matching lines collapse to an occurrence count.
        values.iter().sum()
    }

    fn encode(&self, key: &String, value: &u64, out: &mut String) {
        out.push_str(&value.to_string());
        out.push('\t');
        out.push_str(key);
        out.push('\n');
    }

    fn decode(&self, line: &str) -> Option<(String, u64)> {
        let (n, l) = line.split_once('\t')?;
        Some((l.to_string(), n.parse().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_matching_lines_only() {
        let g = DistGrep::new("err");
        let mut out = Vec::new();
        g.map(
            b"ok line\nerr one\nfine\nanother err here\n",
            &mut |k, v| out.push((k, v)),
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(k, _)| k.contains("err")));
    }

    #[test]
    fn duplicate_lines_counted() {
        let g = DistGrep::new("x");
        assert_eq!(g.reduce(&"x line".into(), &[1, 1, 1]), 3);
    }

    #[test]
    fn codec_roundtrip() {
        let g = DistGrep::new("x");
        let mut s = String::new();
        g.encode(&"a line with x".into(), &2, &mut s);
        let (k, v) = g.decode(s.trim_end()).unwrap();
        assert_eq!(k, "a line with x");
        assert_eq!(v, 2);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let g = DistGrep::new("");
        let mut n = 0;
        g.map(b"a\nb\nc\n", &mut |_, _| n += 1);
        assert_eq!(n, 3);
    }
}
