//! Word count — the paper's proof-of-concept application (§III.C).
//!
//! "The map function reads an input file word by word and outputs one
//! line per word, with the format `word 1` … The reduce application
//! reads one line at a time, and increments the count for each unique
//! word."

use crate::api::MapReduceApp;
use crate::record::tokens;

/// The canonical word-count application.
#[derive(Clone, Copy, Debug, Default)]
pub struct WordCount;

impl MapReduceApp for WordCount {
    type K = String;
    type V = u64;

    fn name(&self) -> &str {
        "wordcount"
    }

    fn map(&self, chunk: &[u8], emit: &mut dyn FnMut(String, u64)) {
        for tok in tokens(chunk) {
            if let Ok(s) = std::str::from_utf8(tok) {
                emit(s.to_string(), 1);
            }
        }
    }

    fn reduce(&self, _key: &String, values: &[u64]) -> u64 {
        values.iter().sum()
    }

    fn combine(&self, _key: &String, values: &[u64]) -> Vec<u64> {
        vec![values.iter().sum()]
    }

    fn encode(&self, key: &String, value: &u64, out: &mut String) {
        out.push_str(key);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }

    fn decode(&self, line: &str) -> Option<(String, u64)> {
        let (w, n) = line.rsplit_once(' ')?;
        Some((w.to_string(), n.trim().parse().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_emits_one_per_token() {
        let wc = WordCount;
        let mut out = Vec::new();
        wc.map(b"the cat and the hat", &mut |k, v| out.push((k, v)));
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], ("the".to_string(), 1));
        assert_eq!(out[3], ("the".to_string(), 1));
    }

    #[test]
    fn reduce_sums() {
        let wc = WordCount;
        assert_eq!(wc.reduce(&"x".into(), &[1, 2, 3]), 6);
    }

    #[test]
    fn combine_prefolds() {
        let wc = WordCount;
        assert_eq!(wc.combine(&"x".into(), &[1, 1, 1]), vec![3]);
    }

    #[test]
    fn codec_roundtrip_matches_paper_format() {
        let wc = WordCount;
        let mut line = String::new();
        wc.encode(&"test".into(), &1, &mut line);
        assert_eq!(line, "test 1\n", "the paper's exact example line");
        let (k, v) = wc.decode(line.trim_end()).unwrap();
        assert_eq!((k.as_str(), v), ("test", 1));
    }

    #[test]
    fn decode_rejects_garbage() {
        let wc = WordCount;
        assert_eq!(wc.decode("no-separator"), None);
        assert_eq!(wc.decode("word notanumber"), None);
    }

    #[test]
    fn non_utf8_tokens_are_skipped() {
        let wc = WordCount;
        let mut out = Vec::new();
        wc.map(b"ok \xff\xfe bad ok", &mut |k, _| out.push(k));
        assert_eq!(out, vec!["ok", "bad", "ok"]);
    }
}
