//! Per-URL visit aggregation — the "count of URL access frequency"
//! workload from the original MapReduce paper, standing in for the
//! data-intensive log-processing scenarios §II says volunteer clouds
//! should take on.
//!
//! Input chunks are web-server log lines: `url<SPACE>bytes_sent`.
//! The job sums bytes per URL (a weighted word count — exercises
//! non-unit values through the whole pipeline).

use crate::api::MapReduceApp;
use crate::record::lines;

/// Sums bytes transferred per URL.
#[derive(Clone, Copy, Debug, Default)]
pub struct UrlVisits;

impl MapReduceApp for UrlVisits {
    type K = String;
    type V = u64;

    fn name(&self) -> &str {
        "urlvisits"
    }

    fn input_format(&self) -> crate::api::InputFormat {
        crate::api::InputFormat::Lines
    }

    fn map(&self, chunk: &[u8], emit: &mut dyn FnMut(String, u64)) {
        for line in lines(chunk) {
            let Ok(s) = std::str::from_utf8(line) else {
                continue;
            };
            let Some((url, bytes)) = s.rsplit_once(' ') else {
                continue;
            };
            if let Ok(b) = bytes.trim().parse::<u64>() {
                emit(url.to_string(), b);
            }
        }
    }

    fn reduce(&self, _key: &String, values: &[u64]) -> u64 {
        values.iter().sum()
    }

    fn combine(&self, _key: &String, values: &[u64]) -> Vec<u64> {
        vec![values.iter().sum()]
    }

    fn encode(&self, key: &String, value: &u64, out: &mut String) {
        out.push_str(key);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }

    fn decode(&self, line: &str) -> Option<(String, u64)> {
        let (url, n) = line.rsplit_once(' ')?;
        Some((url.to_string(), n.trim().parse().ok()?))
    }
}

/// Generates a deterministic synthetic access log of roughly `bytes`
/// bytes over `n_urls` URLs (Zipf-ranked popularity).
pub fn synth_log(bytes: usize, n_urls: usize, seed: u64) -> Vec<u8> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(bytes + 64);
    while out.len() < bytes {
        // Zipf-ish rank via inverse power of a uniform draw.
        let u: f64 = rng.random::<f64>().max(1e-12);
        let rank = ((1.0 / u) as usize).min(n_urls - 1);
        let sent = rng.random_range(200u64..50_000);
        out.extend_from_slice(format!("/page/{rank} {sent}\n").as_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_bytes_per_url() {
        let app = UrlVisits;
        let mut out = Vec::new();
        app.map(b"/a 100\n/b 50\n/a 25\n", &mut |k, v| out.push((k, v)));
        assert_eq!(out.len(), 3);
        assert_eq!(app.reduce(&"/a".into(), &[100, 25]), 125);
    }

    #[test]
    fn skips_malformed_lines() {
        let app = UrlVisits;
        let mut n = 0;
        app.map(b"garbage\n/a xyz\n/a 5\n", &mut |_, _| n += 1);
        assert_eq!(n, 1);
    }

    #[test]
    fn codec_roundtrip() {
        let app = UrlVisits;
        let mut s = String::new();
        app.encode(&"/x/y".into(), &42, &mut s);
        assert_eq!(app.decode(s.trim_end()), Some(("/x/y".into(), 42)));
    }

    #[test]
    fn synth_log_parses_fully() {
        let log = synth_log(10_000, 100, 3);
        let app = UrlVisits;
        let mut n = 0u64;
        app.map(&log, &mut |_, _| n += 1);
        let line_count = crate::record::lines(&log).count() as u64;
        assert_eq!(n, line_count, "every synthetic line must parse");
        assert!(n > 100);
    }

    #[test]
    fn synth_log_deterministic() {
        assert_eq!(synth_log(5_000, 50, 9), synth_log(5_000, 50, 9));
    }
}
