//! Reference MapReduce applications.
//!
//! Word count is the paper's proof of concept; the others are the
//! classic companion workloads (distributed grep, inverted index, URL
//! visit aggregation) used by the extra examples and benches.

pub mod grep;
pub mod invindex;
pub mod montecarlo;
pub mod urlvisits;
pub mod wordcount;

pub use grep::DistGrep;
pub use invindex::InvertedIndex;
pub use montecarlo::{pi_estimate, pi_input, MonteCarloPi};
pub use urlvisits::{synth_log, UrlVisits};
pub use wordcount::WordCount;
