//! # vmr-mapreduce — the MapReduce framework
//!
//! The paper inlined word count into a modified BOINC client (§III.C:
//! "we inserted MapReduce functionalities into the code" rather than
//! building an API). This crate provides the API the paper deferred:
//!
//! * [`api::MapReduceApp`] — map + reduce + combiner + line codec;
//! * [`partition::HashPartitioner`] — hash(key) mod R (§III.C);
//! * [`record`] — boundary-respecting input splitting (§IV.A's 1 GB /
//!   #maps chunks);
//! * [`local`] — the sequential oracle, the task-level building blocks
//!   shared by all runtimes, and a threaded in-process executor;
//! * [`apps`] — word count (the paper's app), distributed grep,
//!   inverted index, URL-visit aggregation;
//! * [`corpus`] — deterministic Zipf text generation (the 1 GB input);
//! * [`hashes`] — in-crate FNV-1a and SHA-256 (output fingerprints).

#![warn(missing_docs)]

pub mod api;
pub mod apps;
pub mod bloom;
pub mod corpus;
pub mod hashes;
pub mod local;
pub mod partition;
pub mod record;

pub use api::{InputFormat, JobSpec, MapReduceApp};
pub use bloom::{BloomFilter, BloomGrep};
pub use corpus::{CorpusGen, CorpusSpec};
pub use hashes::{fnv1a, sha256, Sha256};
pub use local::{
    decode_partition, run_local_parallel, run_map_task, run_reduce_task, run_sequential,
    split_input, MapOutput,
};
pub use partition::HashPartitioner;
