//! The per-volunteer output store.
//!
//! Holds map-output partitions between the map and reduce phases, with
//! the serving semantics of §III.C: files become available when a map
//! task finishes, stop being served on timeout or job completion, and
//! a timeout reset makes them available again.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::time::{Duration, Instant};

struct Entry {
    data: Bytes,
    serve_until: Option<Instant>,
}

/// Thread-safe named-file store with serving windows.
#[derive(Default)]
pub struct OutputStore {
    files: RwLock<HashMap<String, Entry>>,
}

impl OutputStore {
    /// An empty store.
    pub fn new() -> Self {
        OutputStore::default()
    }

    /// Inserts (or replaces) a file served indefinitely.
    pub fn put(&self, name: impl Into<String>, data: Bytes) {
        self.files.write().insert(
            name.into(),
            Entry {
                data,
                serve_until: None,
            },
        );
    }

    /// Inserts a file served only for `window` from now ("the timeout
    /// value must be chosen according to the expected execution time").
    pub fn put_with_timeout(&self, name: impl Into<String>, data: Bytes, window: Duration) {
        self.files.write().insert(
            name.into(),
            Entry {
                data,
                serve_until: Some(Instant::now() + window),
            },
        );
    }

    /// Fetches a file if present *and* inside its serving window.
    pub fn get(&self, name: &str) -> Option<Bytes> {
        let files = self.files.read();
        let e = files.get(name)?;
        if let Some(t) = e.serve_until {
            if Instant::now() > t {
                return None;
            }
        }
        Some(e.data.clone())
    }

    /// Resets a file's serving window ("the map outputs' timeout is
    /// reset (even if it has already been reached in the meantime)").
    /// Returns false if the file was never stored.
    pub fn reset_timeout(&self, name: &str, window: Option<Duration>) -> bool {
        let mut files = self.files.write();
        match files.get_mut(name) {
            Some(e) => {
                e.serve_until = window.map(|w| Instant::now() + w);
                true
            }
            None => false,
        }
    }

    /// Removes a file (job finished).
    pub fn remove(&self, name: &str) -> bool {
        self.files.write().remove(name).is_some()
    }

    /// Removes everything.
    pub fn clear(&self) {
        self.files.write().clear();
    }

    /// Number of stored files (including timed-out ones).
    pub fn len(&self) -> usize {
        self.files.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.files.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::wait_until;

    /// The de-flake pattern for window tests: assert "inside the
    /// window" only on windows far longer than any plausible scheduler
    /// stall, and assert expiry with a short window under
    /// [`wait_until`] instead of a bare sleep.
    const EXPIRY: Duration = Duration::from_millis(1);
    const GENEROUS: Duration = Duration::from_secs(30);
    const PATIENCE: Duration = Duration::from_secs(10);

    #[test]
    fn put_get_remove() {
        let s = OutputStore::new();
        assert!(s.is_empty());
        s.put("a", Bytes::from_static(b"hello"));
        assert_eq!(s.get("a").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.len(), 1);
        assert!(s.remove("a"));
        assert!(!s.remove("a"));
        assert!(s.get("a").is_none());
    }

    #[test]
    fn timeout_expires_serving() {
        let s = OutputStore::new();
        s.put_with_timeout("f", Bytes::from_static(b"x"), GENEROUS);
        assert!(s.get("f").is_some(), "inside the window");
        assert!(s.reset_timeout("f", Some(EXPIRY)));
        assert!(
            wait_until(|| s.get("f").is_none(), PATIENCE),
            "window passed"
        );
        // The file is still *stored*, just not served.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn reset_timeout_revives_file() {
        let s = OutputStore::new();
        s.put_with_timeout("f", Bytes::from_static(b"x"), EXPIRY);
        assert!(wait_until(|| s.get("f").is_none(), PATIENCE));
        assert!(s.reset_timeout("f", Some(GENEROUS)));
        assert!(s.get("f").is_some(), "reset makes it servable again");
        assert!(!s.reset_timeout("ghost", None));
    }

    #[test]
    fn clear_empties() {
        let s = OutputStore::new();
        s.put("a", Bytes::new());
        s.put("b", Bytes::new());
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn put_replaces_an_expired_entry() {
        let s = OutputStore::new();
        s.put_with_timeout("f", Bytes::from_static(b"old"), EXPIRY);
        assert!(wait_until(|| s.get("f").is_none(), PATIENCE));
        // Re-put (a rescheduled map re-finishing on the same host):
        // the fresh entry serves indefinitely and carries the new data.
        s.put("f", Bytes::from_static(b"new"));
        assert_eq!(s.get("f").unwrap(), Bytes::from_static(b"new"));
        assert_eq!(s.len(), 1, "replace, not duplicate");
        assert!(s.get("f").is_some(), "no window survives the replace");
    }

    #[test]
    fn put_with_timeout_restarts_the_window_of_an_expired_entry() {
        let s = OutputStore::new();
        s.put_with_timeout("f", Bytes::from_static(b"v1"), EXPIRY);
        assert!(wait_until(|| s.get("f").is_none(), PATIENCE));
        s.put_with_timeout("f", Bytes::from_static(b"v2"), GENEROUS);
        assert_eq!(s.get("f").unwrap(), Bytes::from_static(b"v2"));
    }

    #[test]
    fn reset_timeout_to_none_serves_indefinitely() {
        let s = OutputStore::new();
        s.put_with_timeout("f", Bytes::from_static(b"x"), EXPIRY);
        assert!(wait_until(|| s.get("f").is_none(), PATIENCE));
        assert!(s.reset_timeout("f", None), "None clears the window");
        assert!(s.get("f").is_some(), "still served: no window remains");
    }

    #[test]
    fn unexpired_window_keeps_serving_until_the_deadline() {
        let s = OutputStore::new();
        s.put_with_timeout("f", Bytes::from_static(b"x"), Duration::from_secs(30));
        assert!(s.get("f").is_some(), "inside the window");
        // A reset before expiry shortens or extends without a gap.
        assert!(s.reset_timeout("f", Some(Duration::from_secs(60))));
        assert!(s.get("f").is_some());
    }
}
