//! # vmr-rtnet — the real pull-model TCP runtime
//!
//! The simulator (vmr-netsim/vmr-vcore) reproduces the paper's *timing*;
//! this crate proves the *protocol* works over genuine sockets:
//!
//! * [`proto`] — length-prefixed request/response frames with SHA-256
//!   integrity trailers (§III.C's TCP transfers + hash reporting).
//! * [`store`] — per-volunteer output store with serving windows,
//!   timeout reset, and job-completion cleanup.
//! * [`server`] — the volunteer's serving endpoint: accept gating and
//!   the max-inter-client-connection threshold, one thread per
//!   connection. Kept as the executable spec the poll runtime is
//!   differentially tested against.
//! * [`poll`] — stub-level `mio`: a rebuilt-per-tick readiness set
//!   over `poll(2)`.
//! * [`pollserver`] — rtnet v2's runtime: every peer multiplexed on
//!   one nonblocking event loop, with a connection pool, idle-timeout
//!   reaping, per-connection write-queue backpressure, accept-gated
//!   threshold enforcement, and a live `GET /metrics` + `GET /dash`
//!   operations endpoint.
//! * [`fetch`] — reducer-side downloads: retry over holders, then fall
//!   back to the project server.
//! * [`load`] — nonblocking load generation: thousands of concurrent
//!   fetcher state machines from one thread (the soak harness).
//! * [`cluster`] — `run_cluster`: a complete word-count (or any
//!   [`vmr_mapreduce::MapReduceApp`]) job over loopback TCP with
//!   pull-model scheduling, replication + quorum, byzantine workers,
//!   mapper-failure fall-back, and either serving runtime
//!   ([`ClusterConfig::poll_runtime`]).
//! * [`wait`] — deadline-bounded condition polling for real-socket
//!   tests (no bare sleeps).

#![warn(missing_docs)]

pub mod cluster;
pub mod fetch;
pub mod load;
pub mod poll;
pub mod pollserver;
pub mod proto;
pub mod server;
pub mod store;
pub mod wait;

pub use cluster::{run_cluster, run_cluster_with_obs, ClusterConfig, ClusterReport, ClusterStats};
pub use fetch::{fetch_once, fetch_with_fallback, http_get, FetchError, FetchPolicy, FetchSource};
pub use load::{run_load, LoadConfig, LoadReport};
pub use pollserver::{PollServer, PollServerConfig};
pub use proto::{Request, Response};
pub use server::{PeerServer, ServerStats};
pub use store::OutputStore;
pub use wait::wait_until;
