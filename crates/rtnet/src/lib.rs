//! # vmr-rtnet — the real pull-model TCP runtime
//!
//! The simulator (vmr-netsim/vmr-vcore) reproduces the paper's *timing*;
//! this crate proves the *protocol* works over genuine sockets:
//!
//! * [`proto`] — length-prefixed request/response frames with SHA-256
//!   integrity trailers (§III.C's TCP transfers + hash reporting).
//! * [`store`] — per-volunteer output store with serving windows,
//!   timeout reset, and job-completion cleanup.
//! * [`server`] — the volunteer's serving endpoint: accept gating and
//!   the max-inter-client-connection threshold.
//! * [`fetch`] — reducer-side downloads: retry over holders, then fall
//!   back to the project server.
//! * [`cluster`] — `run_cluster`: a complete word-count (or any
//!   [`vmr_mapreduce::MapReduceApp`]) job over loopback TCP with
//!   pull-model scheduling, replication + quorum, byzantine workers,
//!   and mapper-failure fall-back.

#![warn(missing_docs)]

pub mod cluster;
pub mod fetch;
pub mod proto;
pub mod server;
pub mod store;

pub use cluster::{run_cluster, run_cluster_with_obs, ClusterConfig, ClusterReport, ClusterStats};
pub use fetch::{fetch_once, fetch_with_fallback, FetchError, FetchPolicy, FetchSource};
pub use proto::{Request, Response};
pub use server::{PeerServer, ServerStats};
pub use store::OutputStore;
