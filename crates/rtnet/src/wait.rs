//! Deadline-bounded condition polling.
//!
//! Real-socket tests must not assert timing with bare
//! `std::thread::sleep`: a loaded CI machine can stall any thread for
//! tens of milliseconds, turning "sleep 30 ms then assert the 10 ms
//! window expired" into a coin flip the other way around (the assert
//! *before* the sleep is the flaky one — the window may expire between
//! `put` and `get`). Poll the condition with a generous deadline
//! instead: the test passes as soon as the condition holds and only
//! fails after the full timeout.

use std::time::{Duration, Instant};

/// Polls `pred` every millisecond until it returns true or `timeout`
/// elapses. Returns whether the predicate ever held. The predicate is
/// always tried at least once, even with a zero timeout.
pub fn wait_until(mut pred: impl FnMut() -> bool, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if pred() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn immediate_truth_returns_fast() {
        let t0 = Instant::now();
        assert!(wait_until(|| true, Duration::from_secs(30)));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn eventual_truth_is_caught() {
        let calls = AtomicU32::new(0);
        assert!(wait_until(
            || calls.fetch_add(1, Ordering::Relaxed) >= 3,
            Duration::from_secs(10)
        ));
    }

    #[test]
    fn timeout_returns_false() {
        assert!(!wait_until(|| false, Duration::from_millis(5)));
    }

    #[test]
    fn zero_timeout_still_tries_once() {
        assert!(wait_until(|| true, Duration::ZERO));
        assert!(!wait_until(|| false, Duration::ZERO));
    }
}
