//! Wire protocol for inter-client transfers.
//!
//! The paper used raw TCP sockets "due to its simplicity and ease of
//! testing" (§III.C). We keep that spirit with a minimal length-prefixed
//! binary protocol:
//!
//! ```text
//! request  := u32 frame_len | u8 tag | payload
//!   GET    (tag 1): u16 name_len | name bytes
//!   PING   (tag 2): —
//! response := u32 frame_len | u8 tag | payload
//!   DATA   (tag 1): u64 body_len | body | 32-byte SHA-256 of body
//!   NOTFOUND (2), BUSY (3), PONG (4): —
//! ```
//!
//! The SHA-256 trailer is the integrity check the paper proposes when it
//! suggests reporting output hashes instead of whole files.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, Read, Write};
use vmr_mapreduce::sha256;

/// Maximum accepted frame (sanity bound against corrupt peers).
pub const MAX_FRAME: usize = 256 << 20;

/// A request from a downloader to a serving peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Fetch a named file (a map-output partition).
    Get(String),
    /// Liveness probe.
    Ping,
}

/// A serving peer's reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// File contents plus integrity digest.
    Data(Bytes),
    /// The peer does not (or no longer) serves this file.
    NotFound,
    /// The peer is at its inter-client connection threshold.
    Busy,
    /// Liveness answer.
    Pong,
}

/// Encodes a request frame.
pub fn encode_request(req: &Request, out: &mut BytesMut) {
    match req {
        Request::Get(name) => {
            let payload_len = 1 + 2 + name.len();
            out.put_u32(payload_len as u32);
            out.put_u8(1);
            out.put_u16(name.len() as u16);
            out.put_slice(name.as_bytes());
        }
        Request::Ping => {
            out.put_u32(1);
            out.put_u8(2);
        }
    }
}

/// Encodes a response frame (computing the digest for `Data`).
pub fn encode_response(resp: &Response, out: &mut BytesMut) {
    match resp {
        Response::Data(body) => {
            let digest = sha256(body);
            let payload_len = 1 + 8 + body.len() + 32;
            out.put_u32(payload_len as u32);
            out.put_u8(1);
            out.put_u64(body.len() as u64);
            out.put_slice(body);
            out.put_slice(&digest);
        }
        Response::NotFound => {
            out.put_u32(1);
            out.put_u8(2);
        }
        Response::Busy => {
            out.put_u32(1);
            out.put_u8(3);
        }
        Response::Pong => {
            out.put_u32(1);
            out.put_u8(4);
        }
    }
}

fn read_exact_frame(stream: &mut impl Read) -> io::Result<BytesMut> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(BytesMut::from(&buf[..]))
}

/// Incremental length-prefix framing for nonblocking transports.
///
/// Feed arbitrary byte fragments with [`FrameDecoder::push`] (1-byte
/// reads, coalesced reads — any split), pull complete frame payloads
/// (length prefix stripped) with [`FrameDecoder::next_frame`]. The
/// decoder never blocks and never panics on junk: a corrupt length
/// prefix surfaces as an error as soon as the four prefix bytes are in.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends freshly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, if one has accumulated.
    ///
    /// `Ok(None)` means "need more bytes"; an error means the stream is
    /// unrecoverable (length prefix of 0 or beyond [`MAX_FRAME`]).
    pub fn next_frame(&mut self) -> io::Result<Option<BytesMut>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().expect("4-byte prefix")) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let _prefix = self.buf.split_to(4);
        Ok(Some(self.buf.split_to(len)))
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

/// Decodes a request from one complete frame payload (prefix stripped).
pub fn decode_request(mut frame: BytesMut) -> io::Result<Request> {
    if frame.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
    }
    let tag = frame.get_u8();
    match tag {
        1 => {
            if frame.remaining() < 2 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated GET"));
            }
            let name_len = frame.get_u16() as usize;
            if frame.remaining() < name_len {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated name"));
            }
            let name = String::from_utf8(frame.split_to(name_len).to_vec())
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            Ok(Request::Get(name))
        }
        2 => Ok(Request::Ping),
        t => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown request tag {t}"),
        )),
    }
}

/// Decodes a response from one complete frame payload, verifying the
/// SHA-256 trailer on `Data`.
pub fn decode_response(mut frame: BytesMut) -> io::Result<Response> {
    if frame.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
    }
    let tag = frame.get_u8();
    match tag {
        1 => {
            if frame.remaining() < 8 {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated DATA"));
            }
            let body_len = frame.get_u64() as usize;
            if frame.remaining() != body_len.saturating_add(32) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "DATA length mismatch",
                ));
            }
            let body = frame.split_to(body_len).freeze();
            let digest: [u8; 32] = frame[..32].try_into().expect("32-byte trailer");
            if sha256(&body) != digest {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "SHA-256 integrity check failed",
                ));
            }
            Ok(Response::Data(body))
        }
        2 => Ok(Response::NotFound),
        3 => Ok(Response::Busy),
        4 => Ok(Response::Pong),
        t => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown response tag {t}"),
        )),
    }
}

/// Reads one request frame from a stream.
pub fn read_request(stream: &mut impl Read) -> io::Result<Request> {
    decode_request(read_exact_frame(stream)?)
}

/// Reads one response frame, verifying the SHA-256 trailer on `Data`.
pub fn read_response(stream: &mut impl Read) -> io::Result<Response> {
    decode_response(read_exact_frame(stream)?)
}

/// Writes a whole frame buffer to a stream.
pub fn write_all(stream: &mut impl Write, buf: &BytesMut) -> io::Result<()> {
    stream.write_all(buf)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: Request) -> Request {
        let mut buf = BytesMut::new();
        encode_request(&req, &mut buf);
        read_request(&mut Cursor::new(buf.to_vec())).unwrap()
    }

    fn roundtrip_response(resp: Response) -> Response {
        let mut buf = BytesMut::new();
        encode_response(&resp, &mut buf);
        read_response(&mut Cursor::new(buf.to_vec())).unwrap()
    }

    #[test]
    fn request_roundtrips() {
        assert_eq!(
            roundtrip_request(Request::Get("mr0_m3_p1".into())),
            Request::Get("mr0_m3_p1".into())
        );
        assert_eq!(roundtrip_request(Request::Ping), Request::Ping);
    }

    #[test]
    fn response_roundtrips() {
        let body = Bytes::from(vec![7u8; 10_000]);
        assert_eq!(
            roundtrip_response(Response::Data(body.clone())),
            Response::Data(body)
        );
        assert_eq!(roundtrip_response(Response::NotFound), Response::NotFound);
        assert_eq!(roundtrip_response(Response::Busy), Response::Busy);
        assert_eq!(roundtrip_response(Response::Pong), Response::Pong);
    }

    #[test]
    fn corrupted_body_fails_integrity() {
        let mut buf = BytesMut::new();
        encode_response(
            &Response::Data(Bytes::from_static(b"hello world")),
            &mut buf,
        );
        // Flip a body byte (frame: 4 len + 1 tag + 8 body_len + body…).
        let mut raw = buf.to_vec();
        raw[13] ^= 0xff;
        let err = read_response(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&(u32::MAX).to_be_bytes());
        raw.push(1);
        let err = read_request(&mut Cursor::new(raw)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_data_roundtrips() {
        assert_eq!(
            roundtrip_response(Response::Data(Bytes::new())),
            Response::Data(Bytes::new())
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut raw = Vec::new();
        raw.extend_from_slice(&1u32.to_be_bytes());
        raw.push(99);
        assert!(read_request(&mut Cursor::new(raw.clone())).is_err());
        assert!(read_response(&mut Cursor::new(raw)).is_err());
    }
}
