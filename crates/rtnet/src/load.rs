//! Nonblocking load generation — thousands of concurrent fetchers from
//! one thread.
//!
//! The soak harness must hold 10 000 connections open *simultaneously*
//! against one [`crate::pollserver::PollServer`]; spawning 10 000
//! blocking fetcher threads on a small CI box is exactly the failure
//! mode the poll runtime exists to avoid. So the client side reuses the
//! same machinery: every fetcher is a tiny state machine (write one
//! GET, decode one response via [`crate::proto::FrameDecoder`])
//! multiplexed on a [`crate::poll::PollSet`].
//!
//! Accounting is exhaustive by construction: every launched request
//! terminates in exactly one of `data` / `not_found` / `busy` /
//! `io_errors`, so "zero lost requests" is the arithmetic check
//! `data + not_found + busy + io_errors == total`.

use crate::poll::{fd_of, PollSet};
use crate::proto::{decode_response, encode_request, FrameDecoder, Request, Response};
use bytes::BytesMut;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Connections held open at once.
    pub concurrency: usize,
    /// Total GET requests to issue (one per connection).
    pub total_requests: usize,
    /// File name every fetcher asks for.
    pub name: String,
    /// Open every connection before any request is written, so the
    /// server demonstrably holds `concurrency` sockets at once.
    pub open_all_first: bool,
    /// New connections dialed per driver tick (bounds the time spent
    /// in blocking `connect` between poll rounds).
    pub connect_burst: usize,
    /// Give up on the whole run after this long.
    pub deadline: Duration,
}

impl LoadConfig {
    /// `n` fetchers, `n` requests, connect-then-fire.
    pub fn concurrent(n: usize, name: &str) -> Self {
        LoadConfig {
            concurrency: n,
            total_requests: n,
            name: name.to_string(),
            open_all_first: true,
            connect_burst: 512,
            deadline: Duration::from_secs(120),
        }
    }
}

/// What happened to every issued request, plus latency quantiles.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Responses carrying the file (integrity-verified).
    pub data: u64,
    /// `NotFound` replies.
    pub not_found: u64,
    /// `Busy` replies (threshold rejections).
    pub busy: u64,
    /// Connections that died before a decodable response.
    pub io_errors: u64,
    /// Total payload bytes received.
    pub bytes: u64,
    /// Most connections open at once (client view).
    pub peak_open: usize,
    /// Request latencies in microseconds (GET write → response decode).
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Worst latency, microseconds.
    pub max_us: f64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Requests that terminated in any accounted-for outcome.
    pub fn completed(&self) -> u64 {
        self.data + self.not_found + self.busy + self.io_errors
    }
}

struct Fetcher {
    stream: TcpStream,
    out: Vec<u8>,
    off: usize,
    dec: FrameDecoder,
    t0: Instant,
    firing: bool,
}

/// Runs `cfg.total_requests` GETs against `addr` with at most
/// `cfg.concurrency` connections open at once. Requests never vanish:
/// every one lands in exactly one [`LoadReport`] bucket, or the run
/// stops at the deadline with `completed() < total_requests`.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> io::Result<LoadReport> {
    let start = Instant::now();
    let deadline = start + cfg.deadline;
    let mut report = LoadReport::default();
    let mut latencies: Vec<f64> = Vec::with_capacity(cfg.total_requests.min(1 << 20));
    let mut conns: Vec<Option<Fetcher>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut launched = 0usize;
    let mut open = 0usize;
    let mut request = BytesMut::new();
    encode_request(&Request::Get(cfg.name.clone()), &mut request);
    let request = request.to_vec();
    let mut set = PollSet::new();
    let mut buf = vec![0u8; 64 << 10];

    while (report.completed() as usize) < cfg.total_requests {
        if Instant::now() > deadline {
            break;
        }

        // Dial new connections up to the concurrency cap.
        let want_open = if cfg.open_all_first {
            cfg.concurrency.min(cfg.total_requests)
        } else {
            0
        };
        let mut dialed = 0;
        while launched < cfg.total_requests && open < cfg.concurrency && dialed < cfg.connect_burst
        {
            let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
            stream.set_nonblocking(true)?;
            stream.set_nodelay(true)?;
            let f = Fetcher {
                stream,
                out: request.clone(),
                off: 0,
                dec: FrameDecoder::new(),
                t0: Instant::now(),
                firing: false,
            };
            match free.pop() {
                Some(i) => conns[i] = Some(f),
                None => conns.push(Some(f)),
            }
            launched += 1;
            open += 1;
            dialed += 1;
        }
        report.peak_open = report.peak_open.max(open);
        // In connect-then-fire mode nobody writes until the whole
        // cohort is connected.
        let hold_fire = cfg.open_all_first && open < want_open && launched < cfg.total_requests;

        set.clear();
        for (i, slot) in conns.iter().enumerate() {
            if let Some(f) = slot {
                let writable = !hold_fire && f.off < f.out.len();
                let readable = f.firing && f.off == f.out.len();
                if writable || readable {
                    set.register(fd_of(&f.stream), i as u64, readable, writable);
                }
            }
        }
        if set.is_empty() {
            continue;
        }
        set.wait(Duration::from_millis(5))?;

        let ready: Vec<(u64, crate::poll::Readiness)> = set.ready().collect();
        for (token, r) in ready {
            let i = token as usize;
            let mut done: Option<Result<Response, ()>> = None;
            if let Some(f) = conns[i].as_mut() {
                if (r.writable || r.closed) && f.off < f.out.len() {
                    if !f.firing {
                        f.firing = true;
                        f.t0 = Instant::now();
                    }
                    loop {
                        match f.stream.write(&f.out[f.off..]) {
                            Ok(0) => {
                                done = Some(Err(()));
                                break;
                            }
                            Ok(n) => {
                                f.off += n;
                                if f.off == f.out.len() {
                                    break;
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                done = Some(Err(()));
                                break;
                            }
                        }
                    }
                }
                if done.is_none() && (r.readable || r.closed) && f.off == f.out.len() {
                    loop {
                        match f.stream.read(&mut buf) {
                            Ok(0) => {
                                done = Some(Err(()));
                                break;
                            }
                            Ok(n) => {
                                f.dec.push(&buf[..n]);
                                match f.dec.next_frame() {
                                    Ok(Some(frame)) => {
                                        done = Some(decode_response(frame).map_err(|_| ()));
                                        break;
                                    }
                                    Ok(None) => continue,
                                    Err(_) => {
                                        done = Some(Err(()));
                                        break;
                                    }
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                            Err(_) => {
                                done = Some(Err(()));
                                break;
                            }
                        }
                    }
                }
            }
            if let Some(outcome) = done {
                let f = conns[i].take().expect("fetcher exists");
                free.push(i);
                open -= 1;
                latencies.push(f.t0.elapsed().as_micros() as f64);
                match outcome {
                    Ok(Response::Data(d)) => {
                        report.data += 1;
                        report.bytes += d.len() as u64;
                    }
                    Ok(Response::NotFound) => report.not_found += 1,
                    Ok(Response::Busy) => report.busy += 1,
                    Ok(Response::Pong) | Err(()) => report.io_errors += 1,
                }
            }
        }
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let q = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    report.p50_us = q(0.50);
    report.p99_us = q(0.99);
    report.max_us = latencies.last().copied().unwrap_or(0.0);
    report.elapsed = start.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pollserver::{PollServer, PollServerConfig};
    use crate::store::OutputStore;
    use bytes::Bytes;
    use std::sync::Arc;

    #[test]
    fn small_load_accounts_every_request() {
        let store = Arc::new(OutputStore::new());
        store.put("f", Bytes::from_static(b"payload"));
        let srv = PollServer::start(store, PollServerConfig::new(512)).unwrap();
        let cfg = LoadConfig::concurrent(50, "f");
        let report = run_load(srv.addr(), &cfg).unwrap();
        assert_eq!(report.completed(), 50, "zero lost requests");
        assert_eq!(report.data, 50);
        assert_eq!(report.io_errors, 0);
        assert_eq!(report.bytes, 50 * 7);
        assert!(report.p99_us >= report.p50_us);
        srv.shutdown();
    }

    #[test]
    fn threshold_rejections_are_counted() {
        let store = Arc::new(OutputStore::new());
        store.put("f", Bytes::from_static(b"x"));
        // Threshold 0: every GET is a Busy rejection, in both runtimes.
        let srv = PollServer::start(store, PollServerConfig::new(0)).unwrap();
        let report = run_load(srv.addr(), &LoadConfig::concurrent(20, "f")).unwrap();
        assert_eq!(report.busy, 20);
        assert_eq!(report.data, 0);
        assert_eq!(
            srv.stats
                .busy_rejections
                .load(std::sync::atomic::Ordering::Relaxed),
            20,
            "server and client must agree on the rejection count"
        );
        srv.shutdown();
    }
}
