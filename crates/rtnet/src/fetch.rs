//! Reducer-side download logic.
//!
//! Implements the paper's retry-then-fall-back rule: "After n failed
//! attempts, the user resorts to downloading the file from the server.
//! This … guarantees that a job's execution will not be stopped due to
//! transfer failures." (§III.C)

use crate::proto::{encode_request, read_response, write_all, Request, Response};
use bytes::{Bytes, BytesMut};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Why a single fetch attempt failed.
#[derive(Debug)]
pub enum FetchError {
    /// TCP/framing/integrity error.
    Io(io::Error),
    /// Peer answered NotFound (not serving / timed out / gated).
    NotFound,
    /// Peer answered Busy (connection threshold).
    Busy,
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Io(e) => write!(f, "io: {e}"),
            FetchError::NotFound => f.write_str("not found"),
            FetchError::Busy => f.write_str("peer busy"),
        }
    }
}

impl std::error::Error for FetchError {}

impl From<io::Error> for FetchError {
    fn from(e: io::Error) -> Self {
        FetchError::Io(e)
    }
}

/// One GET against one peer.
pub fn fetch_once(addr: SocketAddr, name: &str) -> Result<Bytes, FetchError> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    fetch_on_stream(stream, name)
}

fn fetch_on_stream(mut stream: TcpStream, name: &str) -> Result<Bytes, FetchError> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;
    let mut buf = BytesMut::new();
    encode_request(&Request::Get(name.to_string()), &mut buf);
    write_all(&mut stream, &buf)?;
    match read_response(&mut stream)? {
        Response::Data(d) => Ok(d),
        Response::NotFound => Err(FetchError::NotFound),
        Response::Busy => Err(FetchError::Busy),
        Response::Pong => Err(FetchError::Io(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected PONG",
        ))),
    }
}

/// One-shot plaintext HTTP GET against an operations endpoint (the
/// poll server's `/metrics` and `/dash` routes). Tiny on purpose — a
/// scrape client, not an HTTP library. Returns the body; a non-2xx
/// status surfaces as an error (`NotFound` for 404).
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<String> {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n")?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    match status {
        s if s.starts_with('2') => Ok(body.to_string()),
        "404" => Err(io::Error::new(io::ErrorKind::NotFound, "404")),
        s => Err(io::Error::other(format!("http status {s}"))),
    }
}

/// Fetch policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct FetchPolicy {
    /// Failed attempts per file before falling back to the server.
    pub peer_retry_limit: u32,
    /// Pause between retries.
    pub retry_delay: Duration,
}

impl Default for FetchPolicy {
    fn default() -> Self {
        FetchPolicy {
            peer_retry_limit: 3,
            retry_delay: Duration::from_millis(30),
        }
    }
}

/// Where a file was eventually obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchSource {
    /// Directly from a serving peer (BOINC-MR's fast path).
    Peer(usize),
    /// From the fall-back (project data server).
    Fallback,
}

/// Registry handles for the reducer-side download path.
#[derive(Clone)]
pub(crate) struct FetchObs {
    pub retries: vmr_obs::Counter,
    pub peer_fetches: vmr_obs::Counter,
    pub fallback_fetches: vmr_obs::Counter,
}

impl FetchObs {
    pub fn attach(obs: &vmr_obs::Obs) -> Self {
        FetchObs {
            retries: obs.counter("rtnet.fetch_retries"),
            peer_fetches: obs.counter("rtnet.peer_fetches"),
            fallback_fetches: obs.counter("rtnet.fallback_fetches"),
        }
    }
}

/// Walks `peers` round-robin with retries, then the fall-back address.
/// Returns the bytes and where they came from.
pub fn fetch_with_fallback(
    name: &str,
    peers: &[SocketAddr],
    fallback: Option<SocketAddr>,
    policy: &FetchPolicy,
) -> Result<(Bytes, FetchSource), FetchError> {
    fetch_with_fallback_obs(
        name,
        peers,
        fallback,
        policy,
        &FetchObs::attach(&vmr_obs::Obs::detached()),
    )
}

/// [`fetch_with_fallback`] with retry/fallback counters recorded into
/// pre-resolved registry handles.
pub(crate) fn fetch_with_fallback_obs(
    name: &str,
    peers: &[SocketAddr],
    fallback: Option<SocketAddr>,
    policy: &FetchPolicy,
    fobs: &FetchObs,
) -> Result<(Bytes, FetchSource), FetchError> {
    let mut last_err: Option<FetchError> = None;
    if !peers.is_empty() {
        for attempt in 0..policy.peer_retry_limit {
            let idx = attempt as usize % peers.len();
            match fetch_once(peers[idx], name) {
                Ok(b) => {
                    fobs.peer_fetches.inc();
                    return Ok((b, FetchSource::Peer(idx)));
                }
                Err(e) => {
                    last_err = Some(e);
                    fobs.retries.inc();
                    std::thread::sleep(policy.retry_delay);
                }
            }
        }
    }
    if let Some(addr) = fallback {
        match fetch_once(addr, name) {
            Ok(b) => {
                fobs.fallback_fetches.inc();
                return Ok((b, FetchSource::Fallback));
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or(FetchError::NotFound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::PeerServer;
    use crate::store::OutputStore;
    use std::sync::Arc;

    fn dead_addr() -> SocketAddr {
        // Bind-then-drop: nothing listens here afterwards.
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap()
    }

    fn server_with(name: &str, data: &[u8]) -> PeerServer {
        let store = Arc::new(OutputStore::new());
        store.put(name, Bytes::copy_from_slice(data));
        PeerServer::start(store, 8).unwrap()
    }

    #[test]
    fn falls_back_to_server_after_peer_failures() {
        let fallback = server_with("f", b"from-server");
        let peers = vec![dead_addr()];
        let (data, src) =
            fetch_with_fallback("f", &peers, Some(fallback.addr()), &FetchPolicy::default())
                .unwrap();
        assert_eq!(&data[..], b"from-server");
        assert_eq!(src, FetchSource::Fallback);
        fallback.shutdown();
    }

    #[test]
    fn prefers_peer_when_alive() {
        let peer = server_with("f", b"from-peer");
        let fallback = server_with("f", b"from-server");
        let (data, src) = fetch_with_fallback(
            "f",
            &[peer.addr()],
            Some(fallback.addr()),
            &FetchPolicy::default(),
        )
        .unwrap();
        assert_eq!(&data[..], b"from-peer");
        assert_eq!(src, FetchSource::Peer(0));
        peer.shutdown();
        fallback.shutdown();
    }

    #[test]
    fn second_peer_used_when_first_dead() {
        let peer2 = server_with("f", b"replica");
        let (data, src) = fetch_with_fallback(
            "f",
            &[dead_addr(), peer2.addr()],
            None,
            &FetchPolicy::default(),
        )
        .unwrap();
        assert_eq!(&data[..], b"replica");
        assert_eq!(src, FetchSource::Peer(1));
        peer2.shutdown();
    }

    #[test]
    fn total_failure_reports_error() {
        let err = fetch_with_fallback(
            "f",
            &[dead_addr()],
            None,
            &FetchPolicy {
                peer_retry_limit: 2,
                retry_delay: Duration::from_millis(1),
            },
        );
        assert!(err.is_err());
    }
}
