//! The volunteer-side file server.
//!
//! "We open a TCP \[socket\] for listening to incoming connections
//! whenever a map task has finished and its output(s) is available. We
//! dynamically adapt to the number of files being served, and stop
//! accepting connections when there are no more files available … We
//! kept a threshold for a maximum number of inter-client connections,
//! so as to not overload the network." (§III.C)

use crate::proto::{encode_response, read_request, write_all, Request, Response};
use crate::store::OutputStore;
use bytes::BytesMut;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Counters exposed by a running server.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// GET requests answered with data.
    pub served: AtomicU64,
    /// GETs refused: file unknown or outside its serving window.
    pub not_found: AtomicU64,
    /// GETs refused: connection threshold reached.
    pub busy_rejections: AtomicU64,
}

/// Registry handles every serving thread bumps; resolved once at
/// server start so the per-request cost stays at an atomic add.
/// Shared with [`crate::pollserver::PollServer`] so both runtimes
/// report under the same `rtnet.*` keys.
#[derive(Clone)]
pub(crate) struct ServeObs {
    pub(crate) served: vmr_obs::Counter,
    pub(crate) not_found: vmr_obs::Counter,
    pub(crate) busy: vmr_obs::Counter,
    pub(crate) gate_rejections: vmr_obs::Counter,
    pub(crate) serve_scope: vmr_obs::Scope,
}

impl ServeObs {
    pub(crate) fn attach(obs: &vmr_obs::Obs) -> Self {
        ServeObs {
            served: obs.counter("rtnet.served"),
            not_found: obs.counter("rtnet.not_found"),
            busy: obs.counter("rtnet.busy_rejections"),
            gate_rejections: obs.counter("rtnet.gate_rejections"),
            serve_scope: obs.scope("rtnet.serve"),
        }
    }
}

/// A serving endpoint for one volunteer's map outputs.
pub struct PeerServer {
    addr: SocketAddr,
    store: Arc<OutputStore>,
    stop: Arc<AtomicBool>,
    accepting: Arc<AtomicBool>,
    /// Live connection count (shared with handler threads).
    active: Arc<AtomicUsize>,
    /// Statistics.
    pub stats: Arc<ServerStats>,
    accept_thread: Option<JoinHandle<()>>,
}

impl PeerServer {
    /// Starts a server on an ephemeral loopback port, serving `store`,
    /// with at most `max_connections` concurrent transfers. Metrics go
    /// to a detached sink; use [`PeerServer::start_with_obs`] to share
    /// a live registry.
    pub fn start(store: Arc<OutputStore>, max_connections: usize) -> io::Result<PeerServer> {
        PeerServer::start_with_obs(store, max_connections, &vmr_obs::Obs::detached())
    }

    /// Like [`PeerServer::start`], recording request counters and
    /// serving-thread timings into `obs`.
    pub fn start_with_obs(
        store: Arc<OutputStore>,
        max_connections: usize,
        obs: &vmr_obs::Obs,
    ) -> io::Result<PeerServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepting = Arc::new(AtomicBool::new(true));
        let active = Arc::new(AtomicUsize::new(0));
        let stats = Arc::new(ServerStats::default());
        let sobs = ServeObs::attach(obs);

        let t_stop = stop.clone();
        let t_accepting = accepting.clone();
        let t_active = active.clone();
        let t_stats = stats.clone();
        let t_store = store.clone();
        let accept_thread = std::thread::spawn(move || {
            accept_loop(
                listener,
                t_store,
                t_stop,
                t_accepting,
                t_active,
                t_stats,
                sobs,
                max_connections,
            );
        });

        Ok(PeerServer {
            addr,
            store,
            stop,
            accepting,
            active,
            stats,
            accept_thread: Some(accept_thread),
        })
    }

    /// Address peers connect to (reported to the JobTracker as the
    /// mapper's "IP and port").
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<OutputStore> {
        &self.store
    }

    /// Gate accepting on/off ("stop accepting connections when there
    /// are no more files available for upload").
    pub fn set_accepting(&self, on: bool) {
        self.accepting.store(on, Ordering::SeqCst);
    }

    /// Currently active transfer count.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stops the server and joins the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PeerServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    store: Arc<OutputStore>,
    stop: Arc<AtomicBool>,
    accepting: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    stats: Arc<ServerStats>,
    sobs: ServeObs,
    max_connections: usize,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                handlers.retain(|h| !h.is_finished());
                let store = store.clone();
                let active = active.clone();
                let stats = stats.clone();
                let accepting = accepting.clone();
                let sobs = sobs.clone();
                let h = std::thread::spawn(move || {
                    handle_conn(
                        stream,
                        store,
                        active,
                        stats,
                        accepting,
                        sobs,
                        max_connections,
                    );
                });
                handlers.push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
    for h in handlers {
        let _ = h.join();
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_conn(
    mut stream: TcpStream,
    store: Arc<OutputStore>,
    active: Arc<AtomicUsize>,
    stats: Arc<ServerStats>,
    accepting: Arc<AtomicBool>,
    sobs: ServeObs,
    max_connections: usize,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    // One request per connection, like the prototype's simple sockets.
    let req = match read_request(&mut stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut buf = BytesMut::new();
    match req {
        Request::Ping => encode_response(&Response::Pong, &mut buf),
        Request::Get(name) => {
            if !accepting.load(Ordering::SeqCst) {
                stats.not_found.fetch_add(1, Ordering::Relaxed);
                sobs.not_found.inc();
                sobs.gate_rejections.inc();
                encode_response(&Response::NotFound, &mut buf)
            } else if active.fetch_add(1, Ordering::SeqCst) >= max_connections {
                active.fetch_sub(1, Ordering::SeqCst);
                stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                sobs.busy.inc();
                encode_response(&Response::Busy, &mut buf)
            } else {
                let _serve = sobs.serve_scope.enter();
                match store.get(&name) {
                    Some(data) => {
                        stats.served.fetch_add(1, Ordering::Relaxed);
                        sobs.served.inc();
                        encode_response(&Response::Data(data), &mut buf)
                    }
                    None => {
                        stats.not_found.fetch_add(1, Ordering::Relaxed);
                        sobs.not_found.inc();
                        encode_response(&Response::NotFound, &mut buf)
                    }
                }
                let _ = write_all(&mut stream, &buf);
                active.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        }
    }
    let _ = write_all(&mut stream, &buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::{fetch_once, FetchError};
    use bytes::Bytes;

    fn server_with(files: &[(&str, &[u8])], max_conn: usize) -> PeerServer {
        let store = Arc::new(OutputStore::new());
        for (n, d) in files {
            store.put(*n, Bytes::copy_from_slice(d));
        }
        PeerServer::start(store, max_conn).unwrap()
    }

    #[test]
    fn serves_stored_file() {
        let srv = server_with(&[("part0", b"the data")], 4);
        let got = fetch_once(srv.addr(), "part0").unwrap();
        assert_eq!(&got[..], b"the data");
        assert_eq!(srv.stats.served.load(Ordering::Relaxed), 1);
        srv.shutdown();
    }

    #[test]
    fn unknown_file_is_notfound() {
        let srv = server_with(&[], 4);
        match fetch_once(srv.addr(), "ghost") {
            Err(FetchError::NotFound) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
        srv.shutdown();
    }

    #[test]
    fn accept_gate_blocks_transfers() {
        let srv = server_with(&[("f", b"x")], 4);
        srv.set_accepting(false);
        match fetch_once(srv.addr(), "f") {
            Err(FetchError::NotFound) => {}
            other => panic!("expected NotFound when gated, got {other:?}"),
        }
        srv.set_accepting(true);
        assert!(fetch_once(srv.addr(), "f").is_ok());
        srv.shutdown();
    }

    #[test]
    fn ping_pong() {
        let srv = server_with(&[], 4);
        let mut stream = TcpStream::connect(srv.addr()).unwrap();
        let mut buf = BytesMut::new();
        encode_response(&Response::Pong, &mut buf); // warm the encoder path
        let mut req = BytesMut::new();
        crate::proto::encode_request(&Request::Ping, &mut req);
        write_all(&mut stream, &req).unwrap();
        let resp = crate::proto::read_response(&mut stream).unwrap();
        assert_eq!(resp, Response::Pong);
        srv.shutdown();
    }

    #[test]
    fn large_file_roundtrip() {
        let big: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
        let srv = server_with(&[("big", &big)], 4);
        let got = fetch_once(srv.addr(), "big").unwrap();
        assert_eq!(got.len(), big.len());
        assert_eq!(&got[..], &big[..]);
        srv.shutdown();
    }

    #[test]
    fn timed_out_file_not_served() {
        let store = Arc::new(OutputStore::new());
        store.put_with_timeout("f", Bytes::from_static(b"x"), Duration::from_millis(1));
        let srv = PeerServer::start(store.clone(), 4).unwrap();
        assert!(crate::wait::wait_until(
            || matches!(fetch_once(srv.addr(), "f"), Err(FetchError::NotFound)),
            Duration::from_secs(10)
        ));
        // Reset revives it — the reschedule path of §III.C.
        store.reset_timeout("f", Some(Duration::from_secs(30)));
        assert!(fetch_once(srv.addr(), "f").is_ok());
        srv.shutdown();
    }
}
