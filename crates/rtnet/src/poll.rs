//! Minimal readiness polling — the vendored stub-level `mio`
//! equivalent the event loop multiplexes on.
//!
//! One [`PollSet`] call replaces thousands of speculative nonblocking
//! `read`/`write` attempts: the caller registers every file descriptor
//! it owns with an interest mask, blocks in a single `poll(2)` syscall,
//! and walks the ready subset. The set is rebuilt every tick (a plain
//! `Vec` refill — ~80 ns/fd), which keeps registration state out of the
//! kernel and makes dropping a connection free.
//!
//! On targets without a usable `poll(2)` ABI the degraded fallback
//! reports every registered descriptor ready after a short sleep;
//! correctness is preserved because every caller uses nonblocking
//! sockets and treats `WouldBlock` as "not actually ready".

use std::io;
use std::time::Duration;

/// Raw file descriptor alias (kept local so the module compiles even
/// where `std::os::unix` is absent).
pub type Fd = i32;

/// What a descriptor is ready for, as reported by one [`PollSet::wait`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Readiness {
    /// Data (or an incoming connection, for listeners) can be read.
    pub readable: bool,
    /// The socket's send buffer has room.
    pub writable: bool,
    /// Hangup / error / invalid descriptor: the owner should be dropped.
    pub closed: bool,
}

#[repr(C)]
#[derive(Clone, Copy)]
struct RawPollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

#[cfg(all(unix, target_pointer_width = "64"))]
extern "C" {
    // `nfds_t` is `unsigned long` (= u64 on every 64-bit unix we build
    // for). libc is linked into every Rust binary, so the symbol is
    // always available without a libc crate dependency.
    fn poll(fds: *mut RawPollFd, nfds: u64, timeout: i32) -> i32;
    fn listen(sockfd: i32, backlog: i32) -> i32;
}

/// A rebuilt-per-tick interest set over raw file descriptors.
///
/// ```
/// # use vmr_rtnet::poll::PollSet;
/// let mut set = PollSet::new();
/// set.clear();
/// // set.register(fd, token, readable, writable) for every conn…
/// let _n = set.wait(std::time::Duration::from_millis(5)).unwrap();
/// for (_token, r) in set.ready() {
///     // drive the matching connection's state machine
///     let _ = r.readable;
/// }
/// ```
#[derive(Default)]
pub struct PollSet {
    fds: Vec<RawPollFd>,
    tokens: Vec<u64>,
}

impl PollSet {
    /// An empty set.
    pub fn new() -> Self {
        PollSet::default()
    }

    /// Drops every registration (capacity is kept for the next tick).
    pub fn clear(&mut self) {
        self.fds.clear();
        self.tokens.clear();
    }

    /// Registers `fd` under a caller-chosen `token` with the given
    /// interest mask. A registration with neither interest still
    /// reports hangups/errors.
    pub fn register(&mut self, fd: Fd, token: u64, readable: bool, writable: bool) {
        let mut events = 0i16;
        if readable {
            events |= POLLIN;
        }
        if writable {
            events |= POLLOUT;
        }
        self.fds.push(RawPollFd {
            fd,
            events,
            revents: 0,
        });
        self.tokens.push(token);
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Blocks until at least one descriptor is ready or `timeout`
    /// elapses; returns how many are ready.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn wait(&mut self, timeout: Duration) -> io::Result<usize> {
        if self.fds.is_empty() {
            std::thread::sleep(timeout);
            return Ok(0);
        }
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        loop {
            let rc = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as u64, ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Degraded fallback: report everything ready after a short sleep
    /// (callers use nonblocking sockets, so spurious readiness is
    /// harmless).
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn wait(&mut self, timeout: Duration) -> io::Result<usize> {
        std::thread::sleep(timeout.min(Duration::from_millis(1)));
        for f in &mut self.fds {
            f.revents = f.events;
        }
        Ok(self.fds.len())
    }

    /// Iterates `(token, readiness)` for the descriptors the last
    /// [`PollSet::wait`] reported ready.
    pub fn ready(&self) -> impl Iterator<Item = (u64, Readiness)> + '_ {
        self.fds
            .iter()
            .zip(self.tokens.iter())
            .filter(|(f, _)| f.revents != 0)
            .map(|(f, &token)| {
                (
                    token,
                    Readiness {
                        readable: f.revents & POLLIN != 0,
                        writable: f.revents & POLLOUT != 0,
                        closed: f.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                    },
                )
            })
    }
}

/// Raises a listening socket's accept backlog beyond std's default 128
/// (re-`listen(2)` on a listening socket updates the backlog on Linux).
/// Best-effort: soak-scale connect storms overflow a 128-slot queue and
/// stall on SYN retransmits otherwise.
#[cfg(all(unix, target_pointer_width = "64"))]
pub fn boost_backlog(listener: &std::net::TcpListener, backlog: i32) {
    use std::os::fd::AsRawFd;
    unsafe {
        let _ = listen(listener.as_raw_fd(), backlog);
    }
}

/// No-op on targets without the raw `listen(2)` ABI.
#[cfg(not(all(unix, target_pointer_width = "64")))]
pub fn boost_backlog(_listener: &std::net::TcpListener, _backlog: i32) {}

/// The raw descriptor of any socket-like object (thin wrapper so the
/// rest of the crate never imports `std::os::fd` directly).
#[cfg(all(unix, target_pointer_width = "64"))]
pub fn fd_of<T: std::os::fd::AsRawFd>(sock: &T) -> Fd {
    sock.as_raw_fd()
}

/// Degraded fallback: a sentinel descriptor (the fallback `wait`
/// ignores descriptors entirely).
#[cfg(not(all(unix, target_pointer_width = "64")))]
pub fn fd_of<T>(_sock: &T) -> Fd {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn listener_readable_when_connection_pending() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut set = PollSet::new();

        // Nothing pending: a short wait reports no readiness.
        set.clear();
        set.register(fd_of(&listener), 7, true, false);
        set.wait(Duration::from_millis(1)).unwrap();
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert_eq!(set.ready().count(), 0);

        // A pending connection flips POLLIN.
        let _client = TcpStream::connect(addr).unwrap();
        set.clear();
        set.register(fd_of(&listener), 7, true, false);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            set.wait(Duration::from_millis(10)).unwrap();
            if let Some((token, r)) = set.ready().next() {
                assert_eq!(token, 7);
                assert!(r.readable);
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no readiness in 5s");
        }
    }

    #[test]
    fn stream_writable_and_readable() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut served, _) = listener.accept().unwrap();

        let mut set = PollSet::new();
        set.clear();
        set.register(fd_of(&client), 1, true, true);
        set.wait(Duration::from_millis(50)).unwrap();
        let r = set.ready().next().expect("fresh socket must be writable").1;
        assert!(r.writable);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(!r.readable, "nothing sent yet");

        served.write_all(b"x").unwrap();
        served.flush().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            set.clear();
            set.register(fd_of(&client), 1, true, false);
            set.wait(Duration::from_millis(10)).unwrap();
            if set.ready().next().map(|(_, r)| r.readable) == Some(true) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no POLLIN in 5s");
        }
    }

    #[test]
    fn hangup_reported_as_closed() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (served, _) = listener.accept().unwrap();
        drop(client);

        let mut set = PollSet::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            set.clear();
            set.register(fd_of(&served), 3, true, false);
            set.wait(Duration::from_millis(10)).unwrap();
            if let Some((_, r)) = set.ready().next() {
                // Peer close shows as POLLIN (EOF) and usually POLLHUP.
                if r.readable || r.closed {
                    return;
                }
            }
            assert!(std::time::Instant::now() < deadline, "no hangup in 5s");
        }
    }
}
