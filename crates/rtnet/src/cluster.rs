//! A real pull-model MapReduce cluster on loopback TCP.
//!
//! Every element of BOINC-MR's §III design is exercised for real here,
//! not simulated: volunteers *pull* assignments from the coordinator
//! (communication is always worker-initiated), map outputs are
//! partitioned and served from per-volunteer TCP servers, reducers
//! download their slices from the mappers (with retry and server
//! fall-back), outputs are validated by replication + quorum over
//! SHA-256 fingerprints, and byzantine workers are outvoted.
//!
//! The coordinator plays the BOINC project server: it holds the input
//! chunks, the JobTracker state, and the fall-back copies of map
//! outputs ("this requires map outputs to be always returned to the
//! server").

use crate::fetch::{fetch_with_fallback_obs, FetchObs, FetchPolicy, FetchSource};
use crate::pollserver::{PollServer, PollServerConfig};
use crate::server::PeerServer;
use crate::store::OutputStore;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vmr_mapreduce::{
    decode_partition, run_map_task, run_reduce_task, sha256, split_input, HashPartitioner, JobSpec,
    MapReduceApp,
};

/// Cluster parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Volunteer worker threads.
    pub n_workers: usize,
    /// Job geometry.
    pub job: JobSpec,
    /// Replicas per task (1 = no validation; 2 = the paper's setup).
    pub replication: u32,
    /// Mapper-side concurrent serving threshold.
    pub max_serving_connections: usize,
    /// Download retry/fall-back policy.
    pub fetch: FetchPolicy,
    /// Workers whose outputs are corrupted (byzantine injection).
    pub byzantine: Vec<usize>,
    /// Workers whose peer servers are killed right after the map phase
    /// (forces the reducer fall-back path).
    pub kill_after_map: Vec<usize>,
    /// Whether mappers also push outputs to the coordinator (the
    /// fall-back copy). Must be true if `kill_after_map` is non-empty.
    pub map_outputs_to_server: bool,
    /// Serve with the nonblocking poll-loop runtime
    /// ([`crate::pollserver::PollServer`]) instead of the
    /// thread-per-connection [`PeerServer`]. Same protocol, same
    /// §III.C semantics — the differential suite keeps them honest.
    pub poll_runtime: bool,
}

impl ClusterConfig {
    /// A sane default: `n_workers` volunteers, replication 2.
    pub fn new(n_workers: usize, job: JobSpec) -> Self {
        ClusterConfig {
            n_workers,
            job,
            replication: 2,
            max_serving_connections: 6,
            fetch: FetchPolicy::default(),
            byzantine: Vec::new(),
            kill_after_map: Vec::new(),
            map_outputs_to_server: true,
            poll_runtime: false,
        }
    }
}

/// A serving endpoint under either runtime — the cluster plumbing is
/// agnostic to which one answers the sockets.
enum VolunteerServer {
    Threaded(PeerServer),
    Poll(PollServer),
}

impl VolunteerServer {
    fn start_with_obs(
        store: Arc<OutputStore>,
        max_connections: usize,
        obs: &vmr_obs::Obs,
        poll_runtime: bool,
    ) -> std::io::Result<VolunteerServer> {
        if poll_runtime {
            let cfg = PollServerConfig::new(max_connections);
            Ok(VolunteerServer::Poll(PollServer::start_with_obs(
                store, cfg, obs,
            )?))
        } else {
            Ok(VolunteerServer::Threaded(PeerServer::start_with_obs(
                store,
                max_connections,
                obs,
            )?))
        }
    }

    fn addr(&self) -> SocketAddr {
        match self {
            VolunteerServer::Threaded(s) => s.addr(),
            VolunteerServer::Poll(s) => s.addr(),
        }
    }

    fn shutdown(self) {
        match self {
            VolunteerServer::Threaded(s) => s.shutdown(),
            VolunteerServer::Poll(s) => s.shutdown(),
        }
    }
}

/// Transfer statistics of a run.
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Partitions fetched straight from peers.
    pub peer_fetches: AtomicU64,
    /// Partitions obtained from the coordinator fall-back.
    pub fallback_fetches: AtomicU64,
    /// Partitions read locally (reducer was a holder).
    pub local_reads: AtomicU64,
    /// Map replica executions.
    pub map_execs: AtomicU64,
    /// Reduce replica executions.
    pub reduce_execs: AtomicU64,
    /// Quorum rounds that failed and forced extra replicas.
    pub quorum_retries: AtomicU64,
}

/// Outcome of a cluster run.
pub struct ClusterReport<A: MapReduceApp> {
    /// Merged final output (all reduce partitions).
    pub output: BTreeMap<A::K, A::V>,
    /// Transfer/validation counters.
    pub stats: ClusterStats,
}

enum Assignment {
    Map {
        m: usize,
        range: std::ops::Range<usize>,
    },
    Reduce {
        r: usize,
        holders: Vec<Vec<SocketAddr>>,
    },
    Wait,
    Done,
}

enum ToCoord<A: MapReduceApp> {
    Register {
        worker: usize,
        addr: SocketAddr,
    },
    Request {
        worker: usize,
    },
    MapDone {
        worker: usize,
        m: usize,
        hashes: Vec<[u8; 32]>,
    },
    ReduceDone {
        worker: usize,
        r: usize,
        hash: [u8; 32],
        out: BTreeMap<A::K, A::V>,
    },
}

struct TaskTable {
    /// Per task: workers assigned so far.
    assigned: Vec<Vec<usize>>,
    /// Per task: `(worker, fingerprint)` of completed replicas.
    reported: Vec<Vec<(usize, [u8; 32])>>,
    /// Per task: validated holder workers (agreeing replicas).
    holders: Vec<Vec<usize>>,
    replication: u32,
}

impl TaskTable {
    fn new(n: usize, replication: u32) -> Self {
        TaskTable {
            assigned: vec![Vec::new(); n],
            reported: vec![Vec::new(); n],
            holders: vec![Vec::new(); n],
            replication,
        }
    }

    /// Picks a task needing another replica that `worker` has not run.
    fn pick(&mut self, worker: usize) -> Option<usize> {
        for t in 0..self.assigned.len() {
            if !self.holders[t].is_empty() {
                continue;
            }
            let outstanding = self.assigned[t].len() - self.reported[t].len();
            let needed = self.needed(t);
            if outstanding < needed && !self.assigned[t].contains(&worker) {
                self.assigned[t].push(worker);
                return Some(t);
            }
        }
        None
    }

    /// Replicas still required to possibly reach quorum.
    fn needed(&self, t: usize) -> usize {
        let q = self.replication as usize;
        let best_group = self.reported[t]
            .iter()
            .map(|(_, h)| self.reported[t].iter().filter(|(_, g)| g == h).count())
            .max()
            .unwrap_or(0);
        q.saturating_sub(best_group)
    }

    /// Records a completion; returns the holders if quorum was reached.
    fn report(&mut self, t: usize, worker: usize, hash: [u8; 32]) -> Option<Vec<usize>> {
        self.reported[t].push((worker, hash));
        let group: Vec<usize> = self.reported[t]
            .iter()
            .filter(|(_, h)| *h == hash)
            .map(|(w, _)| *w)
            .collect();
        if group.len() >= self.replication as usize {
            self.holders[t] = group.clone();
            Some(group)
        } else {
            None
        }
    }

    fn all_valid(&self) -> bool {
        self.holders.iter().all(|h| !h.is_empty())
    }
}

/// Runs a full MapReduce job on a real loopback TCP cluster.
///
/// # Panics
/// On unrecoverable protocol errors (worker thread panics) or if quorum
/// becomes impossible (more byzantine workers than honest ones).
pub fn run_cluster<A>(app: Arc<A>, data: Arc<Vec<u8>>, cfg: &ClusterConfig) -> ClusterReport<A>
where
    A: MapReduceApp<K = String> + 'static,
{
    run_cluster_with_obs(app, data, cfg, &vmr_obs::Obs::detached())
}

/// [`run_cluster`] recording transfer counters and serving timings into
/// a shared observability bundle (the peer servers, the coordinator's
/// data server and the reducer fetch path all report into it).
pub fn run_cluster_with_obs<A>(
    app: Arc<A>,
    data: Arc<Vec<u8>>,
    cfg: &ClusterConfig,
    obs: &vmr_obs::Obs,
) -> ClusterReport<A>
where
    A: MapReduceApp<K = String> + 'static,
{
    assert!(
        cfg.n_workers as u32 >= cfg.replication,
        "not enough workers"
    );
    if !cfg.kill_after_map.is_empty() {
        assert!(cfg.map_outputs_to_server, "fall-back needs server copies");
    }
    let ranges = split_input(app.as_ref(), &data, cfg.job.n_maps);
    let stats = Arc::new(ClusterStats::default());
    let cobs = ClusterObs::attach(obs);

    // The coordinator's fall-back store + server (the "data server").
    let server_store = Arc::new(OutputStore::new());
    let server = VolunteerServer::start_with_obs(server_store.clone(), 64, obs, cfg.poll_runtime)
        .expect("server start");
    let server_addr = server.addr();

    let (to_coord_tx, to_coord_rx): (Sender<ToCoord<A>>, Receiver<ToCoord<A>>) = unbounded();
    let mut reply_txs = Vec::new();
    let mut workers = Vec::new();
    for w in 0..cfg.n_workers {
        let (reply_tx, reply_rx) = unbounded::<Assignment>();
        reply_txs.push(reply_tx);
        let ctx = WorkerCtx {
            id: w,
            app: app.clone(),
            data: data.clone(),
            job: cfg.job.clone(),
            to_coord: to_coord_tx.clone(),
            reply: reply_rx,
            fetch: cfg.fetch,
            byzantine: cfg.byzantine.contains(&w),
            server_addr,
            server_store: cfg.map_outputs_to_server.then(|| server_store.clone()),
            max_serving: cfg.max_serving_connections,
            poll_runtime: cfg.poll_runtime,
            stats: stats.clone(),
            obs: obs.clone(),
            cobs: cobs.clone(),
        };
        workers.push(std::thread::spawn(move || worker_main(ctx)));
    }
    drop(to_coord_tx);

    let output = coordinator(cfg, &ranges, to_coord_rx, &reply_txs, &stats, &cobs);

    for w in workers {
        w.join().expect("worker panicked");
    }
    server.shutdown();
    let stats = Arc::try_unwrap(stats).expect("stats still shared");
    ClusterReport { output, stats }
}

/// The pull-model coordinator loop (the "project server").
fn coordinator<A: MapReduceApp<K = String>>(
    cfg: &ClusterConfig,
    ranges: &[std::ops::Range<usize>],
    rx: Receiver<ToCoord<A>>,
    replies: &[Sender<Assignment>],
    stats: &ClusterStats,
    cobs: &ClusterObs,
) -> BTreeMap<A::K, A::V> {
    let n_maps = cfg.job.n_maps;
    let n_reduces = cfg.job.n_reduces;
    let mut maps = TaskTable::new(n_maps, cfg.replication);
    let mut reduces = TaskTable::new(n_reduces, cfg.replication);
    // Mapper serving addresses, reported with MapDone.
    let mut worker_addrs: Vec<Option<SocketAddr>> = vec![None; cfg.n_workers];
    let mut reduce_outputs: Vec<Option<BTreeMap<A::K, A::V>>> = vec![None; n_reduces];
    let mut killed: Vec<usize> = Vec::new();

    while !(maps.all_valid() && reduces.all_valid()) {
        let msg = rx.recv().expect("all workers died");
        match msg {
            ToCoord::Register { worker, addr } => {
                worker_addrs[worker] = Some(addr);
            }
            ToCoord::Request { worker } => {
                let assignment = if !maps.all_valid() {
                    match maps.pick(worker) {
                        Some(m) => Assignment::Map {
                            m,
                            range: ranges[m].clone(),
                        },
                        None => Assignment::Wait,
                    }
                } else {
                    match reduces.pick(worker) {
                        Some(r) => {
                            // "the scheduler appends to each reduce
                            // result the address (IP and port) of
                            // mappers holding output for the same job"
                            let holders: Vec<Vec<SocketAddr>> = (0..n_maps)
                                .map(|m| {
                                    maps.holders[m]
                                        .iter()
                                        .filter(|w| !killed.contains(w))
                                        .filter_map(|&w| worker_addrs[w])
                                        .collect()
                                })
                                .collect();
                            Assignment::Reduce { r, holders }
                        }
                        None => Assignment::Wait,
                    }
                };
                let _ = replies[worker].send(assignment);
            }
            ToCoord::MapDone { worker, m, hashes } => {
                stats.map_execs.fetch_add(1, Ordering::Relaxed);
                cobs.map_execs.inc();
                // Fingerprint of the whole partition vector.
                let mut concat = Vec::with_capacity(hashes.len() * 32);
                for h in &hashes {
                    concat.extend_from_slice(h);
                }
                let fp = sha256(&concat);
                let before = maps.holders[m].is_empty();
                if maps.report(m, worker, fp).is_some() && before {
                    // Quorum reached. If this completes the map phase,
                    // simulate the §III.C fault injection: kill the
                    // chosen mappers' servers.
                    if maps.all_valid() {
                        for &k in &cfg.kill_after_map {
                            killed.push(k);
                        }
                    }
                } else if maps.holders[m].is_empty() && maps.needed(m) > 0 {
                    stats.quorum_retries.fetch_add(1, Ordering::Relaxed);
                    cobs.quorum_retries.inc();
                }
            }
            ToCoord::ReduceDone {
                worker,
                r,
                hash,
                out,
            } => {
                stats.reduce_execs.fetch_add(1, Ordering::Relaxed);
                cobs.reduce_execs.inc();
                let newly = reduces.report(r, worker, hash);
                if newly.is_some() && reduce_outputs[r].is_none() {
                    reduce_outputs[r] = Some(out);
                }
            }
        }
    }

    // Tell every worker to exit (answer pending + future requests).
    for tx in replies {
        let _ = tx.send(Assignment::Done);
    }
    // Drain remaining messages so senders never block (unbounded: no-op)
    // and merge the reduce outputs.
    let mut merged = BTreeMap::new();
    for out in reduce_outputs.into_iter().flatten() {
        merged.extend(out);
    }
    merged
}

/// Cluster-level counter mirrors of [`ClusterStats`].
#[derive(Clone)]
struct ClusterObs {
    local_reads: vmr_obs::Counter,
    map_execs: vmr_obs::Counter,
    reduce_execs: vmr_obs::Counter,
    quorum_retries: vmr_obs::Counter,
    fetch: FetchObs,
}

impl ClusterObs {
    fn attach(obs: &vmr_obs::Obs) -> Self {
        ClusterObs {
            local_reads: obs.counter("rtnet.local_reads"),
            map_execs: obs.counter("rtnet.map_execs"),
            reduce_execs: obs.counter("rtnet.reduce_execs"),
            quorum_retries: obs.counter("rtnet.quorum_retries"),
            fetch: FetchObs::attach(obs),
        }
    }
}

struct WorkerCtx<A: MapReduceApp> {
    id: usize,
    app: Arc<A>,
    data: Arc<Vec<u8>>,
    job: JobSpec,
    to_coord: Sender<ToCoord<A>>,
    reply: Receiver<Assignment>,
    fetch: FetchPolicy,
    byzantine: bool,
    server_addr: SocketAddr,
    server_store: Option<Arc<OutputStore>>,
    max_serving: usize,
    poll_runtime: bool,
    stats: Arc<ClusterStats>,
    obs: vmr_obs::Obs,
    cobs: ClusterObs,
}

fn worker_main<A: MapReduceApp<K = String>>(ctx: WorkerCtx<A>) {
    // Each volunteer runs its own serving endpoint.
    let store = Arc::new(OutputStore::new());
    let server =
        VolunteerServer::start_with_obs(store.clone(), ctx.max_serving, &ctx.obs, ctx.poll_runtime)
            .expect("peer server");
    // "Communication always starts from the client": the volunteer
    // announces its serving endpoint in its first message.
    let _ = ctx.to_coord.send(ToCoord::Register {
        worker: ctx.id,
        addr: server.addr(),
    });
    let part = HashPartitioner::new(ctx.job.n_reduces);
    // Pull loop with a small client-side backoff on Wait.
    let mut wait = Duration::from_millis(1);
    loop {
        if ctx
            .to_coord
            .send(ToCoord::Request { worker: ctx.id })
            .is_err()
        {
            break;
        }
        match ctx.reply.recv() {
            Ok(Assignment::Map { m, range }) => {
                wait = Duration::from_millis(1);
                let chunk = &ctx.data[range];
                let mo = run_map_task(ctx.app.as_ref(), chunk, &part, |k| k.as_bytes().to_vec());
                let mut hashes = Vec::with_capacity(ctx.job.n_reduces);
                for r in 0..ctx.job.n_reduces {
                    let mut text = mo.encode_partition(ctx.app.as_ref(), r).into_bytes();
                    if ctx.byzantine {
                        // Corrupt the payload — quorum must catch this.
                        text.extend_from_slice(b"corrupted-by-byzantine-worker\n");
                    }
                    let name = ctx.job.partition_file(m, r);
                    let data = Bytes::from(text);
                    hashes.push(sha256(&data));
                    store.put(&name, data.clone());
                    if let Some(srv) = &ctx.server_store {
                        // "map outputs … always returned to the server"
                        // (fall-back copies). First honest copy wins.
                        if !ctx.byzantine && srv.get(&name).is_none() {
                            srv.put(&name, data);
                        }
                    }
                }
                let _ = ctx.to_coord.send(ToCoord::MapDone {
                    worker: ctx.id,
                    m,
                    hashes,
                });
            }
            Ok(Assignment::Reduce { r, holders }) => {
                wait = Duration::from_millis(1);
                let my_addr = server.addr();
                let mut inputs = Vec::with_capacity(ctx.job.n_maps);
                for (m, peer_addrs) in holders.iter().enumerate() {
                    let name = ctx.job.partition_file(m, r);
                    // Holder locality: serve from our own store first.
                    if peer_addrs.contains(&my_addr) {
                        if let Some(local) = store.get(&name) {
                            ctx.stats.local_reads.fetch_add(1, Ordering::Relaxed);
                            ctx.cobs.local_reads.inc();
                            let text = String::from_utf8_lossy(&local);
                            inputs.push(decode_partition(ctx.app.as_ref(), &text));
                            continue;
                        }
                    }
                    let (bytes, src) = fetch_with_fallback_obs(
                        &name,
                        peer_addrs,
                        Some(ctx.server_addr),
                        &ctx.fetch,
                        &ctx.cobs.fetch,
                    )
                    .unwrap_or_else(|e| panic!("reduce input {name} unfetchable: {e}"));
                    match src {
                        FetchSource::Peer(_) => {
                            ctx.stats.peer_fetches.fetch_add(1, Ordering::Relaxed)
                        }
                        FetchSource::Fallback => {
                            ctx.stats.fallback_fetches.fetch_add(1, Ordering::Relaxed)
                        }
                    };
                    let text = String::from_utf8_lossy(&bytes);
                    inputs.push(decode_partition(ctx.app.as_ref(), &text));
                }
                let out = run_reduce_task(ctx.app.as_ref(), inputs);
                let mut enc = String::new();
                for (k, v) in &out {
                    ctx.app.encode(k, v, &mut enc);
                }
                let hash = sha256(enc.as_bytes());
                let _ = ctx.to_coord.send(ToCoord::ReduceDone {
                    worker: ctx.id,
                    r,
                    hash,
                    out,
                });
            }
            Ok(Assignment::Wait) => {
                std::thread::sleep(wait);
                // Client-side exponential backoff, like the real thing.
                wait = (wait * 2).min(Duration::from_millis(20));
            }
            Ok(Assignment::Done) | Err(_) => break,
        }
    }
    server.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_mapreduce::apps::WordCount;
    use vmr_mapreduce::run_sequential;

    fn corpus() -> Arc<Vec<u8>> {
        let mut gen = vmr_mapreduce::CorpusGen::new(&vmr_mapreduce::CorpusSpec {
            vocabulary: 500,
            exponent: 1.0,
            seed: 42,
        });
        Arc::new(gen.generate(200_000))
    }

    #[test]
    fn cluster_matches_oracle_replication_1() {
        let data = corpus();
        let mut cfg = ClusterConfig::new(4, JobSpec::new("wc", 6, 3));
        cfg.replication = 1;
        let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
        let oracle = run_sequential(&WordCount, &[&data[..]]);
        assert_eq!(report.output, oracle);
        assert_eq!(report.stats.map_execs.load(Ordering::Relaxed), 6);
        assert_eq!(report.stats.reduce_execs.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn cluster_matches_oracle_replication_2() {
        let data = corpus();
        let cfg = ClusterConfig::new(5, JobSpec::new("wc", 4, 2));
        let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
        let oracle = run_sequential(&WordCount, &[&data[..]]);
        assert_eq!(report.output, oracle);
        // Replication 2: every task executed (at least) twice.
        assert!(report.stats.map_execs.load(Ordering::Relaxed) >= 8);
        assert!(report.stats.reduce_execs.load(Ordering::Relaxed) >= 4);
        // Transfers actually happened over TCP (or locally for holders).
        let moved = report.stats.peer_fetches.load(Ordering::Relaxed)
            + report.stats.local_reads.load(Ordering::Relaxed)
            + report.stats.fallback_fetches.load(Ordering::Relaxed);
        assert_eq!(moved, 4 * 2 * 2, "4 maps × 2 reduce replicas × 2 reducers");
    }

    #[test]
    fn cluster_matches_oracle_on_poll_runtime() {
        let data = corpus();
        let mut cfg = ClusterConfig::new(5, JobSpec::new("wc", 4, 2));
        cfg.poll_runtime = true;
        let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
        let oracle = run_sequential(&WordCount, &[&data[..]]);
        assert_eq!(
            report.output, oracle,
            "poll-loop runtime must compute the same job"
        );
    }

    #[test]
    fn byzantine_mapper_outvoted() {
        let data = corpus();
        let mut cfg = ClusterConfig::new(5, JobSpec::new("wc", 3, 2));
        cfg.byzantine = vec![0];
        let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
        let oracle = run_sequential(&WordCount, &[&data[..]]);
        assert_eq!(
            report.output, oracle,
            "byzantine worker must not corrupt output"
        );
    }

    #[test]
    fn killed_mappers_force_fallback() {
        let data = corpus();
        let mut cfg = ClusterConfig::new(4, JobSpec::new("wc", 3, 2));
        cfg.replication = 1;
        // Kill every mapper's server after the map phase: reducers must
        // fall back to the coordinator for everything remote.
        cfg.kill_after_map = vec![0, 1, 2, 3];
        let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
        let oracle = run_sequential(&WordCount, &[&data[..]]);
        assert_eq!(report.output, oracle);
        assert!(
            report.stats.fallback_fetches.load(Ordering::Relaxed) > 0,
            "some fetches must have used the server fall-back"
        );
    }
}
