//! The nonblocking poll-loop file server — rtnet v2's runtime.
//!
//! [`crate::server::PeerServer`] proves the §III.C protocol with one
//! thread per connection; that caps a volunteer (and above all the
//! project's fall-back data server) at a few hundred concurrent peers.
//! [`PollServer`] keeps the exact same serving semantics — accept
//! gating, the max-inter-client-connection threshold, serving windows,
//! SHA-256-trailed frames — but multiplexes *every* connection on one
//! event loop (BOINC's daemons scale the same way):
//!
//! * per-connection read/write **state machines** drive the
//!   [`crate::proto`] framing incrementally ([`crate::proto::FrameDecoder`]),
//!   so a peer trickling one byte at a time costs a buffer append, not
//!   a blocked thread;
//! * a **connection pool** with idle-timeout reaping bounds kernel
//!   state held for silent peers;
//! * **backpressure** is explicit: responses queue per connection up to
//!   [`PollServerConfig::write_queue_limit`] bytes, and a connection
//!   over its limit is not read from until the queue drains;
//! * the §III.C threshold is enforced either as post-accept `Busy`
//!   replies (the threaded server's behaviour, kept for differential
//!   testing) or as **accept gating** — beyond the threshold the
//!   listener is simply not polled, so surplus peers wait in the
//!   kernel backlog instead of burning a connection on a rejection;
//! * an optional **operations endpoint** on the same loop serves the
//!   live metrics registry in plaintext exposition format
//!   (`GET /metrics`) and a text dashboard (`GET /dash`).
//!
//! The threaded server remains the executable spec: the differential
//! suite replays identical request schedules against both and demands
//! byte-identical responses and identical counter totals.

use crate::proto::{decode_request, encode_response, FrameDecoder, Request, Response};
use crate::server::{ServeObs, ServerStats};
use crate::store::OutputStore;
use bytes::BytesMut;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::poll::{fd_of, PollSet};

/// Tuning knobs of the poll-loop runtime.
#[derive(Clone, Debug)]
pub struct PollServerConfig {
    /// The §III.C max-inter-client-connection threshold.
    pub max_connections: usize,
    /// How the threshold is enforced. `false` (default): accept every
    /// connection and answer `Busy` once `max_connections` transfers
    /// are in flight — the threaded server's semantics. `true`: stop
    /// polling the listener while `max_connections` connections are
    /// open, so surplus peers queue in the kernel backlog and nobody
    /// is ever told `Busy`.
    pub accept_gating: bool,
    /// Connections idle longer than this are reaped.
    pub idle_timeout: Duration,
    /// Per-connection response-queue bound in bytes; a connection over
    /// the bound is not read from until the queue drains below it.
    pub write_queue_limit: usize,
    /// Serve `GET /metrics` + `GET /dash` on a second loopback
    /// listener owned by the same loop.
    pub metrics_endpoint: bool,
    /// Render the text dashboard every interval (readable through
    /// [`PollServer::last_dashboard`] and `GET /dash`).
    pub dashboard_every: Option<Duration>,
    /// Upper bound one loop tick blocks in `poll(2)`.
    pub poll_timeout: Duration,
    /// Kernel accept backlog hint (raised above std's 128 default so a
    /// soak-scale connect storm does not stall on SYN retransmits).
    pub backlog: i32,
}

impl Default for PollServerConfig {
    fn default() -> Self {
        PollServerConfig {
            max_connections: 64,
            accept_gating: false,
            idle_timeout: Duration::from_secs(30),
            write_queue_limit: 8 << 20,
            metrics_endpoint: false,
            dashboard_every: None,
            poll_timeout: Duration::from_millis(2),
            backlog: 4096,
        }
    }
}

impl PollServerConfig {
    /// Defaults with the given connection threshold.
    pub fn new(max_connections: usize) -> Self {
        PollServerConfig {
            max_connections,
            ..PollServerConfig::default()
        }
    }

    /// Builder-style: enforce the threshold by accept gating.
    pub fn with_accept_gating(mut self) -> Self {
        self.accept_gating = true;
        self
    }

    /// Builder-style: serve the operations endpoint.
    pub fn with_metrics_endpoint(mut self) -> Self {
        self.metrics_endpoint = true;
        self
    }

    /// Builder-style: idle-reap timeout.
    pub fn with_idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    /// Builder-style: periodic dashboard rendering.
    pub fn with_dashboard_every(mut self, t: Duration) -> Self {
        self.dashboard_every = Some(t);
        self
    }
}

/// Pre-resolved registry handles specific to the poll loop (the
/// request counters reuse [`ServeObs`], so both runtimes share the
/// same `rtnet.*` keys).
#[derive(Clone)]
struct PollObs {
    accepted: vmr_obs::Counter,
    reaped_idle: vmr_obs::Counter,
    backpressure_stalls: vmr_obs::Counter,
    proto_errors: vmr_obs::Counter,
    http_requests: vmr_obs::Counter,
    active_conns: vmr_obs::Gauge,
    serve_us: vmr_obs::Histo,
}

impl PollObs {
    fn attach(obs: &vmr_obs::Obs) -> Self {
        PollObs {
            accepted: obs.counter("rtnet.poll.accepted"),
            reaped_idle: obs.counter("rtnet.poll.reaped_idle"),
            backpressure_stalls: obs.counter("rtnet.poll.backpressure_stalls"),
            proto_errors: obs.counter("rtnet.poll.proto_errors"),
            http_requests: obs.counter("rtnet.poll.http_requests"),
            active_conns: obs.gauge("rtnet.poll.active_conns"),
            serve_us: obs.histogram("rtnet.poll.serve_us"),
        }
    }
}

/// A serving endpoint multiplexing every peer on one poll loop.
pub struct PollServer {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    store: Arc<OutputStore>,
    stop: Arc<AtomicBool>,
    accepting: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    open: Arc<AtomicUsize>,
    /// Request counters, same shape as the threaded server's.
    pub stats: Arc<ServerStats>,
    dashboard: Arc<Mutex<String>>,
    loop_thread: Option<JoinHandle<()>>,
}

impl PollServer {
    /// Starts the loop on an ephemeral loopback port with a detached
    /// metrics sink.
    pub fn start(store: Arc<OutputStore>, cfg: PollServerConfig) -> io::Result<PollServer> {
        PollServer::start_with_obs(store, cfg, &vmr_obs::Obs::detached())
    }

    /// Like [`PollServer::start`], recording into a shared registry
    /// (which is also what `GET /metrics` exposes).
    pub fn start_with_obs(
        store: Arc<OutputStore>,
        cfg: PollServerConfig,
        obs: &vmr_obs::Obs,
    ) -> io::Result<PollServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        crate::poll::boost_backlog(&listener, cfg.backlog);
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let metrics_listener = if cfg.metrics_endpoint {
            let l = TcpListener::bind(("127.0.0.1", 0))?;
            l.set_nonblocking(true)?;
            Some(l)
        } else {
            None
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let stop = Arc::new(AtomicBool::new(false));
        let accepting = Arc::new(AtomicBool::new(true));
        let active = Arc::new(AtomicUsize::new(0));
        let open = Arc::new(AtomicUsize::new(0));
        let stats = Arc::new(ServerStats::default());
        let dashboard = Arc::new(Mutex::new(String::new()));

        let mut lp = Loop {
            listener,
            metrics_listener,
            store: store.clone(),
            cfg,
            stop: stop.clone(),
            accepting: accepting.clone(),
            active: active.clone(),
            open: open.clone(),
            stats: stats.clone(),
            sobs: ServeObs::attach(obs),
            pobs: PollObs::attach(obs),
            obs: obs.clone(),
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            serving: 0,
            set: PollSet::new(),
            next_reap: Instant::now(),
            dash: vmr_obs::Dashboard::new("rtnet poll server", Duration::from_secs(1)),
            dashboard: dashboard.clone(),
        };
        let loop_thread = std::thread::spawn(move || lp.run());

        Ok(PollServer {
            addr,
            metrics_addr,
            store,
            stop,
            accepting,
            active,
            open,
            stats,
            dashboard,
            loop_thread: Some(loop_thread),
        })
    }

    /// Address peers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Address of the operations endpoint, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<OutputStore> {
        &self.store
    }

    /// Gate accepting on/off ("stop accepting connections when there
    /// are no more files available for upload"). Gated `GET`s are
    /// answered `NotFound`, exactly like the threaded server.
    pub fn set_accepting(&self, on: bool) {
        self.accepting.store(on, Ordering::SeqCst);
    }

    /// Transfers currently in flight (responses queued but not yet
    /// fully flushed) — the quantity the §III.C threshold bounds.
    pub fn active_transfers(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Open peer connections in the pool.
    pub fn open_connections(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// The most recently rendered periodic dashboard (empty until the
    /// first [`PollServerConfig::dashboard_every`] tick fires).
    pub fn last_dashboard(&self) -> String {
        self.dashboard.lock().unwrap().clone()
    }

    /// Stops the loop and joins it.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for PollServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
    }
}

/// One queued response and its accounting tail.
struct Pending {
    bytes: Vec<u8>,
    off: usize,
    /// Counts against the transfer threshold until fully flushed.
    serving: bool,
    /// Serve-latency clock, armed at request decode for `GET`s.
    t0: Option<Instant>,
}

enum ConnKind {
    /// Wire-protocol peer connection.
    Data(FrameDecoder),
    /// Operations-endpoint HTTP connection (request head accumulator).
    Http(Vec<u8>),
}

struct Conn {
    stream: TcpStream,
    kind: ConnKind,
    wq: VecDeque<Pending>,
    wq_bytes: usize,
    last_activity: Instant,
    close_after_flush: bool,
}

const TOK_DATA_LISTENER: u64 = u64::MAX;
const TOK_METRICS_LISTENER: u64 = u64::MAX - 1;

struct Loop {
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    store: Arc<OutputStore>,
    cfg: PollServerConfig,
    stop: Arc<AtomicBool>,
    accepting: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    open: Arc<AtomicUsize>,
    stats: Arc<ServerStats>,
    sobs: ServeObs,
    pobs: PollObs,
    obs: vmr_obs::Obs,
    /// Slab of connections; freed slots are recycled via `free`.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Live data-plane connections (excludes HTTP).
    live: usize,
    /// Transfers in flight (queued, unflushed `GET` responses).
    serving: usize,
    set: PollSet,
    next_reap: Instant,
    dash: vmr_obs::Dashboard,
    dashboard: Arc<Mutex<String>>,
}

impl Loop {
    fn run(&mut self) {
        while !self.stop.load(Ordering::SeqCst) {
            self.tick();
        }
    }

    fn tick(&mut self) {
        self.set.clear();
        // The listener is polled unless accept gating says the pool is
        // full — then surplus peers wait in the kernel backlog.
        let gated = self.cfg.accept_gating && self.live >= self.cfg.max_connections;
        if !gated {
            self.set
                .register(fd_of(&self.listener), TOK_DATA_LISTENER, true, false);
        }
        if let Some(ml) = &self.metrics_listener {
            self.set
                .register(fd_of(ml), TOK_METRICS_LISTENER, true, false);
        }
        for (i, slot) in self.conns.iter().enumerate() {
            if let Some(c) = slot {
                let backpressured = c.wq_bytes >= self.cfg.write_queue_limit;
                let readable = !backpressured && !c.close_after_flush;
                let writable = !c.wq.is_empty();
                self.set
                    .register(fd_of(&c.stream), i as u64, readable, writable);
            }
        }

        if self.set.wait(self.cfg.poll_timeout).is_err() {
            // EBADF etc. — a reaped fd raced registration; next tick
            // rebuilds the set from live connections only.
            return;
        }

        let ready: Vec<(u64, crate::poll::Readiness)> = self.set.ready().collect();
        for (token, r) in ready {
            match token {
                TOK_DATA_LISTENER => self.accept_data(),
                TOK_METRICS_LISTENER => self.accept_metrics(),
                i => {
                    let i = i as usize;
                    if r.writable || r.closed {
                        self.drive_write(i);
                    }
                    if r.readable || r.closed {
                        self.drive_read(i);
                    }
                }
            }
        }

        let now = Instant::now();
        if now >= self.next_reap {
            self.reap_idle(now);
            self.next_reap = now + self.cfg.idle_timeout.min(Duration::from_millis(100)) / 4;
        }
        if let Some(every) = self.cfg.dashboard_every {
            self.dash.set_interval(every);
            if self.dash.due(now) {
                let text = self.dash.render(&self.obs.snapshot());
                *self.dashboard.lock().unwrap() = text;
            }
        }
        self.pobs.active_conns.set(self.live as f64);
    }

    fn insert_conn(&mut self, stream: TcpStream, kind: ConnKind) {
        let is_data = matches!(kind, ConnKind::Data(_));
        let conn = Conn {
            stream,
            kind,
            wq: VecDeque::new(),
            wq_bytes: 0,
            last_activity: Instant::now(),
            close_after_flush: false,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.conns[i] = Some(conn);
                i
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        };
        debug_assert!(self.conns[idx].is_some());
        if is_data {
            self.live += 1;
            self.open.store(self.live, Ordering::SeqCst);
        }
        self.pobs.accepted.inc();
    }

    fn accept_data(&mut self) {
        loop {
            if self.cfg.accept_gating && self.live >= self.cfg.max_connections {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.insert_conn(stream, ConnKind::Data(FrameDecoder::new()));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn accept_metrics(&mut self) {
        loop {
            let Some(ml) = &self.metrics_listener else {
                return;
            };
            match ml.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    self.insert_conn(stream, ConnKind::Http(Vec::new()));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn drop_conn(&mut self, i: usize) {
        if let Some(conn) = self.conns[i].take() {
            // Unflushed transfers no longer count against the threshold.
            for p in &conn.wq {
                if p.serving {
                    self.serving -= 1;
                }
            }
            self.active.store(self.serving, Ordering::SeqCst);
            if matches!(conn.kind, ConnKind::Data(_)) {
                self.live -= 1;
                self.open.store(self.live, Ordering::SeqCst);
            }
            self.free.push(i);
        }
    }

    /// Reads everything available, drives the framing state machine,
    /// and queues responses until backpressure or exhaustion.
    fn drive_read(&mut self, i: usize) {
        let mut buf = [0u8; 16 << 10];
        loop {
            let Some(conn) = self.conns[i].as_mut() else {
                return;
            };
            if conn.wq_bytes >= self.cfg.write_queue_limit {
                self.pobs.backpressure_stalls.inc();
                return;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.close_after_flush = true;
                    if conn.wq.is_empty() {
                        self.drop_conn(i);
                    }
                    return;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    match &mut conn.kind {
                        ConnKind::Data(dec) => {
                            dec.push(&buf[..n]);
                            if !self.drain_frames(i) {
                                return;
                            }
                        }
                        ConnKind::Http(head) => {
                            head.extend_from_slice(&buf[..n]);
                            if !self.maybe_answer_http(i) {
                                return;
                            }
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    self.drop_conn(i);
                    return;
                }
            }
        }
    }

    /// Decodes and serves buffered frames. Returns false when the
    /// connection died.
    fn drain_frames(&mut self, i: usize) -> bool {
        loop {
            let Some(conn) = self.conns[i].as_mut() else {
                return false;
            };
            if conn.wq_bytes >= self.cfg.write_queue_limit {
                self.pobs.backpressure_stalls.inc();
                return true;
            }
            let ConnKind::Data(dec) = &mut conn.kind else {
                return true;
            };
            match dec.next_frame() {
                Ok(Some(frame)) => match decode_request(frame) {
                    Ok(req) => {
                        let pending = self.serve(req);
                        let Some(conn) = self.conns[i].as_mut() else {
                            return false;
                        };
                        if pending.serving {
                            self.serving += 1;
                            self.active.store(self.serving, Ordering::SeqCst);
                        }
                        conn.wq_bytes += pending.bytes.len();
                        conn.wq.push_back(pending);
                        // Flush opportunistically: in the common
                        // request/response cadence this saves a tick.
                        self.drive_write(i);
                        if self.conns[i].is_none() {
                            return false;
                        }
                    }
                    Err(_) => {
                        self.pobs.proto_errors.inc();
                        self.drop_conn(i);
                        return false;
                    }
                },
                Ok(None) => return true,
                Err(_) => {
                    self.pobs.proto_errors.inc();
                    self.drop_conn(i);
                    return false;
                }
            }
        }
    }

    /// The §III.C serving decision — deliberately the same rules, in
    /// the same order, as the threaded server's `handle_conn`.
    fn serve(&mut self, req: Request) -> Pending {
        let mut buf = BytesMut::new();
        match req {
            Request::Ping => {
                encode_response(&Response::Pong, &mut buf);
                Pending {
                    bytes: buf.to_vec(),
                    off: 0,
                    serving: false,
                    t0: None,
                }
            }
            Request::Get(name) => {
                let t0 = Instant::now();
                if !self.accepting.load(Ordering::SeqCst) {
                    self.stats.not_found.fetch_add(1, Ordering::Relaxed);
                    self.sobs.not_found.inc();
                    self.sobs.gate_rejections.inc();
                    encode_response(&Response::NotFound, &mut buf);
                    Pending {
                        bytes: buf.to_vec(),
                        off: 0,
                        serving: false,
                        t0: None,
                    }
                } else if !self.cfg.accept_gating && self.serving >= self.cfg.max_connections {
                    self.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    self.sobs.busy.inc();
                    encode_response(&Response::Busy, &mut buf);
                    Pending {
                        bytes: buf.to_vec(),
                        off: 0,
                        serving: false,
                        t0: None,
                    }
                } else {
                    let _serve = self.sobs.serve_scope.enter();
                    match self.store.get(&name) {
                        Some(data) => {
                            self.stats.served.fetch_add(1, Ordering::Relaxed);
                            self.sobs.served.inc();
                            encode_response(&Response::Data(data), &mut buf);
                        }
                        None => {
                            self.stats.not_found.fetch_add(1, Ordering::Relaxed);
                            self.sobs.not_found.inc();
                            encode_response(&Response::NotFound, &mut buf);
                        }
                    }
                    Pending {
                        bytes: buf.to_vec(),
                        off: 0,
                        serving: true,
                        t0: Some(t0),
                    }
                }
            }
        }
    }

    /// Flushes the write queue until `WouldBlock` or empty.
    fn drive_write(&mut self, i: usize) {
        loop {
            let Some(conn) = self.conns[i].as_mut() else {
                return;
            };
            let Some(front) = conn.wq.front_mut() else {
                if conn.close_after_flush {
                    self.drop_conn(i);
                }
                return;
            };
            match conn.stream.write(&front.bytes[front.off..]) {
                Ok(0) => {
                    self.drop_conn(i);
                    return;
                }
                Ok(n) => {
                    front.off += n;
                    conn.wq_bytes -= n;
                    conn.last_activity = Instant::now();
                    if front.off == front.bytes.len() {
                        let done = conn.wq.pop_front().expect("front exists");
                        if done.serving {
                            self.serving -= 1;
                            self.active.store(self.serving, Ordering::SeqCst);
                        }
                        if let Some(t0) = done.t0 {
                            self.pobs.serve_us.record(t0.elapsed().as_micros() as f64);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(i);
                    return;
                }
            }
        }
    }

    /// Answers a buffered HTTP request head once complete. Returns
    /// false when the connection died.
    fn maybe_answer_http(&mut self, i: usize) -> bool {
        let Some(conn) = self.conns[i].as_mut() else {
            return false;
        };
        let ConnKind::Http(head) = &conn.kind else {
            return true;
        };
        let complete = head.windows(4).any(|w| w == b"\r\n\r\n");
        if !complete && head.len() <= 8192 {
            return true;
        }
        let path = parse_http_path(head);
        self.pobs.http_requests.inc();
        let (status, body) = match path.as_deref() {
            Some("/metrics") => ("200 OK", vmr_obs::render_prometheus(&self.obs.snapshot())),
            Some("/dash") => {
                let last = self.dashboard.lock().unwrap().clone();
                let body = if last.is_empty() {
                    vmr_obs::render_dashboard(&self.obs.snapshot(), "rtnet poll server")
                } else {
                    last
                };
                ("200 OK", body)
            }
            Some(_) => ("404 Not Found", "not found\n".to_string()),
            None => ("400 Bad Request", "bad request\n".to_string()),
        };
        let resp = format!(
            "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let Some(conn) = self.conns[i].as_mut() else {
            return false;
        };
        conn.wq_bytes += resp.len();
        conn.wq.push_back(Pending {
            bytes: resp.into_bytes(),
            off: 0,
            serving: false,
            t0: None,
        });
        conn.close_after_flush = true;
        self.drive_write(i);
        self.conns[i].is_some()
    }

    fn reap_idle(&mut self, now: Instant) {
        let timeout = self.cfg.idle_timeout;
        for i in 0..self.conns.len() {
            let reap = match &self.conns[i] {
                Some(c) => now.duration_since(c.last_activity) > timeout,
                None => false,
            };
            if reap {
                self.pobs.reaped_idle.inc();
                self.drop_conn(i);
            }
        }
    }
}

/// Extracts the request path from an HTTP/1.x request head.
fn parse_http_path(head: &[u8]) -> Option<String> {
    let text = std::str::from_utf8(head).ok()?;
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    if method != "GET" {
        return None;
    }
    let path = parts.next()?;
    Some(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::{fetch_once, http_get, FetchError};
    use crate::wait::wait_until;
    use bytes::Bytes;

    fn server_with(files: &[(&str, &[u8])], cfg: PollServerConfig) -> PollServer {
        let store = Arc::new(OutputStore::new());
        for (n, d) in files {
            store.put(*n, Bytes::copy_from_slice(d));
        }
        PollServer::start(store, cfg).unwrap()
    }

    #[test]
    fn serves_stored_file() {
        let srv = server_with(&[("part0", b"the data")], PollServerConfig::new(4));
        let got = fetch_once(srv.addr(), "part0").unwrap();
        assert_eq!(&got[..], b"the data");
        assert_eq!(srv.stats.served.load(Ordering::Relaxed), 1);
        srv.shutdown();
    }

    #[test]
    fn unknown_file_is_notfound_and_gate_blocks() {
        let srv = server_with(&[("f", b"x")], PollServerConfig::new(4));
        assert!(matches!(
            fetch_once(srv.addr(), "ghost"),
            Err(FetchError::NotFound)
        ));
        srv.set_accepting(false);
        assert!(matches!(
            fetch_once(srv.addr(), "f"),
            Err(FetchError::NotFound)
        ));
        srv.set_accepting(true);
        assert!(fetch_once(srv.addr(), "f").is_ok());
        srv.shutdown();
    }

    #[test]
    fn large_file_roundtrip() {
        let big: Vec<u8> = (0..3_000_000u32).map(|i| (i % 251) as u8).collect();
        let srv = server_with(&[("big", &big)], PollServerConfig::new(4));
        let got = fetch_once(srv.addr(), "big").unwrap();
        assert_eq!(&got[..], &big[..]);
        srv.shutdown();
    }

    #[test]
    fn persistent_connection_serves_many_requests() {
        use crate::proto::{encode_request, read_response, write_all};
        let srv = server_with(&[("f", b"payload")], PollServerConfig::new(4));
        let mut stream = TcpStream::connect(srv.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for _ in 0..5 {
            let mut req = BytesMut::new();
            encode_request(&Request::Get("f".into()), &mut req);
            write_all(&mut stream, &req).unwrap();
            match read_response(&mut stream).unwrap() {
                Response::Data(d) => assert_eq!(&d[..], b"payload"),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(srv.stats.served.load(Ordering::Relaxed), 5);
        srv.shutdown();
    }

    #[test]
    fn threshold_zero_always_busy() {
        let srv = server_with(&[("f", b"x")], PollServerConfig::new(0));
        assert!(matches!(fetch_once(srv.addr(), "f"), Err(FetchError::Busy)));
        assert_eq!(srv.stats.busy_rejections.load(Ordering::Relaxed), 1);
        srv.shutdown();
    }

    #[test]
    fn accept_gating_never_says_busy() {
        let cfg = PollServerConfig::new(1).with_accept_gating();
        let srv = server_with(&[("f", b"x")], cfg);
        // Hold one connection open so the pool is full.
        let held = TcpStream::connect(srv.addr()).unwrap();
        assert!(wait_until(
            || srv.open_connections() == 1,
            Duration::from_secs(5)
        ));
        // A second fetch queues in the backlog and succeeds once the
        // held connection is reaped/closed — never a Busy reply.
        let addr = srv.addr();
        let fetcher = std::thread::spawn(move || fetch_once(addr, "f"));
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        let got = fetcher.join().unwrap().unwrap();
        assert_eq!(&got[..], b"x");
        assert_eq!(srv.stats.busy_rejections.load(Ordering::Relaxed), 0);
        srv.shutdown();
    }

    #[test]
    fn idle_connections_are_reaped() {
        let cfg = PollServerConfig::new(4).with_idle_timeout(Duration::from_millis(50));
        let srv = server_with(&[], cfg);
        let _conn = TcpStream::connect(srv.addr()).unwrap();
        assert!(wait_until(
            || srv.open_connections() == 1,
            Duration::from_secs(5)
        ));
        assert!(
            wait_until(|| srv.open_connections() == 0, Duration::from_secs(10)),
            "idle connection must be reaped"
        );
        srv.shutdown();
    }

    #[test]
    fn serving_window_enforced() {
        let store = Arc::new(OutputStore::new());
        store.put_with_timeout("f", Bytes::from_static(b"x"), Duration::from_millis(1));
        let srv = PollServer::start(store.clone(), PollServerConfig::new(4)).unwrap();
        assert!(wait_until(
            || matches!(fetch_once(srv.addr(), "f"), Err(FetchError::NotFound)),
            Duration::from_secs(10)
        ));
        store.reset_timeout("f", Some(Duration::from_secs(30)));
        assert!(fetch_once(srv.addr(), "f").is_ok());
        srv.shutdown();
    }

    #[test]
    fn metrics_endpoint_scrapes() {
        let obs = vmr_obs::Obs::new();
        let store = Arc::new(OutputStore::new());
        store.put("f", Bytes::from_static(b"x"));
        let cfg = PollServerConfig::new(4).with_metrics_endpoint();
        let srv = PollServer::start_with_obs(store, cfg, &obs).unwrap();
        let maddr = srv.metrics_addr().expect("metrics endpoint enabled");
        fetch_once(srv.addr(), "f").unwrap();
        let text = http_get(maddr, "/metrics").unwrap();
        assert!(
            text.contains("rtnet_served 1"),
            "exposition must carry the served counter:\n{text}"
        );
        let dash = http_get(maddr, "/dash").unwrap();
        assert!(dash.contains("rtnet poll server"));
        let missing = http_get(maddr, "/nope").unwrap_err();
        assert_eq!(missing.kind(), io::ErrorKind::NotFound);
        srv.shutdown();
    }
}
