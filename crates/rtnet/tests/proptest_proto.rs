//! Deterministic protocol-framing property tests for the incremental
//! decoder behind the poll runtime.
//!
//! A nonblocking transport delivers bytes in arbitrary fragments: one
//! byte at a time, several frames coalesced into one read, a frame's
//! length prefix split across reads. [`FrameDecoder`] must be
//! indifferent to all of it. These properties drive the decoder through
//! an in-memory transport that fragments and coalesces the encoded
//! stream at random cut points and demand:
//!
//! * **split-invariance** — every fragmentation of the same stream
//!   decodes to the same message sequence;
//! * **clean truncation** — a stream cut mid-frame yields the complete
//!   prefix then "need more bytes", never an error or panic, and a
//!   *frame payload* cut short always decodes to an error;
//! * **panic-freedom** — arbitrary junk never panics the decoder.
//!
//! The vendored proptest runner is seeded deterministically, so every
//! run replays the same cases.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use vmr_rtnet::proto::{
    decode_request, decode_response, encode_request, encode_response, FrameDecoder, Request,
    Response,
};

/// One generated protocol message, either direction.
#[derive(Clone, Debug, PartialEq)]
enum Msg {
    Req(Request),
    Resp(Response),
}

fn encode(msg: &Msg, out: &mut BytesMut) {
    match msg {
        Msg::Req(r) => encode_request(r, out),
        Msg::Resp(r) => encode_response(r, out),
    }
}

fn decode(msg: &Msg, frame: BytesMut) -> std::io::Result<Msg> {
    match msg {
        Msg::Req(_) => decode_request(frame).map(Msg::Req),
        Msg::Resp(_) => decode_response(frame).map(Msg::Resp),
    }
}

/// Builds a message from a selector byte plus raw material.
fn make_msg(sel: u8, name: String, body: Vec<u8>) -> Msg {
    match sel % 6 {
        0 => Msg::Req(Request::Ping),
        1 => Msg::Req(Request::Get(name)),
        2 => Msg::Resp(Response::NotFound),
        3 => Msg::Resp(Response::Busy),
        4 => Msg::Resp(Response::Pong),
        _ => Msg::Resp(Response::Data(Bytes::from(body))),
    }
}

/// Splits `stream` at the (deduplicated, sorted) fractional cut points
/// and pushes the fragments through a fresh decoder, collecting every
/// complete frame.
fn decode_fragmented(stream: &[u8], cuts: &[f64]) -> std::io::Result<Vec<BytesMut>> {
    let mut positions: Vec<usize> = cuts
        .iter()
        .map(|f| (*f * stream.len() as f64) as usize)
        .collect();
    positions.push(0);
    positions.push(stream.len());
    positions.sort_unstable();
    positions.dedup();

    let mut dec = FrameDecoder::new();
    let mut frames = Vec::new();
    for pair in positions.windows(2) {
        dec.push(&stream[pair[0]..pair[1]]);
        while let Some(frame) = dec.next_frame()? {
            frames.push(frame);
        }
    }
    Ok(frames)
}

proptest! {
    /// Whatever the fragmentation, the decoded message sequence is the
    /// one that was encoded.
    #[test]
    fn any_split_decodes_identically(
        raw in proptest::collection::vec(
            (0u8..=255, "[a-zA-Z0-9_./-]{0,40}", proptest::collection::vec(0u8..=255, 0..512)),
            1..10,
        ),
        cuts in proptest::collection::vec(0.0f64..1.0, 0..24),
    ) {
        let msgs: Vec<Msg> = raw
            .into_iter()
            .map(|(sel, name, body)| make_msg(sel, name, body))
            .collect();
        let mut stream = BytesMut::new();
        for m in &msgs {
            encode(m, &mut stream);
        }
        let frames = decode_fragmented(&stream, &cuts).expect("valid stream never errors");
        prop_assert_eq!(frames.len(), msgs.len());
        for (msg, frame) in msgs.iter().zip(frames) {
            let back = decode(msg, frame).expect("complete frame decodes");
            prop_assert_eq!(&back, msg);
        }
    }

    /// A stream truncated mid-frame decodes its complete prefix and
    /// then reports "need more bytes" — no error, no phantom frame.
    #[test]
    fn truncated_stream_yields_only_complete_prefix(
        raw in proptest::collection::vec(
            (0u8..=255, "[a-z]{0,20}", proptest::collection::vec(0u8..=255, 0..128)),
            1..8,
        ),
        cut_frac in 0.0f64..1.0,
        cuts in proptest::collection::vec(0.0f64..1.0, 0..8),
    ) {
        let msgs: Vec<Msg> = raw
            .into_iter()
            .map(|(sel, name, body)| make_msg(sel, name, body))
            .collect();
        // Frame boundaries, to know how many frames survive the cut.
        let mut stream = BytesMut::new();
        let mut boundaries = Vec::with_capacity(msgs.len());
        for m in &msgs {
            encode(m, &mut stream);
            boundaries.push(stream.len());
        }
        let cut = (cut_frac * stream.len() as f64) as usize;
        let complete = boundaries.iter().filter(|b| **b <= cut).count();

        let frames =
            decode_fragmented(&stream[..cut], &cuts).expect("truncation is not an error");
        prop_assert_eq!(frames.len(), complete, "exactly the complete prefix");
        for (msg, frame) in msgs.iter().zip(frames) {
            prop_assert_eq!(&decode(msg, frame).expect("complete frame"), msg);
        }
    }

    /// Every *strict prefix* of a frame payload fails to decode — with
    /// an error, never a panic or a bogus success.
    #[test]
    fn truncated_payload_errors_cleanly(
        sel in 0u8..=255,
        name in "[a-zA-Z0-9]{1,32}",
        body in proptest::collection::vec(0u8..=255, 1..256),
        trunc_frac in 0.0f64..1.0,
    ) {
        let msg = make_msg(sel, name, body);
        let mut framed = BytesMut::new();
        encode(&msg, &mut framed);
        let payload = &framed[4..]; // strip the length prefix
        let keep = (trunc_frac * payload.len() as f64) as usize;
        prop_assume!(keep < payload.len());
        let cut = BytesMut::from(&payload[..keep]);
        // Only the matching decoder is constrained: a response prefix
        // may coincidentally parse as some *request*, but it must never
        // decode as a valid message of its own kind.
        prop_assert!(
            decode(&msg, cut).is_err(),
            "strict payload prefix must not decode"
        );
    }

    /// Arbitrary junk, arbitrarily fragmented, never panics the
    /// decoder; it either errors or keeps waiting for more bytes.
    #[test]
    fn junk_never_panics(
        junk in proptest::collection::vec(0u8..=255, 0..2048),
        cuts in proptest::collection::vec(0.0f64..1.0, 0..16),
    ) {
        match decode_fragmented(&junk, &cuts) {
            Ok(frames) => {
                for frame in frames {
                    let _ = decode_request(frame.clone());
                    let _ = decode_response(frame);
                }
            }
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::InvalidData),
        }
    }

    /// Degenerate delivery — one byte per push — still decodes exactly.
    #[test]
    fn byte_at_a_time_decodes(
        sel in 0u8..=255,
        name in "[a-zA-Z0-9_.]{0,24}",
        body in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        let msg = make_msg(sel, name, body);
        let mut stream = BytesMut::new();
        encode(&msg, &mut stream);
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for (i, b) in stream.iter().enumerate() {
            dec.push(std::slice::from_ref(b));
            if let Some(frame) = dec.next_frame().expect("valid stream") {
                prop_assert_eq!(i, stream.len() - 1, "frame only after the last byte");
                got = Some(frame);
            }
        }
        let back = decode(&msg, got.expect("one frame")).expect("decodes");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(dec.buffered(), 0);
    }
}
