//! Property tests for the wire protocol and real-cluster invariants.

use bytes::{Bytes, BytesMut};
use proptest::prelude::*;
use std::io::Cursor;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use vmr_mapreduce::apps::WordCount;
use vmr_mapreduce::{run_sequential, JobSpec};
use vmr_rtnet::proto::{
    encode_request, encode_response, read_request, read_response, Request, Response,
};
use vmr_rtnet::{run_cluster, ClusterConfig};

proptest! {
    /// Any GET name round-trips through the frame codec.
    #[test]
    fn request_roundtrip(name in "[a-zA-Z0-9_./-]{0,64}") {
        let mut buf = BytesMut::new();
        encode_request(&Request::Get(name.clone()), &mut buf);
        let back = read_request(&mut Cursor::new(buf.to_vec())).unwrap();
        prop_assert_eq!(back, Request::Get(name));
    }

    /// Any payload round-trips through DATA with its integrity trailer.
    #[test]
    fn response_roundtrip(body in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut buf = BytesMut::new();
        encode_response(&Response::Data(Bytes::from(body.clone())), &mut buf);
        match read_response(&mut Cursor::new(buf.to_vec())).unwrap() {
            Response::Data(d) => prop_assert_eq!(&d[..], &body[..]),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Flipping any single byte of a DATA frame's body or digest is
    /// detected (either as a framing error or an integrity failure).
    #[test]
    fn corruption_always_detected(
        body in proptest::collection::vec(any::<u8>(), 1..512),
        flip_at_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut buf = BytesMut::new();
        encode_response(&Response::Data(Bytes::from(body.clone())), &mut buf);
        let mut raw = buf.to_vec();
        // Only flip inside body+digest (skip 4 len + 1 tag + 8 body_len).
        let start = 13;
        let idx = start + ((raw.len() - start - 1) as f64 * flip_at_frac) as usize;
        raw[idx] ^= 1 << flip_bit;
        let res = read_response(&mut Cursor::new(raw));
        prop_assert!(res.is_err(), "corruption at byte {} went undetected", idx);
    }

    /// Arbitrary junk never panics the decoder (errors only).
    #[test]
    fn decoder_is_panic_free(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_request(&mut Cursor::new(junk.clone()));
        let _ = read_response(&mut Cursor::new(junk));
    }
}

/// Real-cluster property: for random small corpora and geometries, the
/// TCP cluster equals the oracle (fewer cases than a pure proptest —
/// each case spins up real threads and sockets).
#[test]
fn cluster_equals_oracle_random_geometries() {
    let mut runner =
        proptest::test_runner::TestRunner::new(proptest::test_runner::Config { cases: 8 });
    runner
        .run(
            &(
                proptest::collection::vec("[a-e]{1,5}", 10..200),
                2usize..6,
                1usize..4,
                2usize..5,
            ),
            |(words, n_maps, n_reduces, n_workers)| {
                let data = Arc::new(words.join(" ").into_bytes());
                let mut cfg = ClusterConfig::new(n_workers, JobSpec::new("wc", n_maps, n_reduces));
                cfg.replication = if n_workers >= 2 { 2 } else { 1 };
                let report = run_cluster(Arc::new(WordCount), data.clone(), &cfg);
                let oracle = run_sequential(&WordCount, &[&data[..]]);
                prop_assert_eq!(report.output, oracle);
                Ok(())
            },
        )
        .unwrap();
}

/// The serving-connection threshold really rejects concurrent GETs.
#[test]
fn busy_threshold_enforced_under_concurrency() {
    use vmr_rtnet::{fetch_once, FetchError, OutputStore, PeerServer};
    let store = Arc::new(OutputStore::new());
    // A large file so transfers overlap.
    store.put("big", Bytes::from(vec![7u8; 8 << 20]));
    let srv = PeerServer::start(store, 1).unwrap(); // threshold: 1
    let addr = srv.addr();
    let mut handles = Vec::new();
    for _ in 0..6 {
        handles.push(std::thread::spawn(move || fetch_once(addr, "big")));
    }
    let mut ok = 0;
    let mut busy = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(d) => {
                assert_eq!(d.len(), 8 << 20);
                ok += 1;
            }
            Err(FetchError::Busy) => busy += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(ok >= 1, "at least one transfer must succeed");
    assert!(
        busy >= 1,
        "with threshold 1 and 6 concurrent fetches, some must be rejected Busy"
    );
    assert!(srv.stats.busy_rejections.load(Ordering::Relaxed) >= busy as u64);
    srv.shutdown();
}
