//! Differential test: the poll-loop runtime against its executable
//! spec, the thread-per-connection server.
//!
//! [`PeerServer`] *is* the §III.C semantics — small enough to audit by
//! eye. [`PollServer`] reimplements those semantics on a nonblocking
//! event loop. This suite replays identical request schedules against
//! both, backed by identical stores, and demands:
//!
//! * **byte-identical wire responses** — every raw response frame
//!   (length prefix, tag, body, SHA-256 trailer) matches;
//! * **identical accounting** — `served` / `not_found` /
//!   `busy_rejections` totals and the shared `rtnet.*` registry
//!   counters agree.
//!
//! Schedules are generated from a seeded linear congruential generator,
//! so every run replays the same cases.

use bytes::{Bytes, BytesMut};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use vmr_rtnet::proto::{encode_request, Request};
use vmr_rtnet::{OutputStore, PeerServer, PollServer, PollServerConfig};

/// One step of a replayable schedule.
#[derive(Clone, Debug)]
enum Step {
    Get(String),
    Ping,
    Gate(bool),
}

/// Splitmix-style deterministic generator (no rand dependency needed).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Sends one request on a fresh connection and returns the raw
/// response frame (4-byte length prefix included) — the unit of
/// byte-identity.
fn raw_roundtrip(addr: SocketAddr, req: &Request) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.set_nodelay(true).unwrap();
    let mut buf = BytesMut::new();
    encode_request(req, &mut buf);
    stream.write_all(&buf).unwrap();
    stream.flush().unwrap();

    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf).expect("response prefix");
    let len = u32::from_be_bytes(len_buf) as usize;
    let mut frame = vec![0u8; len];
    stream.read_exact(&mut frame).expect("response payload");
    let mut raw = len_buf.to_vec();
    raw.extend_from_slice(&frame);
    raw
}

/// Both runtimes behind one face, so the replay loop is shared.
enum Server {
    Threaded(PeerServer),
    Poll(PollServer),
}

impl Server {
    fn addr(&self) -> SocketAddr {
        match self {
            Server::Threaded(s) => s.addr(),
            Server::Poll(s) => s.addr(),
        }
    }

    fn set_accepting(&self, on: bool) {
        match self {
            Server::Threaded(s) => s.set_accepting(on),
            Server::Poll(s) => s.set_accepting(on),
        }
    }

    fn totals(&self) -> (u64, u64, u64) {
        let stats = match self {
            Server::Threaded(s) => &s.stats,
            Server::Poll(s) => &s.stats,
        };
        (
            stats.served.load(Ordering::Relaxed),
            stats.not_found.load(Ordering::Relaxed),
            stats.busy_rejections.load(Ordering::Relaxed),
        )
    }
}

/// The store both servers serve: a few deterministic files of varied
/// sizes (empty, small, multi-read large).
fn make_store() -> Arc<OutputStore> {
    let store = Arc::new(OutputStore::new());
    store.put("empty", Bytes::new());
    store.put(
        "small",
        Bytes::from_static(b"forty-two bytes of thoroughly real data!"),
    );
    let big: Vec<u8> = (0..700_000u32).map(|i| (i % 239) as u8).collect();
    store.put("big", Bytes::from(big));
    store
}

/// Seeded schedule: GETs over present and absent names, pings, and
/// gate toggles (always ending with the gate open).
fn make_schedule(seed: u64, len: usize) -> Vec<Step> {
    let names = ["empty", "small", "big", "ghost", "mr0_m1_p0"];
    let mut rng = Lcg(seed);
    let mut steps = Vec::with_capacity(len + 1);
    for _ in 0..len {
        match rng.below(10) {
            0 => steps.push(Step::Ping),
            1 => steps.push(Step::Gate(rng.below(2) == 0)),
            _ => {
                let name = names[rng.below(names.len() as u64) as usize];
                steps.push(Step::Get(name.to_string()));
            }
        }
    }
    steps.push(Step::Gate(true));
    steps
}

/// Replays a schedule sequentially; returns every raw response frame.
fn replay(server: &Server, schedule: &[Step]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    for step in schedule {
        match step {
            Step::Get(name) => {
                frames.push(raw_roundtrip(server.addr(), &Request::Get(name.clone())));
            }
            Step::Ping => frames.push(raw_roundtrip(server.addr(), &Request::Ping)),
            Step::Gate(on) => server.set_accepting(*on),
        }
    }
    frames
}

/// The shared `rtnet.*` counters both runtimes must report equally.
fn shared_counters(obs: &vmr_obs::Obs) -> Vec<(String, u64)> {
    [
        "rtnet.served",
        "rtnet.not_found",
        "rtnet.busy_rejections",
        "rtnet.gate_rejections",
    ]
    .iter()
    .map(|k| (k.to_string(), obs.snapshot().counter(k)))
    .collect()
}

/// Runs one schedule against both runtimes (fresh identical stores,
/// same threshold) and asserts frame-by-frame byte identity plus
/// identical totals.
fn assert_equivalent(seed: u64, schedule_len: usize, max_connections: usize) {
    let schedule = make_schedule(seed, schedule_len);

    let obs_t = vmr_obs::Obs::new();
    let threaded = Server::Threaded(
        PeerServer::start_with_obs(make_store(), max_connections, &obs_t).unwrap(),
    );
    let frames_t = replay(&threaded, &schedule);

    let obs_p = vmr_obs::Obs::new();
    let poll = Server::Poll(
        PollServer::start_with_obs(make_store(), PollServerConfig::new(max_connections), &obs_p)
            .unwrap(),
    );
    let frames_p = replay(&poll, &schedule);

    assert_eq!(frames_t.len(), frames_p.len());
    for (i, (t, p)) in frames_t.iter().zip(&frames_p).enumerate() {
        assert_eq!(
            t, p,
            "response {i} differs between runtimes (seed {seed}, step {:?})",
            schedule[i]
        );
    }
    assert_eq!(
        threaded.totals(),
        poll.totals(),
        "served/not_found/busy totals must match (seed {seed})"
    );
    assert_eq!(
        shared_counters(&obs_t),
        shared_counters(&obs_p),
        "rtnet.* registry counters must match (seed {seed})"
    );
}

#[test]
fn sequential_schedules_are_byte_identical() {
    for seed in [1, 7, 42] {
        assert_equivalent(seed, 60, 8);
    }
}

#[test]
fn gate_heavy_schedule_matches() {
    // A gate-toggle-rich schedule exercises the NotFound + gate path.
    let mut schedule = Vec::new();
    for i in 0..30 {
        schedule.push(Step::Gate(i % 3 != 0));
        schedule.push(Step::Get("small".to_string()));
        schedule.push(Step::Get("ghost".to_string()));
    }
    schedule.push(Step::Gate(true));

    let obs_t = vmr_obs::Obs::new();
    let threaded = Server::Threaded(PeerServer::start_with_obs(make_store(), 8, &obs_t).unwrap());
    let frames_t = replay(&threaded, &schedule);

    let obs_p = vmr_obs::Obs::new();
    let poll = Server::Poll(
        PollServer::start_with_obs(make_store(), PollServerConfig::new(8), &obs_p).unwrap(),
    );
    let frames_p = replay(&poll, &schedule);

    assert_eq!(frames_t, frames_p);
    assert_eq!(threaded.totals(), poll.totals());
    assert_eq!(shared_counters(&obs_t), shared_counters(&obs_p));
    let gates = obs_t.snapshot().counter("rtnet.gate_rejections");
    assert!(gates > 0, "the gate path must actually have fired");
}

#[test]
fn threshold_zero_is_always_busy_in_both() {
    // max_connections 0 makes every GET a deterministic Busy rejection
    // in both runtimes — the concurrency-free probe of the threshold.
    assert_equivalent(99, 40, 0);
}
