//! Internet-scale flow engine: exact below a threshold, aggregated above.
//!
//! [`AggregateNetwork`] wraps two regimes behind the [`crate::Network`]
//! API:
//!
//! * **Exact regime.** Below [`ScalePolicy::coalesce_threshold`] active
//!   flows, every call delegates to an embedded [`Network`], so testbed-
//!   scale runs (the paper's ~40 Emulab hosts) reproduce the incremental
//!   engine — and therefore [`crate::NaiveNetwork`] — *bit for bit*.
//! * **Scale regime.** When the active-flow count reaches the threshold
//!   the engine migrates once (a one-way ratchet) to an aggregated
//!   fluid model built for 10⁵⁺ hosts:
//!
//!   - **Flow-class coalescing.** Flows sharing the same (path, class,
//!     rate-cap) collapse into one *pool* served processor-sharing
//!     style: a per-member service accumulator `S(t)` advances at the
//!     pool's per-member rate, each member carries a finish tag
//!     `S(join) + bytes`, and a per-pool min-heap of tags expands the
//!     aggregate back into per-flow completion events lazily.
//!   - **Min-share rates.** Instead of global progressive filling, each
//!     link publishes a per-flow share `cap / W` for its class (`W` =
//!     flows of that class crossing it); a pool's per-member rate is the
//!     minimum published share along its path, clamped by the rate cap.
//!     Published shares are a provable *lower bound* on the true
//!     max–min rates (progressive filling never freezes a flow below
//!     `cap/W` on any of its links), so aggregate makespans bound the
//!     exact ones from above — the equivalence suite asserts the ratio.
//!   - **Quantized publication.** Shares are truncated to a few
//!     mantissa bits ([`ScalePolicy::quantum_mantissa_bits`]), so a
//!     ±1-flow change on a busy ISP aggregation link usually lands in
//!     the same bucket and re-rates *nothing*; truncation rounds down,
//!     so quantization can never oversubscribe a link.
//!   - **Local event core.** Per-pool lazy-invalidation member heaps
//!     plus a generation-tagged pool-completion heap mean a rate change
//!     at one access link touches only the pools crossing the links
//!     whose published share actually moved — per-event cost follows
//!     the *affected* set, not the in-flight population.
//!
//! Priorities keep their TCP-Nice semantics: foreground shares are
//! computed first, background pools split each link's measured leftover
//! (`cap − Σ foreground rates`).

use crate::bandwidth::Priority;
use crate::flow::{Completion, Dismantled, FlowId, FlowSpec, MigratedFlow, Network};
use crate::obs::NetObs;
use crate::topology::Topology;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use vmr_desim::{SimDuration, SimTime, Tally};
use vmr_obs::EventKind;

/// When and how aggressively [`AggregateNetwork`] leaves the exact
/// regime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalePolicy {
    /// Active-flow count at which the engine migrates to the scale
    /// regime (one-way). `usize::MAX` never migrates.
    pub coalesce_threshold: usize,
    /// Mantissa bits kept when publishing per-link shares in the scale
    /// regime; `52` publishes exact quotients, `6` buckets shares into
    /// ~1.5 % steps so busy links re-rate their pools rarely.
    pub quantum_mantissa_bits: u32,
}

impl ScalePolicy {
    /// Never aggregate: every call delegates to the exact incremental
    /// engine. Output is bit-identical to [`Network`] at any scale.
    pub fn exact() -> Self {
        ScalePolicy {
            coalesce_threshold: usize::MAX,
            quantum_mantissa_bits: 52,
        }
    }

    /// Internet-scale default: ratchet into the aggregated regime once
    /// 256 flows are in flight, publish shares in ~1.5 % buckets.
    pub fn internet() -> Self {
        ScalePolicy {
            coalesce_threshold: 256,
            quantum_mantissa_bits: 6,
        }
    }
}

impl Default for ScalePolicy {
    fn default() -> Self {
        ScalePolicy::exact()
    }
}

/// Truncates a positive share down to the policy's bucket width.
/// Truncation never rounds up, so quantized shares cannot oversubscribe.
fn quantize(mask: u64, x: f64) -> f64 {
    if x <= 0.0 || !x.is_finite() {
        return x.max(0.0);
    }
    f64::from_bits(x.to_bits() & mask)
}

/// Member state of one in-flight flow in the scale regime.
#[derive(Clone, Debug)]
enum FState {
    /// Setup latency still running; joins its pool at `starts_at`.
    Pending,
    /// No constraining links or no bytes: completes at a fixed instant.
    Direct,
    /// Member of pool `pool`, finishing when its service accumulator
    /// reaches `tag`.
    Pooled { pool: u32, tag: f64 },
}

#[derive(Clone, Debug)]
struct ScaleFlow {
    spec: FlowSpec,
    links: Vec<u32>,
    /// Bytes to serve once the flow joins its pool (remaining bytes for
    /// flows migrated mid-transfer).
    bytes_f: f64,
    created_at: SimTime,
    starts_at: SimTime,
    state: FState,
}

/// One coalesced flow class: every member shares the same path links,
/// priority and rate cap, and is served processor-sharing style.
struct Pool {
    links: Vec<u32>,
    is_bg: bool,
    rate_cap: Option<f64>,
    /// Min-heap of (finish-tag bits, flow id); entries whose flow no
    /// longer exists (aborted / harvested) are discarded lazily.
    members: BinaryHeap<Reverse<(u64, u64)>>,
    /// Live member count (the heap may hold dead entries).
    n: u32,
    /// Per-member service (bytes) accumulated by `anchor`.
    service: f64,
    anchor: SimTime,
    /// Current per-member rate, bytes/second.
    rate: f64,
    /// Membership changed since the last republish, so the completion
    /// entry must be refreshed even if the rate is unchanged.
    members_dirty: bool,
}

impl Pool {
    fn service_at(&self, t: SimTime) -> f64 {
        self.service + self.rate * t.saturating_since(self.anchor).as_secs_f64()
    }

    fn reanchor(&mut self, t: SimTime) {
        self.service = self.service_at(t);
        self.anchor = t;
    }

    /// Completion instant of a member with finish tag `tag` under the
    /// current anchor/rate (the same ceil-to-µs rounding as the exact
    /// engine, so the instant is reached with the bytes provably sent).
    fn member_completion(&self, tag: f64) -> Option<SimTime> {
        if tag <= self.service {
            return Some(self.anchor);
        }
        if self.rate <= 1e-12 {
            return None;
        }
        let us = ((tag - self.service) / self.rate * 1e6).ceil();
        if us >= u64::MAX as f64 {
            return None;
        }
        Some(self.anchor + SimDuration::from_micros(us as u64))
    }
}

/// Pool arena slot. The generation outlives the pool (it is bumped on
/// destruction and survives slot reuse) so completion-heap entries for
/// a previous occupant can never validate against a new one.
struct Slot {
    gen: u64,
    pool: Option<Pool>,
}

/// Per-dense-link published-share state.
struct LinkState {
    cap: f64,
    /// Foreground / background flows crossing this link (pool members
    /// counted individually).
    fg_n: u32,
    bg_n: u32,
    /// Σ members · per-member-rate over foreground pools on this link —
    /// the measured foreground consumption the background class
    /// scavenges around.
    fg_consumed: f64,
    /// Published (quantized) per-flow share for each class.
    pub_fg: f64,
    pub_bg: f64,
    fg_pools: BTreeSet<u32>,
    bg_pools: BTreeSet<u32>,
}

type PoolKey = (Vec<u32>, bool, Option<u64>);

struct ScaleState {
    topo: Topology,
    quant_mask: u64,
    links: Vec<LinkState>,
    pools: Vec<Slot>,
    free_pools: Vec<u32>,
    pool_ids: HashMap<PoolKey, u32>,
    flows: HashMap<u64, ScaleFlow>,
    next_id: u64,
    last_advance: SimTime,
    fg_durations: Tally,
    bg_durations: Tally,
    bytes_delivered: f64,
    /// Min-heap of (instant, pool, generation); stale generations are
    /// discarded lazily.
    completion_heap: BinaryHeap<Reverse<(SimTime, u32, u64)>>,
    /// Min-heap of setup boundaries (starts_at, flow).
    pending_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Min-heap of fixed-instant completions (loopback / zero-byte).
    direct_heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Completions already processed but not yet returned by `advance`.
    pending_out: Vec<Completion>,
    /// Links whose class weights changed since the last republish.
    dirty_links: Vec<u32>,
    /// Pools needing a re-rate / entry refresh, by class.
    touched_fg: Vec<u32>,
    touched_bg: Vec<u32>,
    /// Scratch for the per-instant completion batch.
    batch: Vec<Completion>,
    /// Pools currently coalescing ≥ 2 members, and the run's peak.
    aggregates: usize,
    peak_aggregates: usize,
    coalesce_hits: u64,
    splits: u64,
}

impl ScaleState {
    fn new(topo: Topology, quantum_mantissa_bits: u32) -> Self {
        let links = (0..topo.num_links())
            .map(|i| LinkState {
                cap: topo.capacity_at(i),
                fg_n: 0,
                bg_n: 0,
                fg_consumed: 0.0,
                pub_fg: 0.0,
                pub_bg: 0.0,
                fg_pools: BTreeSet::new(),
                bg_pools: BTreeSet::new(),
            })
            .collect();
        let quant_mask = if quantum_mantissa_bits >= 52 {
            !0u64
        } else {
            !((1u64 << (52 - quantum_mantissa_bits)) - 1)
        };
        ScaleState {
            topo,
            quant_mask,
            links,
            pools: Vec::new(),
            free_pools: Vec::new(),
            pool_ids: HashMap::new(),
            flows: HashMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            fg_durations: Tally::new(),
            bg_durations: Tally::new(),
            bytes_delivered: 0.0,
            completion_heap: BinaryHeap::new(),
            pending_heap: BinaryHeap::new(),
            direct_heap: BinaryHeap::new(),
            pending_out: Vec::new(),
            dirty_links: Vec::new(),
            touched_fg: Vec::new(),
            touched_bg: Vec::new(),
            batch: Vec::new(),
            aggregates: 0,
            peak_aggregates: 0,
            coalesce_hits: 0,
            splits: 0,
        }
    }

    fn pool(&self, id: u32) -> &Pool {
        self.pools[id as usize].pool.as_ref().expect("dead pool")
    }

    fn pool_mut(&mut self, id: u32) -> &mut Pool {
        self.pools[id as usize].pool.as_mut().expect("dead pool")
    }

    /// A member entry is live while its flow still points at this pool.
    fn member_live(&self, pool: u32, flow: u64) -> bool {
        self.flows
            .get(&flow)
            .is_some_and(|f| matches!(f.state, FState::Pooled { pool: p, .. } if p == pool))
    }

    fn set_aggregates(&mut self, v: usize, obs: &NetObs) {
        self.aggregates = v;
        self.peak_aggregates = self.peak_aggregates.max(v);
        obs.aggregates.set(v as f64);
    }

    /// Joins flow `id` (already in `flows`) to its pool at instant `t`
    /// with `bytes` left to serve. Marks links dirty; the caller runs
    /// `republish(t)` before time moves on.
    fn join(&mut self, t: SimTime, id: u64, bytes: f64, obs: &NetObs) {
        let (links, is_bg, rate_cap) = {
            let f = &self.flows[&id];
            (
                f.links.clone(),
                f.spec.priority == Priority::Background,
                f.spec.rate_cap,
            )
        };
        let key: PoolKey = (links.clone(), is_bg, rate_cap.map(f64::to_bits));
        let pid = match self.pool_ids.get(&key) {
            Some(&p) => p,
            None => {
                let pool = Pool {
                    links: links.clone(),
                    is_bg,
                    rate_cap,
                    members: BinaryHeap::new(),
                    n: 0,
                    service: 0.0,
                    anchor: t,
                    rate: 0.0,
                    members_dirty: false,
                };
                let pid = match self.free_pools.pop() {
                    Some(slot) => {
                        self.pools[slot as usize].pool = Some(pool);
                        slot
                    }
                    None => {
                        self.pools.push(Slot {
                            gen: 0,
                            pool: Some(pool),
                        });
                        (self.pools.len() - 1) as u32
                    }
                };
                for &l in &links {
                    let ls = &mut self.links[l as usize];
                    if is_bg {
                        ls.bg_pools.insert(pid);
                    } else {
                        ls.fg_pools.insert(pid);
                    }
                }
                self.pool_ids.insert(key, pid);
                pid
            }
        };
        let (tag, n_before, rate) = {
            let p = self.pool_mut(pid);
            let tag = p.service_at(t) + bytes;
            p.members.push(Reverse((tag.to_bits(), id)));
            let n_before = p.n;
            p.n += 1;
            p.members_dirty = true;
            (tag, n_before, p.rate)
        };
        if n_before >= 1 {
            self.coalesce_hits += 1;
            obs.coalesce_hits.inc();
            if n_before == 1 {
                self.set_aggregates(self.aggregates + 1, obs);
            }
        }
        for &l in &links {
            let ls = &mut self.links[l as usize];
            if is_bg {
                ls.bg_n += 1;
            } else {
                ls.fg_n += 1;
                ls.fg_consumed += rate;
            }
            self.dirty_links.push(l);
        }
        if is_bg {
            self.touched_bg.push(pid);
        } else {
            self.touched_fg.push(pid);
        }
        self.flows.get_mut(&id).expect("joining unknown flow").state =
            FState::Pooled { pool: pid, tag };
    }

    /// Removes `removed` members (already popped / invalidated) from
    /// pool `pid`'s accounting. Marks links dirty; destroys empty pools.
    fn shrink_pool(&mut self, pid: u32, removed: u32, obs: &NetObs) {
        let (links, is_bg, rate, n_after) = {
            let p = self.pool_mut(pid);
            debug_assert!(p.n >= removed);
            p.n -= removed;
            p.members_dirty = true;
            (p.links.clone(), p.is_bg, p.rate, p.n)
        };
        for &l in &links {
            let ls = &mut self.links[l as usize];
            if is_bg {
                ls.bg_n -= removed;
            } else {
                ls.fg_n -= removed;
                ls.fg_consumed -= removed as f64 * rate;
            }
            self.dirty_links.push(l);
        }
        if n_after + removed >= 2 && n_after < 2 {
            self.set_aggregates(self.aggregates - 1, obs);
        }
        if n_after == 0 {
            let slot = &mut self.pools[pid as usize];
            slot.gen += 1;
            let p = slot.pool.take().expect("dead pool");
            let key: PoolKey = (p.links.clone(), p.is_bg, p.rate_cap.map(f64::to_bits));
            self.pool_ids.remove(&key);
            for &l in &p.links {
                let ls = &mut self.links[l as usize];
                if p.is_bg {
                    ls.bg_pools.remove(&pid);
                } else {
                    ls.fg_pools.remove(&pid);
                }
            }
            self.free_pools.push(pid);
        } else if is_bg {
            self.touched_bg.push(pid);
        } else {
            self.touched_fg.push(pid);
        }
    }

    /// Min published share along the pool's path, clamped by its cap.
    fn pool_rate(&self, pid: u32) -> f64 {
        let p = self.pool(pid);
        let mut r = f64::INFINITY;
        for &l in &p.links {
            let ls = &self.links[l as usize];
            let share = if p.is_bg { ls.pub_bg } else { ls.pub_fg };
            r = r.min(share);
        }
        if let Some(cap) = p.rate_cap {
            r = r.min(cap);
        }
        r
    }

    /// Pushes a fresh completion-heap entry for the pool's earliest
    /// live member (bumping the generation so older entries go stale).
    fn refresh_entry(&mut self, pid: u32) {
        let due = loop {
            let Some(&Reverse((tag_bits, fid))) = self.pool(pid).members.peek() else {
                break None;
            };
            if self.member_live(pid, fid) {
                break self.pool(pid).member_completion(f64::from_bits(tag_bits));
            }
            self.pool_mut(pid).members.pop();
        };
        let slot = &mut self.pools[pid as usize];
        slot.gen += 1;
        if let Some(t) = due {
            self.completion_heap.push(Reverse((t, pid, slot.gen)));
        }
    }

    /// Recomputes published shares on dirty links and re-rates the
    /// affected pools, foreground first. Background scavenges the
    /// measured foreground consumption and influences nothing itself,
    /// so two phases suffice — no cascade.
    ///
    /// Two scale filters keep hot shared links (an ISP tier serving
    /// thousands of pools, the backbone serving all of them) from
    /// turning every bucket crossing into an O(pools) wave:
    /// * a pool bottlenecked strictly below both the old and the new
    ///   published share of a changed link cannot change rate, so it is
    ///   never visited;
    /// * a visited pool's completion entry is only refreshed when its
    ///   rate or membership actually changed (an untouched entry stays
    ///   valid — same generation, same members, same rate).
    fn republish(&mut self, t: SimTime) {
        let mask = self.quant_mask;
        let mut links = std::mem::take(&mut self.dirty_links);
        links.sort_unstable();
        links.dedup();
        let mut bg_links = links.clone();
        let mut fgp = std::mem::take(&mut self.touched_fg);
        for &l in &links {
            let ls = &mut self.links[l as usize];
            if ls.fg_n == 0 {
                continue;
            }
            let share = quantize(mask, ls.cap / ls.fg_n as f64);
            if share == ls.pub_fg {
                continue;
            }
            let lo = share.min(ls.pub_fg);
            ls.pub_fg = share;
            let ls = &self.links[l as usize];
            let pools = &self.pools;
            fgp.extend(ls.fg_pools.iter().copied().filter(|&pid| {
                pools[pid as usize]
                    .pool
                    .as_ref()
                    .is_some_and(|p| p.rate >= lo)
            }));
        }
        fgp.sort_unstable();
        fgp.dedup();
        for &pid in &fgp {
            if self.pools[pid as usize].pool.is_none() {
                continue;
            }
            let new_rate = self.pool_rate(pid);
            let p = self.pool_mut(pid);
            let dirty = std::mem::take(&mut p.members_dirty);
            if new_rate != p.rate {
                let old = p.rate;
                let n = p.n as f64;
                p.reanchor(t);
                p.rate = new_rate;
                let plinks = p.links.clone();
                for &l in &plinks {
                    self.links[l as usize].fg_consumed += n * (new_rate - old);
                    bg_links.push(l);
                }
                self.refresh_entry(pid);
            } else if dirty {
                self.refresh_entry(pid);
            }
        }
        fgp.clear();
        self.touched_fg = fgp;

        bg_links.sort_unstable();
        bg_links.dedup();
        let mut bgp = std::mem::take(&mut self.touched_bg);
        for &l in &bg_links {
            let ls = &mut self.links[l as usize];
            if ls.bg_n == 0 {
                continue;
            }
            let left = (ls.cap - ls.fg_consumed).max(0.0);
            let share = quantize(mask, left / ls.bg_n as f64);
            if share == ls.pub_bg {
                continue;
            }
            let lo = share.min(ls.pub_bg);
            ls.pub_bg = share;
            let ls = &self.links[l as usize];
            let pools = &self.pools;
            bgp.extend(ls.bg_pools.iter().copied().filter(|&pid| {
                pools[pid as usize]
                    .pool
                    .as_ref()
                    .is_some_and(|p| p.rate >= lo)
            }));
        }
        bgp.sort_unstable();
        bgp.dedup();
        for &pid in &bgp {
            if self.pools[pid as usize].pool.is_none() {
                continue;
            }
            let new_rate = self.pool_rate(pid);
            let p = self.pool_mut(pid);
            let dirty = std::mem::take(&mut p.members_dirty);
            if new_rate != p.rate {
                p.reanchor(t);
                p.rate = new_rate;
                self.refresh_entry(pid);
            } else if dirty {
                self.refresh_entry(pid);
            }
        }
        bgp.clear();
        self.touched_bg = bgp;
        links.clear();
        self.dirty_links = links;
    }

    /// Earliest internal event (setup boundary, direct completion, pool
    /// completion), assuming tops were pruned.
    fn next_internal_event(&self) -> Option<SimTime> {
        let mut t: Option<SimTime> = None;
        let mut fold = |x: Option<SimTime>| {
            t = match (t, x) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        };
        fold(self.pending_heap.peek().map(|&Reverse((s, _))| s));
        fold(self.direct_heap.peek().map(|&Reverse((s, _))| s));
        fold(self.completion_heap.peek().map(|&Reverse((s, _, _))| s));
        t
    }

    /// Drops dead/stale entries from the top of every heap so `&self`
    /// peeks see valid tops.
    fn prune_tops(&mut self) {
        while let Some(&Reverse((_, id))) = self.pending_heap.peek() {
            if self
                .flows
                .get(&id)
                .is_some_and(|f| matches!(f.state, FState::Pending))
            {
                break;
            }
            self.pending_heap.pop();
        }
        while let Some(&Reverse((_, id))) = self.direct_heap.peek() {
            if self.flows.contains_key(&id) {
                break;
            }
            self.direct_heap.pop();
        }
        while let Some(&Reverse((_, pid, generation))) = self.completion_heap.peek() {
            let slot = &self.pools[pid as usize];
            if slot.pool.is_some() && slot.gen == generation {
                break;
            }
            self.completion_heap.pop();
        }
    }

    /// Processes every internal event up to and including `now`, in
    /// chronological order, buffering completions into `pending_out`.
    fn process_until(&mut self, now: SimTime, obs: &NetObs) {
        loop {
            self.prune_tops();
            let Some(t) = self.next_internal_event() else {
                break;
            };
            if t > now {
                break;
            }
            if t > self.last_advance {
                self.last_advance = t;
            }
            // Setup boundaries at `t`: flows enter their pools first, so
            // they share capacity from this instant on.
            while let Some(&Reverse((s, id))) = self.pending_heap.peek() {
                if s > t {
                    break;
                }
                self.pending_heap.pop();
                let Some(f) = self.flows.get(&id) else {
                    continue;
                };
                if !matches!(f.state, FState::Pending) {
                    continue;
                }
                let bytes = f.bytes_f;
                self.join(t, id, bytes, obs);
            }
            // Fixed-instant completions (loopback / zero-byte flows).
            let mut batch = std::mem::take(&mut self.batch);
            while let Some(&Reverse((s, id))) = self.direct_heap.peek() {
                if s > t {
                    break;
                }
                self.direct_heap.pop();
                let Some(f) = self.flows.remove(&id) else {
                    continue;
                };
                batch.push(Completion {
                    id: FlowId(id),
                    at: t,
                    duration: t.saturating_since(f.created_at),
                    spec: f.spec,
                });
            }
            // Pool completions due at `t`: expand the aggregates back
            // into per-flow events.
            loop {
                self.prune_tops();
                let Some(&Reverse((s, pid, _))) = self.completion_heap.peek() else {
                    break;
                };
                if s > t {
                    break;
                }
                self.completion_heap.pop();
                let mut harvested = 0u32;
                while let Some(&Reverse((tag_bits, fid))) = self.pool(pid).members.peek() {
                    if !self.member_live(pid, fid) {
                        self.pool_mut(pid).members.pop();
                        continue;
                    }
                    let due = self.pool(pid).member_completion(f64::from_bits(tag_bits));
                    if due.is_none_or(|d| d > t) {
                        break;
                    }
                    self.pool_mut(pid).members.pop();
                    let f = self.flows.remove(&fid).expect("live member vanished");
                    if self.pool(pid).n >= 2 {
                        self.splits += 1;
                        obs.splits.inc();
                    }
                    harvested += 1;
                    batch.push(Completion {
                        id: FlowId(fid),
                        at: t,
                        duration: t.saturating_since(f.created_at),
                        spec: f.spec,
                    });
                }
                if harvested > 0 {
                    self.pool_mut(pid).reanchor(t);
                    self.shrink_pool(pid, harvested, obs);
                } else {
                    // The due member was aborted out from under the
                    // entry: queue a fresh one so the pool cannot stall.
                    self.refresh_entry(pid);
                }
            }
            // Report the instant's batch in ascending flow-id order (the
            // exact engine's tie order).
            batch.sort_unstable_by_key(|c| c.id);
            for c in batch.drain(..) {
                match c.spec.priority {
                    Priority::Foreground => self.fg_durations.record_duration(c.duration),
                    Priority::Background => self.bg_durations.record_duration(c.duration),
                }
                self.bytes_delivered += c.spec.bytes as f64;
                obs.completed.inc();
                obs.bytes.add(c.spec.bytes);
                obs.journal
                    .record_with(c.at.as_micros(), || EventKind::FlowComplete {
                        id: c.id.0,
                        bytes: c.spec.bytes,
                        dur_us: c.duration.as_micros(),
                    });
                self.pending_out.push(c);
            }
            self.batch = batch;
            self.republish(t);
        }
        if now > self.last_advance {
            self.last_advance = now;
        }
    }

    fn start_flow(&mut self, now: SimTime, spec: FlowSpec, obs: &NetObs) -> FlowId {
        self.process_until(now, obs);
        let id = self.next_id;
        self.next_id += 1;
        let mut links = Vec::with_capacity(2 + 2 * spec.via.len());
        self.topo
            .route_into(spec.src, &spec.via, spec.dst, &mut links);
        let setup =
            SimDuration::from_secs_f64(spec.setup_s + self.topo.latency(spec.src, spec.dst));
        let starts_at = now + setup;
        let bytes_f = spec.bytes as f64;
        // A linkless (loopback) flow with a rate cap is still paced by
        // the cap, exactly as in the exact engine — only capless
        // linkless or zero-byte flows complete at setup end.
        let unconstrained = bytes_f <= 1e-9 || (links.is_empty() && spec.rate_cap.is_none());
        let flow_bytes = spec.bytes;
        self.flows.insert(
            id,
            ScaleFlow {
                spec,
                links,
                bytes_f,
                created_at: now,
                starts_at,
                state: if unconstrained {
                    FState::Direct
                } else {
                    FState::Pending
                },
            },
        );
        if unconstrained {
            // No constraining links or no bytes: done as soon as setup
            // ends.
            self.direct_heap
                .push(Reverse((starts_at.max(self.last_advance), id)));
        } else if starts_at > now {
            self.pending_heap.push(Reverse((starts_at, id)));
        } else {
            self.join(now, id, bytes_f, obs);
            self.republish(now);
        }
        obs.started.inc();
        obs.journal
            .record_with(now.as_micros(), || EventKind::FlowStart {
                id,
                bytes: flow_bytes,
            });
        self.prune_tops();
        FlowId(id)
    }

    fn abort_flow(&mut self, now: SimTime, id: FlowId, obs: &NetObs) -> bool {
        self.process_until(now, obs);
        let Some(f) = self.flows.remove(&id.0) else {
            self.prune_tops();
            return false;
        };
        if let FState::Pooled { pool, .. } = f.state {
            self.pool_mut(pool).reanchor(now);
            self.shrink_pool(pool, 1, obs);
            self.republish(now);
        }
        obs.aborted.inc();
        self.prune_tops();
        true
    }

    fn advance(&mut self, now: SimTime, obs: &NetObs) -> Vec<Completion> {
        self.process_until(now, obs);
        self.prune_tops();
        std::mem::take(&mut self.pending_out)
    }

    fn next_event_time(&self) -> Option<SimTime> {
        if !self.pending_out.is_empty() {
            // Already-processed completions wait for the next `advance`.
            return Some(self.last_advance);
        }
        if self.flows.is_empty() {
            return None;
        }
        // Flows exist but nothing can fire (e.g. starved background
        // pools): mirror the exact engine's "no self-event" sentinel.
        Some(self.next_internal_event().unwrap_or(SimTime::MAX))
    }

    fn flow_rate(&self, id: FlowId) -> Option<f64> {
        let f = self.flows.get(&id.0)?;
        Some(match f.state {
            FState::Pending => 0.0,
            FState::Direct => {
                if f.bytes_f > 1e-9 {
                    f64::INFINITY
                } else {
                    0.0
                }
            }
            FState::Pooled { pool, .. } => self.pool(pool).rate,
        })
    }

    fn projected_completion(&self, id: FlowId) -> Option<SimTime> {
        let f = self.flows.get(&id.0)?;
        Some(match f.state {
            FState::Pending | FState::Direct => f.starts_at.max(self.last_advance),
            FState::Pooled { pool, tag } => self
                .pool(pool)
                .member_completion(tag)
                .unwrap_or(SimTime::MAX),
        })
    }
}

enum Regime {
    Exact(Box<Network>),
    Scale(Box<ScaleState>),
}

/// Internet-scale network engine: [`Network`]-compatible API, exact
/// below [`ScalePolicy::coalesce_threshold`] in-flight flows and
/// aggregated (pools + published shares) above it. See the module docs
/// for the model.
pub struct AggregateNetwork {
    policy: ScalePolicy,
    obs: NetObs,
    regime: Regime,
}

impl AggregateNetwork {
    /// Wraps a topology with the default ([`ScalePolicy::exact`])
    /// policy and detached observability.
    pub fn new(topo: Topology) -> Self {
        AggregateNetwork::with_policy(topo, &vmr_obs::Obs::detached(), ScalePolicy::default())
    }

    /// Wraps a topology with the default policy, recording the same
    /// counters/journal as [`Network::with_obs`].
    pub fn with_obs(topo: Topology, obs: &vmr_obs::Obs) -> Self {
        AggregateNetwork::with_policy(topo, obs, ScalePolicy::default())
    }

    /// Wraps a topology with an explicit scale policy. Also records the
    /// scale-regime metrics `net.aggregates_active`, `net.coalesce_hits`
    /// and `net.splits` into `obs`.
    pub fn with_policy(topo: Topology, obs: &vmr_obs::Obs, policy: ScalePolicy) -> Self {
        AggregateNetwork {
            policy,
            obs: NetObs::attach(obs),
            regime: Regime::Exact(Box::new(Network::with_obs(topo, obs))),
        }
    }

    /// The active scale policy.
    pub fn policy(&self) -> ScalePolicy {
        self.policy
    }

    /// True once the engine has ratcheted into the aggregated regime.
    pub fn is_scale_regime(&self) -> bool {
        matches!(self.regime, Regime::Scale(_))
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        match &self.regime {
            Regime::Exact(n) => n.topology(),
            Regime::Scale(s) => &s.topo,
        }
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        match &self.regime {
            Regime::Exact(n) => n.active_flows(),
            Regime::Scale(s) => s.flows.len(),
        }
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> f64 {
        match &self.regime {
            Regime::Exact(n) => n.bytes_delivered(),
            Regime::Scale(s) => s.bytes_delivered,
        }
    }

    /// Completed-transfer duration statistics, foreground class.
    pub fn fg_durations(&self) -> &Tally {
        match &self.regime {
            Regime::Exact(n) => &n.fg_durations,
            Regime::Scale(s) => &s.fg_durations,
        }
    }

    /// Completed-transfer duration statistics, background class.
    pub fn bg_durations(&self) -> &Tally {
        match &self.regime {
            Regime::Exact(n) => &n.bg_durations,
            Regime::Scale(s) => &s.bg_durations,
        }
    }

    /// Pools currently coalescing ≥ 2 flows (0 in the exact regime).
    pub fn aggregates_active(&self) -> usize {
        match &self.regime {
            Regime::Exact(_) => 0,
            Regime::Scale(s) => s.aggregates,
        }
    }

    /// Highest concurrent aggregate count seen over the run.
    pub fn peak_aggregates(&self) -> usize {
        match &self.regime {
            Regime::Exact(_) => 0,
            Regime::Scale(s) => s.peak_aggregates,
        }
    }

    /// Flows that joined an already-populated pool.
    pub fn coalesce_hits(&self) -> u64 {
        match &self.regime {
            Regime::Exact(_) => 0,
            Regime::Scale(s) => s.coalesce_hits,
        }
    }

    /// Per-flow completions expanded out of multi-member pools.
    pub fn splits(&self) -> u64 {
        match &self.regime {
            Regime::Exact(_) => 0,
            Regime::Scale(s) => s.splits,
        }
    }

    /// Current rate of a flow, bytes/second (0 during setup).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        match &self.regime {
            Regime::Exact(n) => n.flow_rate(id),
            Regime::Scale(s) => s.flow_rate(id),
        }
    }

    /// Projected completion instant of a flow under current rates.
    pub fn projected_completion(&self, id: FlowId) -> Option<SimTime> {
        match &self.regime {
            Regime::Exact(n) => n.projected_completion(id),
            Regime::Scale(s) => s.projected_completion(id),
        }
    }

    /// Starts a transfer at `now`; see [`Network::start_flow`]. Crossing
    /// the policy threshold here triggers the one-way migration into the
    /// aggregated regime.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        if let Regime::Exact(n) = &mut self.regime {
            if n.active_flows() < self.policy.coalesce_threshold {
                return n.start_flow(now, spec);
            }
            self.migrate(now);
        }
        let Regime::Scale(s) = &mut self.regime else {
            unreachable!("migrate leaves the scale regime installed");
        };
        s.start_flow(now, spec, &self.obs)
    }

    /// Aborts a flow; see [`Network::abort_flow`].
    pub fn abort_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        match &mut self.regime {
            Regime::Exact(n) => n.abort_flow(now, id),
            Regime::Scale(s) => s.abort_flow(now, id, &self.obs),
        }
    }

    /// Advances to `now`, returning completions; see
    /// [`Network::advance`].
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        match &mut self.regime {
            Regime::Exact(n) => n.advance(now),
            Regime::Scale(s) => s.advance(now, &self.obs),
        }
    }

    /// Next self-event instant; see [`Network::next_event_time`].
    pub fn next_event_time(&self) -> Option<SimTime> {
        match &self.regime {
            Regime::Exact(n) => n.next_event_time(),
            Regime::Scale(s) => s.next_event_time(),
        }
    }

    /// One-way ratchet: harvest everything due, tear the exact engine
    /// down, and rebuild its in-flight flows as pool members.
    fn migrate(&mut self, now: SimTime) {
        let regime = std::mem::replace(
            &mut self.regime,
            Regime::Scale(Box::new(ScaleState::new(
                Topology::new(),
                self.policy.quantum_mantissa_bits,
            ))),
        );
        let Regime::Exact(mut net) = regime else {
            unreachable!("migrate called twice");
        };
        // Completions due by `now` keep their exact times; they sit in
        // the buffer until the caller's next `advance`.
        let due = net.advance(now);
        let d: Dismantled = net.dismantle();
        let mut s = ScaleState::new(d.topo, self.policy.quantum_mantissa_bits);
        s.last_advance = now.max(d.last_advance);
        s.next_id = d.next_id;
        s.fg_durations = d.fg_durations;
        s.bg_durations = d.bg_durations;
        s.bytes_delivered = d.bytes_delivered;
        s.pending_out = due;
        let at = s.last_advance;
        for mf in d.flows {
            let MigratedFlow {
                id,
                spec,
                links,
                bytes_left,
                starts_at,
                created_at,
            } = mf;
            let unconstrained = bytes_left <= 1e-9 || (links.is_empty() && spec.rate_cap.is_none());
            s.flows.insert(
                id.0,
                ScaleFlow {
                    spec,
                    links,
                    bytes_f: bytes_left,
                    created_at,
                    starts_at,
                    state: if unconstrained {
                        FState::Direct
                    } else {
                        FState::Pending
                    },
                },
            );
            if unconstrained {
                s.direct_heap.push(Reverse((starts_at.max(at), id.0)));
            } else if starts_at > at {
                s.pending_heap.push(Reverse((starts_at, id.0)));
            } else {
                s.join(at, id.0, bytes_left, &self.obs);
            }
        }
        s.republish(at);
        s.prune_tops();
        self.regime = Regime::Scale(Box::new(s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{HostId, HostLink, TierLink};

    fn topo(n: usize) -> Topology {
        let mut t = Topology::new();
        for _ in 0..n {
            t.add_host(HostLink::symmetric_mbit(100.0, 0.0));
        }
        t
    }

    fn scale_policy(bits: u32) -> ScalePolicy {
        ScalePolicy {
            coalesce_threshold: 0,
            quantum_mantissa_bits: bits,
        }
    }

    fn scale_net(topo: Topology, bits: u32) -> AggregateNetwork {
        AggregateNetwork::with_policy(topo, &vmr_obs::Obs::detached(), scale_policy(bits))
    }

    fn drain(net: &mut AggregateNetwork) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event_time() {
            assert!(t < SimTime::MAX, "stalled flow");
            out.extend(net.advance(t));
        }
        out
    }

    #[test]
    fn exact_regime_single_transfer() {
        let mut n = AggregateNetwork::new(topo(2));
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        assert!(!n.is_scale_regime());
        let done = drain(&mut n);
        assert_eq!(done.len(), 1);
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3);
        assert_eq!(n.aggregates_active(), 0);
    }

    #[test]
    fn scale_regime_single_transfer_same_makespan() {
        let mut n = scale_net(topo(2), 52);
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        assert!(n.is_scale_regime());
        let done = drain(&mut n);
        assert_eq!(done.len(), 1);
        assert!(
            (done[0].at.as_secs_f64() - 1.0).abs() < 1e-3,
            "{:?}",
            done[0].at
        );
    }

    #[test]
    fn coalesced_flows_processor_share() {
        // Pure scale regime: two same-path flows of sizes 1:2 coalesce
        // into one pool. Per-member rate is 6.25 MB/s, so the 6.25 MB
        // member finishes at t=1; the 12.5 MB member then runs alone at
        // 12.5 MB/s and finishes its remaining 6.25 MB at t=1.5.
        let mut n = scale_net(topo(2), 52);
        let small = n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 6_250_000),
        );
        let big = n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        assert_eq!(n.aggregates_active(), 1);
        assert_eq!(n.coalesce_hits(), 1);
        let done = drain(&mut n);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, small);
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3, "{done:?}");
        assert_eq!(done[1].id, big);
        assert!((done[1].at.as_secs_f64() - 1.5).abs() < 1e-3, "{done:?}");
        assert_eq!(n.splits(), 1);
        assert_eq!(n.aggregates_active(), 0);
    }

    #[test]
    fn migration_preserves_in_flight_progress() {
        // Threshold 2: the third start migrates mid-run. The two
        // migrated flows keep their progress and finish on time.
        let mut n = AggregateNetwork::with_policy(
            topo(4),
            &vmr_obs::Obs::detached(),
            ScalePolicy {
                coalesce_threshold: 2,
                quantum_mantissa_bits: 52,
            },
        );
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(2), HostId(3), 12_500_000),
        );
        assert!(!n.is_scale_regime());
        n.start_flow(
            SimTime::from_millis(500),
            FlowSpec::simple(HostId(1), HostId(2), 12_500_000),
        );
        assert!(n.is_scale_regime());
        let done = drain(&mut n);
        assert_eq!(done.len(), 3);
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3, "{done:?}");
        assert!((done[1].at.as_secs_f64() - 1.0).abs() < 1e-3, "{done:?}");
        assert!((done[2].at.as_secs_f64() - 1.5).abs() < 1e-3, "{done:?}");
        assert_eq!(n.bytes_delivered(), 3.0 * 12_500_000.0);
        assert_eq!(n.fg_durations().count(), 3);
    }

    #[test]
    fn scale_background_scavenges_leftover() {
        let mut n = scale_net(topo(3), 52);
        let mut bg = FlowSpec::simple(HostId(0), HostId(2), 12_500_000);
        bg.priority = Priority::Background;
        n.start_flow(SimTime::ZERO, bg);
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        let done = drain(&mut n);
        assert_eq!(done.len(), 2);
        // fg saturates the shared uplink for 1 s; bg then runs alone.
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3, "{done:?}");
        assert!((done[1].at.as_secs_f64() - 2.0).abs() < 1e-3, "{done:?}");
        assert_eq!(n.fg_durations().count(), 1);
        assert_eq!(n.bg_durations().count(), 1);
    }

    #[test]
    fn scale_zero_byte_and_loopback() {
        let mut n = scale_net(topo(2), 52);
        let mut z = FlowSpec::simple(HostId(0), HostId(1), 0);
        z.setup_s = 0.25;
        n.start_flow(SimTime::ZERO, z);
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(1), HostId(1), 999));
        let done = drain(&mut n);
        assert_eq!(done.len(), 2);
        // Loopback completes instantly, zero-byte at its setup boundary.
        assert_eq!(done[0].at, SimTime::ZERO);
        assert!((done[1].at.as_secs_f64() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn scale_abort_frees_capacity() {
        let mut n = scale_net(topo(3), 52);
        let a = n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        let b = n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(2), 12_500_000),
        );
        assert!(n.abort_flow(SimTime::from_millis(500), a));
        assert!(!n.abort_flow(SimTime::from_millis(500), a));
        let done = drain(&mut n);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, b);
        assert!(
            (done[0].at.as_secs_f64() - 1.25).abs() < 1e-3,
            "{:?}",
            done[0].at
        );
    }

    #[test]
    fn tiered_bottleneck_caps_scale_rates() {
        // 10 volunteers behind a 50 Mbit ISP uplink all push to one
        // server: the tier link (6.25 MB/s total) is the bottleneck, so
        // ten 625 kB transfers take ~1 s, not the ~0.5 s ten individual
        // 100 Mbit access uplinks would allow.
        let mut t = Topology::new();
        let server = t.add_host(HostLink::symmetric_mbit(1000.0, 0.0));
        let isp = t.add_tier(TierLink {
            up_bytes_per_sec: 50.0e6 / 8.0,
            down_bytes_per_sec: 50.0e6 / 8.0,
            latency_s: 0.0,
        });
        let vols: Vec<HostId> = (0..10)
            .map(|_| t.add_host_in(isp, HostLink::symmetric_mbit(100.0, 0.0)))
            .collect();
        let mut n = scale_net(t, 52);
        for &v in &vols {
            n.start_flow(SimTime::ZERO, FlowSpec::simple(v, server, 625_000));
        }
        let done = drain(&mut n);
        assert_eq!(done.len(), 10);
        let makespan = done.last().unwrap().at.as_secs_f64();
        assert!((makespan - 1.0).abs() < 1e-2, "makespan {makespan}");
    }

    #[test]
    fn quantized_shares_never_oversubscribe() {
        // Coarse 4-bit quantization, 16 flows through one 100 Mbit
        // uplink: truncation rounds shares down, so the sum of granted
        // rates must stay ≤ capacity and the makespan lands at or above
        // the exact 16 s (but within the bucket width of it).
        let mut n = scale_net(topo(17), 4);
        let mut ids = Vec::new();
        for i in 0..16 {
            ids.push(n.start_flow(
                SimTime::ZERO,
                FlowSpec::simple(HostId(0), HostId(i + 1), 12_500_000),
            ));
        }
        let total: f64 = ids.iter().filter_map(|&id| n.flow_rate(id)).sum();
        assert!(total <= 12_500_000.0 * (1.0 + 1e-9), "rates sum {total}");
        let done = drain(&mut n);
        let makespan = done.last().unwrap().at.as_secs_f64();
        assert!(makespan >= 16.0 - 1e-6, "makespan {makespan}");
        assert!(makespan <= 16.0 * 1.08, "makespan {makespan}");
    }

    #[test]
    fn next_event_time_reflects_buffered_completions() {
        let mut n = scale_net(topo(2), 52);
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500),
        );
        // Starting another flow long after the first finished processes
        // the completion internally; next_event_time must demand an
        // immediate advance to hand it over.
        n.start_flow(
            SimTime::from_secs(5),
            FlowSpec::simple(HostId(0), HostId(1), 12_500),
        );
        assert_eq!(n.next_event_time(), Some(SimTime::from_secs(5)));
        let done = n.advance(SimTime::from_secs(5));
        assert_eq!(done.len(), 1);
        assert!(done[0].at < SimTime::from_secs(5));
    }
}
