//! Tiered NAT traversal (§III.D).
//!
//! The paper proposes exactly this escalation for client↔client
//! connections, modelled on Skype's approach:
//!
//! 1. **Direct** — works when the serving peer is publicly reachable.
//! 2. **Connection reversal** — if the *requester* is reachable, the
//!    server (rendezvous) asks the NATed peer to connect outwards.
//! 3. **TCP hole punching** — STUN-style simultaneous open, probabilistic
//!    per the NAT-pair matrix.
//! 4. **Relay** — TURN-style forwarding through a reachable node (the
//!    project server, or a supernode volunteer); always works, at the
//!    cost of carrying data through the relay's links.
//!
//! The connect attempt returns which tier succeeded and how long the
//! escalation took, so the flow model can charge setup latency.

use crate::nat::NatType;
use vmr_desim::RngStream;

/// Which mechanism finally established the connection.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Path {
    /// Requester connected straight to the peer.
    Direct,
    /// Peer connected out to the requester after a rendezvous nudge.
    Reversal,
    /// STUN-assisted TCP simultaneous open.
    HolePunch,
    /// Data forwarded through a relay node.
    Relay,
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Path::Direct => "direct",
            Path::Reversal => "reversal",
            Path::HolePunch => "hole-punch",
            Path::Relay => "relay",
        };
        f.write_str(s)
    }
}

/// Traversal policy knobs (which tiers are enabled, timing).
#[derive(Clone, Debug)]
pub struct TraversalPolicy {
    /// Attempt direct connection first.
    pub allow_direct: bool,
    /// Attempt connection reversal through the rendezvous server.
    pub allow_reversal: bool,
    /// Attempt TCP hole punching.
    pub allow_hole_punch: bool,
    /// Fall back to relaying through the server/supernode.
    pub allow_relay: bool,
    /// Time to establish a direct TCP connection, seconds.
    pub direct_setup_s: f64,
    /// Extra time for a reversal (one server round-trip + reconnect).
    pub reversal_setup_s: f64,
    /// Extra time for a punch attempt (STUN exchange + simultaneous open).
    pub punch_setup_s: f64,
    /// Extra time to provision a relay session.
    pub relay_setup_s: f64,
    /// Time wasted by each tier that fails before the next is tried.
    pub failed_tier_cost_s: f64,
}

impl Default for TraversalPolicy {
    fn default() -> Self {
        TraversalPolicy {
            allow_direct: true,
            allow_reversal: true,
            allow_hole_punch: true,
            allow_relay: true,
            direct_setup_s: 0.2,
            reversal_setup_s: 0.8,
            punch_setup_s: 1.5,
            relay_setup_s: 1.0,
            failed_tier_cost_s: 3.0,
        }
    }
}

impl TraversalPolicy {
    /// Direct-only policy: what the prototype in the paper actually ships
    /// (volunteers must open ports; no traversal implemented yet).
    pub fn direct_only() -> Self {
        TraversalPolicy {
            allow_reversal: false,
            allow_hole_punch: false,
            allow_relay: false,
            ..TraversalPolicy::default()
        }
    }

    /// Direct with server-relay fall-back but no fancy traversal.
    pub fn direct_or_relay() -> Self {
        TraversalPolicy {
            allow_reversal: false,
            allow_hole_punch: false,
            ..TraversalPolicy::default()
        }
    }
}

/// Outcome of one connect attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConnectOutcome {
    /// The tier that succeeded.
    pub path: Path,
    /// Total connection-establishment time, including failed tiers.
    pub setup_s: f64,
    /// Number of tiers tried before success (1 = first tier worked).
    pub tiers_tried: u32,
}

/// Attempts to open a TCP connection from `requester` (NAT type `req`)
/// to the file-serving peer (NAT type `srv`), escalating through the
/// enabled tiers. Returns `None` if every enabled tier fails.
pub fn connect(
    req: NatType,
    srv: NatType,
    policy: &TraversalPolicy,
    rng: &mut RngStream,
) -> Option<ConnectOutcome> {
    let mut elapsed = 0.0;
    let mut tiers = 0u32;

    if policy.allow_direct {
        tiers += 1;
        if srv.accepts_inbound() {
            return Some(ConnectOutcome {
                path: Path::Direct,
                setup_s: elapsed + policy.direct_setup_s,
                tiers_tried: tiers,
            });
        }
        elapsed += policy.failed_tier_cost_s;
    }

    if policy.allow_reversal {
        tiers += 1;
        // The serving peer dials out to the requester, so the requester
        // must accept inbound. NATed peers can always dial out.
        if req.accepts_inbound() {
            return Some(ConnectOutcome {
                path: Path::Reversal,
                setup_s: elapsed + policy.reversal_setup_s,
                tiers_tried: tiers,
            });
        }
        elapsed += policy.failed_tier_cost_s;
    }

    if policy.allow_hole_punch {
        tiers += 1;
        let p = req.tcp_punch_factor() * srv.tcp_punch_factor();
        if rng.chance(p) {
            return Some(ConnectOutcome {
                path: Path::HolePunch,
                setup_s: elapsed + policy.punch_setup_s,
                tiers_tried: tiers,
            });
        }
        elapsed += policy.failed_tier_cost_s;
    }

    if policy.allow_relay {
        tiers += 1;
        // Relaying only needs outbound connections from both sides.
        return Some(ConnectOutcome {
            path: Path::Relay,
            setup_s: elapsed + policy.relay_setup_s,
            tiers_tried: tiers,
        });
    }

    None
}

/// Aggregated traversal statistics for a sweep.
#[derive(Clone, Debug, Default)]
pub struct TraversalStats {
    /// Successful connections per path.
    pub direct: u64,
    /// Connections established via reversal.
    pub reversal: u64,
    /// Connections established via hole punching.
    pub hole_punch: u64,
    /// Connections established via relay.
    pub relay: u64,
    /// Attempts where every enabled tier failed.
    pub failed: u64,
    /// Sum of setup seconds over successful attempts.
    pub setup_total_s: f64,
}

impl TraversalStats {
    /// Records one outcome.
    pub fn record(&mut self, outcome: Option<ConnectOutcome>) {
        match outcome {
            Some(o) => {
                match o.path {
                    Path::Direct => self.direct += 1,
                    Path::Reversal => self.reversal += 1,
                    Path::HolePunch => self.hole_punch += 1,
                    Path::Relay => self.relay += 1,
                }
                self.setup_total_s += o.setup_s;
            }
            None => self.failed += 1,
        }
    }

    /// Total successful connections.
    pub fn successes(&self) -> u64 {
        self.direct + self.reversal + self.hole_punch + self.relay
    }

    /// Success ratio over all attempts.
    pub fn success_rate(&self) -> f64 {
        let total = self.successes() + self.failed;
        if total == 0 {
            0.0
        } else {
            self.successes() as f64 / total as f64
        }
    }

    /// Mean setup time over successful attempts, seconds.
    pub fn mean_setup_s(&self) -> f64 {
        if self.successes() == 0 {
            0.0
        } else {
            self.setup_total_s / self.successes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_desim::RngStream;

    fn rng() -> RngStream {
        RngStream::new(11)
    }

    #[test]
    fn open_server_connects_directly() {
        let o = connect(
            NatType::Symmetric,
            NatType::Open,
            &TraversalPolicy::default(),
            &mut rng(),
        )
        .unwrap();
        assert_eq!(o.path, Path::Direct);
        assert_eq!(o.tiers_tried, 1);
        assert!(o.setup_s < 1.0);
    }

    #[test]
    fn reversal_when_requester_open() {
        let o = connect(
            NatType::Open,
            NatType::Symmetric,
            &TraversalPolicy::default(),
            &mut rng(),
        )
        .unwrap();
        assert_eq!(o.path, Path::Reversal);
        assert_eq!(o.tiers_tried, 2);
    }

    #[test]
    fn symmetric_pair_relays() {
        // Symmetric↔symmetric punch probability is 0.0025; over a few
        // trials we should overwhelmingly see relay.
        let mut r = rng();
        let mut relays = 0;
        for _ in 0..100 {
            let o = connect(
                NatType::Symmetric,
                NatType::Symmetric,
                &TraversalPolicy::default(),
                &mut r,
            )
            .unwrap();
            if o.path == Path::Relay {
                relays += 1;
            }
        }
        assert!(relays >= 95, "relays={relays}");
    }

    #[test]
    fn blocked_pair_without_relay_fails() {
        let p = TraversalPolicy {
            allow_relay: false,
            ..TraversalPolicy::default()
        };
        let o = connect(
            NatType::BlockedInbound,
            NatType::BlockedInbound,
            &p,
            &mut rng(),
        );
        assert_eq!(o, None);
    }

    #[test]
    fn direct_only_policy_mirrors_prototype() {
        let p = TraversalPolicy::direct_only();
        assert!(connect(NatType::Open, NatType::Open, &p, &mut rng()).is_some());
        assert!(connect(NatType::Open, NatType::PortRestricted, &p, &mut rng()).is_none());
    }

    #[test]
    fn failed_tiers_add_latency() {
        let p = TraversalPolicy::default();
        let direct = connect(NatType::Open, NatType::Open, &p, &mut rng()).unwrap();
        let relayed = connect(
            NatType::BlockedInbound,
            NatType::BlockedInbound,
            &p,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(relayed.path, Path::Relay);
        assert!(relayed.setup_s > direct.setup_s + 2.0 * p.failed_tier_cost_s);
        assert_eq!(relayed.tiers_tried, 4);
    }

    #[test]
    fn stats_aggregate() {
        let mut s = TraversalStats::default();
        s.record(Some(ConnectOutcome {
            path: Path::Direct,
            setup_s: 0.2,
            tiers_tried: 1,
        }));
        s.record(Some(ConnectOutcome {
            path: Path::Relay,
            setup_s: 1.0,
            tiers_tried: 4,
        }));
        s.record(None);
        assert_eq!(s.successes(), 2);
        assert!((s.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_setup_s() - 0.6).abs() < 1e-12);
    }
}
