//! NAT boxes and their effect on peer connectivity.
//!
//! §III.D of the paper discusses why inter-client transfers are hard on
//! the open Internet: volunteers sit behind NATs and firewalls with
//! non-standardized behaviour. This module classifies endpoints with the
//! usual STUN taxonomy and answers the question the traversal tier cares
//! about: *can X establish a TCP connection to Y, and by which method?*

use std::fmt;

/// Endpoint connectivity class (STUN/RFC-3489 taxonomy, as cited by the
/// paper's references \[18\]\[19\]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum NatType {
    /// Publicly reachable address, no NAT/firewall.
    Open,
    /// Full-cone NAT: any external host may use a discovered mapping.
    FullCone,
    /// (Address-)restricted cone: mapping usable only by previously
    /// contacted remote addresses.
    RestrictedCone,
    /// Port-restricted cone: mapping bound to remote (addr, port).
    PortRestricted,
    /// Symmetric NAT: fresh mapping per destination — hole punching
    /// generally fails, TCP hole punching essentially always.
    Symmetric,
    /// Inbound-blocking firewall with no traversal cooperation (UDP
    /// blocked, no STUN): only outbound connections work.
    BlockedInbound,
}

impl NatType {
    /// All variants, for sweeps.
    pub const ALL: [NatType; 6] = [
        NatType::Open,
        NatType::FullCone,
        NatType::RestrictedCone,
        NatType::PortRestricted,
        NatType::Symmetric,
        NatType::BlockedInbound,
    ];

    /// Can this endpoint accept a *direct* unsolicited TCP connection?
    pub fn accepts_inbound(self) -> bool {
        matches!(self, NatType::Open)
    }

    /// Baseline probability that **TCP hole punching** (STUN-assisted
    /// simultaneous open, per Ford et al. \[18\]) succeeds when this
    /// endpoint is one side. The paper notes TCP punching works "less
    /// effectively" than UDP; these per-side factors multiply.
    pub fn tcp_punch_factor(self) -> f64 {
        match self {
            NatType::Open => 1.0,
            NatType::FullCone => 0.95,
            NatType::RestrictedCone => 0.9,
            NatType::PortRestricted => 0.8,
            NatType::Symmetric => 0.05,
            NatType::BlockedInbound => 0.0,
        }
    }
}

impl fmt::Display for NatType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NatType::Open => "open",
            NatType::FullCone => "full-cone",
            NatType::RestrictedCone => "restricted-cone",
            NatType::PortRestricted => "port-restricted",
            NatType::Symmetric => "symmetric",
            NatType::BlockedInbound => "blocked",
        };
        f.write_str(s)
    }
}

/// A population mix of NAT types, used to draw volunteer endpoints.
#[derive(Clone, Debug)]
pub struct NatMix {
    weights: Vec<(NatType, f64)>,
}

impl NatMix {
    /// A mix from `(type, weight)` pairs; weights need not sum to 1.
    ///
    /// # Panics
    /// If all weights are zero/negative or the list is empty.
    pub fn new(weights: Vec<(NatType, f64)>) -> Self {
        let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "NatMix needs positive total weight");
        NatMix { weights }
    }

    /// Every volunteer publicly reachable (the Emulab cluster situation —
    /// the experiments in §IV effectively assume this).
    pub fn all_open() -> Self {
        NatMix::new(vec![(NatType::Open, 1.0)])
    }

    /// A rough residential-Internet mix (majority behind some NAT; a
    /// meaningful symmetric fraction), for the §III.D ablation.
    pub fn internet_2011() -> Self {
        NatMix::new(vec![
            (NatType::Open, 0.12),
            (NatType::FullCone, 0.18),
            (NatType::RestrictedCone, 0.20),
            (NatType::PortRestricted, 0.30),
            (NatType::Symmetric, 0.15),
            (NatType::BlockedInbound, 0.05),
        ])
    }

    /// Draws a NAT type with the configured weights.
    pub fn draw(&self, rng: &mut vmr_desim::RngStream) -> NatType {
        let total: f64 = self.weights.iter().map(|(_, w)| w.max(0.0)).sum();
        let mut x = rng.uniform() * total;
        for &(t, w) in &self.weights {
            let w = w.max(0.0);
            if x < w {
                return t;
            }
            x -= w;
        }
        self.weights.last().expect("non-empty").0
    }

    /// The configured `(type, weight)` pairs.
    pub fn weights(&self) -> &[(NatType, f64)] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmr_desim::RngStream;

    #[test]
    fn only_open_accepts_inbound() {
        for t in NatType::ALL {
            assert_eq!(t.accepts_inbound(), t == NatType::Open);
        }
    }

    #[test]
    fn punch_factors_monotone_with_restrictiveness() {
        let f: Vec<f64> = NatType::ALL.iter().map(|t| t.tcp_punch_factor()).collect();
        for w in f.windows(2) {
            assert!(w[0] >= w[1], "punch factor should not increase: {f:?}");
        }
        assert_eq!(NatType::BlockedInbound.tcp_punch_factor(), 0.0);
    }

    #[test]
    fn mix_draw_respects_support() {
        let mix = NatMix::new(vec![(NatType::Symmetric, 1.0)]);
        let mut rng = RngStream::new(1);
        for _ in 0..100 {
            assert_eq!(mix.draw(&mut rng), NatType::Symmetric);
        }
    }

    #[test]
    fn mix_draw_roughly_proportional() {
        let mix = NatMix::new(vec![(NatType::Open, 3.0), (NatType::Symmetric, 1.0)]);
        let mut rng = RngStream::new(7);
        let n = 40_000;
        let open = (0..n)
            .filter(|_| mix.draw(&mut rng) == NatType::Open)
            .count();
        let frac = open as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "open fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_weight_mix_panics() {
        NatMix::new(vec![(NatType::Open, 0.0)]);
    }

    #[test]
    fn internet_mix_covers_all_types() {
        let mix = NatMix::internet_2011();
        assert_eq!(mix.weights().len(), 6);
    }
}
