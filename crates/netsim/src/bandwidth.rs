//! Max–min fair bandwidth allocation with two priority classes.
//!
//! Classic progressive filling: repeatedly find the most-constrained link
//! (least fair share per unfrozen flow), freeze its flows at that share,
//! subtract, repeat. Every active flow ends up with the largest rate it
//! can get without reducing any poorer flow's rate — which is what a set
//! of long-lived TCP flows over a shared access link approximates.
//!
//! The two-class variant models **TCP-Nice** (§III.C/D of the paper):
//! background flows are allocated only the capacity left over after all
//! foreground flows have been served, so volunteer-to-volunteer bulk
//! transfers do not hurt interactive traffic.

use crate::topology::{LinkRef, Topology};
use std::collections::HashMap;

/// Scheduling class of a flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Priority {
    /// Normal traffic; shares links max–min fairly with its own class.
    #[default]
    Foreground,
    /// TCP-Nice style scavenger traffic; uses leftover capacity only.
    Background,
}

/// A flow the allocator should assign a rate to.
#[derive(Clone, Debug)]
pub struct FlowDemand<K> {
    /// Caller's key for this flow.
    pub key: K,
    /// Directed link endpoints the flow traverses.
    pub links: Vec<LinkRef>,
    /// Scheduling class.
    pub priority: Priority,
    /// Optional application-level rate cap, bytes/second.
    pub rate_cap: Option<f64>,
}

/// Computes max–min fair rates for `flows` over `topo`.
///
/// Returns one rate per input flow, in input order, bytes/second.
/// Foreground flows are allocated first; background flows divide the
/// remaining headroom max–min fairly among themselves.
pub fn allocate<K: Clone>(topo: &Topology, flows: &[FlowDemand<K>]) -> Vec<f64> {
    let mut rates = vec![0.0; flows.len()];
    let mut remaining: HashMap<LinkRef, f64> = HashMap::new();
    for f in flows {
        for &l in &f.links {
            remaining.entry(l).or_insert_with(|| topo.capacity(l));
        }
    }
    let fg: Vec<usize> = indices_of(flows, Priority::Foreground);
    let bg: Vec<usize> = indices_of(flows, Priority::Background);
    fill_class(flows, &fg, &mut remaining, &mut rates);
    fill_class(flows, &bg, &mut remaining, &mut rates);
    rates
}

fn indices_of<K>(flows: &[FlowDemand<K>], p: Priority) -> Vec<usize> {
    flows
        .iter()
        .enumerate()
        .filter(|(_, f)| f.priority == p)
        .map(|(i, _)| i)
        .collect()
}

/// Progressive filling for one priority class over the capacities left
/// in `remaining`. Mutates `remaining` so a later class sees leftovers.
fn fill_class<K>(
    flows: &[FlowDemand<K>],
    class: &[usize],
    remaining: &mut HashMap<LinkRef, f64>,
    rates: &mut [f64],
) {
    let mut unfrozen: Vec<usize> = class
        .iter()
        .copied()
        .filter(|&i| !flows[i].links.is_empty())
        .collect();
    // Flows traversing no links (loopback) are only bounded by their cap.
    for &i in class {
        if flows[i].links.is_empty() {
            rates[i] = flows[i].rate_cap.unwrap_or(f64::INFINITY);
        }
    }

    while !unfrozen.is_empty() {
        // Count unfrozen flows per link and find the bottleneck share.
        let mut counts: HashMap<LinkRef, u32> = HashMap::new();
        for &i in &unfrozen {
            for &l in &flows[i].links {
                *counts.entry(l).or_insert(0) += 1;
            }
        }
        let mut bottleneck_share = f64::INFINITY;
        for (&l, &n) in &counts {
            let cap = remaining.get(&l).copied().unwrap_or(0.0).max(0.0);
            let share = cap / n as f64;
            if share < bottleneck_share {
                bottleneck_share = share;
            }
        }
        // Rate-capped flows below the bottleneck share freeze at their cap.
        let capped: Vec<usize> = unfrozen
            .iter()
            .copied()
            .filter(|&i| flows[i].rate_cap.is_some_and(|c| c < bottleneck_share))
            .collect();
        let (freeze_set, share): (Vec<usize>, Option<f64>) = if !capped.is_empty() {
            (capped, None)
        } else {
            // Freeze every flow on a bottleneck link.
            let set: Vec<usize> = unfrozen
                .iter()
                .copied()
                .filter(|&i| {
                    flows[i].links.iter().any(|l| {
                        let cap = remaining.get(l).copied().unwrap_or(0.0).max(0.0);
                        let n = counts[l] as f64;
                        (cap / n - bottleneck_share).abs() <= 1e-9 * bottleneck_share.max(1.0)
                    })
                })
                .collect();
            (set, Some(bottleneck_share))
        };
        debug_assert!(!freeze_set.is_empty(), "progressive filling stalled");
        for &i in &freeze_set {
            let r = match share {
                Some(s) => s.min(flows[i].rate_cap.unwrap_or(f64::INFINITY)),
                None => flows[i].rate_cap.expect("capped freeze without cap"),
            };
            rates[i] = r;
            for &l in &flows[i].links {
                if let Some(c) = remaining.get_mut(&l) {
                    *c = (*c - r).max(0.0);
                }
            }
        }
        unfrozen.retain(|i| !freeze_set.contains(i));
        if share == Some(0.0) {
            // No capacity left for this class: everyone remaining gets 0.
            for &i in &unfrozen {
                rates[i] = 0.0;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Direction, HostId, HostLink};

    fn topo(n: usize, mbit: f64) -> Topology {
        let mut t = Topology::new();
        for _ in 0..n {
            t.add_host(HostLink::symmetric_mbit(mbit, 0.001));
        }
        t
    }

    fn demand(src: u32, dst: u32, prio: Priority) -> FlowDemand<u32> {
        FlowDemand {
            key: src * 1000 + dst,
            links: vec![
                LinkRef { host: HostId(src), dir: Direction::Up },
                LinkRef { host: HostId(dst), dir: Direction::Down },
            ],
            priority: prio,
            rate_cap: None,
        }
    }

    const MBIT100: f64 = 100.0 * 1e6 / 8.0;

    #[test]
    fn single_flow_gets_full_link() {
        let t = topo(2, 100.0);
        let rates = allocate(&t, &[demand(0, 1, Priority::Foreground)]);
        assert!((rates[0] - MBIT100).abs() < 1.0);
    }

    #[test]
    fn shared_uplink_splits_fairly() {
        // Two flows out of host 0 to different destinations: both are
        // bottlenecked on h0's uplink → 50/50.
        let t = topo(3, 100.0);
        let rates = allocate(
            &t,
            &[demand(0, 1, Priority::Foreground), demand(0, 2, Priority::Foreground)],
        );
        assert!((rates[0] - MBIT100 / 2.0).abs() < 1.0);
        assert!((rates[1] - MBIT100 / 2.0).abs() < 1.0);
    }

    #[test]
    fn max_min_not_just_equal_split() {
        // h0 uplink carries flows to h1 and h2; h1's downlink also carries
        // a flow from h3. All links 100 Mbit.
        //   f0: 0→1, f1: 0→2, f2: 3→1.
        // h1.down has two flows → share 50; h0.up has two flows → share 50.
        // Everyone converges at 50 here. Now shrink h3's uplink to 20 Mbit:
        // f2 freezes at 20; f0 gets min(h0.up share, h1.down leftover 80) =
        // 50 from h0.up; f1 gets 50.
        let mut t = topo(3, 100.0);
        let h3 = t.add_host(HostLink::symmetric_mbit(20.0, 0.001));
        assert_eq!(h3, HostId(3));
        let rates = allocate(
            &t,
            &[
                demand(0, 1, Priority::Foreground),
                demand(0, 2, Priority::Foreground),
                demand(3, 1, Priority::Foreground),
            ],
        );
        let mbit = |x: f64| x * 8.0 / 1e6;
        assert!((mbit(rates[2]) - 20.0).abs() < 0.01, "f2={}", mbit(rates[2]));
        assert!((mbit(rates[0]) - 50.0).abs() < 0.01, "f0={}", mbit(rates[0]));
        assert!((mbit(rates[1]) - 50.0).abs() < 0.01, "f1={}", mbit(rates[1]));
    }

    #[test]
    fn background_yields_to_foreground() {
        let t = topo(2, 100.0);
        let rates = allocate(
            &t,
            &[demand(0, 1, Priority::Foreground), demand(0, 1, Priority::Background)],
        );
        assert!((rates[0] - MBIT100).abs() < 1.0, "fg gets the whole link");
        assert!(rates[1] < 1.0, "bg starved while fg active, got {}", rates[1]);
    }

    #[test]
    fn background_uses_leftover() {
        let t = topo(3, 100.0);
        // fg: 0→1 capped at 40 Mbit; bg: 0→2 should get the remaining 60.
        let mut fg = demand(0, 1, Priority::Foreground);
        fg.rate_cap = Some(40.0 * 1e6 / 8.0);
        let bg = demand(0, 2, Priority::Background);
        let rates = allocate(&t, &[fg, bg]);
        assert!((rates[0] * 8.0 / 1e6 - 40.0).abs() < 0.01);
        assert!((rates[1] * 8.0 / 1e6 - 60.0).abs() < 0.01);
    }

    #[test]
    fn rate_cap_respected() {
        let t = topo(2, 100.0);
        let mut f = demand(0, 1, Priority::Foreground);
        f.rate_cap = Some(1000.0);
        let rates = allocate(&t, &[f]);
        assert_eq!(rates[0], 1000.0);
    }

    #[test]
    fn relay_path_constrained_by_middle_hop() {
        // 0 → relay(2) → 1 where the relay has a 10 Mbit link.
        let mut t = topo(2, 100.0);
        let relay = t.add_host(HostLink::symmetric_mbit(10.0, 0.001));
        let f = FlowDemand {
            key: 0u32,
            links: vec![
                LinkRef { host: HostId(0), dir: Direction::Up },
                LinkRef { host: relay, dir: Direction::Down },
                LinkRef { host: relay, dir: Direction::Up },
                LinkRef { host: HostId(1), dir: Direction::Down },
            ],
            priority: Priority::Foreground,
            rate_cap: None,
        };
        let rates = allocate(&t, &[f]);
        assert!((rates[0] * 8.0 / 1e6 - 10.0).abs() < 0.01);
    }

    #[test]
    fn loopback_flow_unbounded_unless_capped() {
        let t = topo(1, 100.0);
        let f: FlowDemand<u32> = FlowDemand {
            key: 0,
            links: vec![],
            priority: Priority::Foreground,
            rate_cap: Some(5.0),
        };
        assert_eq!(allocate(&t, &[f])[0], 5.0);
        let f2: FlowDemand<u32> = FlowDemand {
            key: 0,
            links: vec![],
            priority: Priority::Foreground,
            rate_cap: None,
        };
        assert!(allocate(&t, &[f2])[0].is_infinite());
    }

    #[test]
    fn many_flows_conservation() {
        // 8 clients all downloading from host 0: h0.up is the bottleneck;
        // the sum of rates must equal its capacity.
        let t = topo(9, 100.0);
        let flows: Vec<_> = (1..9).map(|d| demand(0, d, Priority::Foreground)).collect();
        let rates = allocate(&t, &flows);
        let sum: f64 = rates.iter().sum();
        assert!((sum - MBIT100).abs() < 1.0, "sum {sum}");
        for r in &rates {
            assert!((r - MBIT100 / 8.0).abs() < 1.0);
        }
    }
}
