//! Max–min fair bandwidth allocation with two priority classes.
//!
//! Classic progressive filling: repeatedly find the most-constrained link
//! (least fair share per unfrozen flow), freeze its flows at that share,
//! subtract, repeat. Every active flow ends up with the largest rate it
//! can get without reducing any poorer flow's rate — which is what a set
//! of long-lived TCP flows over a shared access link approximates.
//!
//! The two-class variant models **TCP-Nice** (§III.C/D of the paper):
//! background flows are allocated only the capacity left over after all
//! foreground flows have been served, so volunteer-to-volunteer bulk
//! transfers do not hurt interactive traffic.
//!
//! Two implementations compute *bit-identical* rates:
//!
//! * [`Allocator`] — the production path. Per-link state lives in flat
//!   arrays indexed by [`Topology::link_index`], initialized lazily via
//!   an epoch stamp (per-call cost depends on the links *touched by the
//!   demand set*, not on the topology size). Bottleneck discovery uses a
//!   lazily-invalidated min-heap: progressive filling only ever *raises*
//!   a link's per-flow share, so a stale heap entry is a lower bound and
//!   the first entry whose stored share matches its current share is the
//!   true minimum. Each round costs O(f·d·log L) in the flows frozen
//!   that round instead of O(F·d + L) over all remaining flows.
//! * [`allocate_reference`] — the original O(rounds · F·d) hash-map
//!   formulation, kept as the executable specification. Property tests
//!   assert the two agree; benches measure the gap.

use crate::topology::{LinkRef, Topology};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Scheduling class of a flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Priority {
    /// Normal traffic; shares links max–min fairly with its own class.
    #[default]
    Foreground,
    /// TCP-Nice style scavenger traffic; uses leftover capacity only.
    Background,
}

/// A flow the allocator should assign a rate to.
#[derive(Clone, Debug)]
pub struct FlowDemand<K> {
    /// Caller's key for this flow.
    pub key: K,
    /// Directed link endpoints the flow traverses.
    pub links: Vec<LinkRef>,
    /// Scheduling class.
    pub priority: Priority,
    /// Optional application-level rate cap, bytes/second.
    pub rate_cap: Option<f64>,
}

/// A demand whose path is given as dense link indices (see
/// [`Topology::link_index`]). The borrow-only input of
/// [`Allocator::allocate_into`], used by the flow engine so a
/// reallocation does not clone any path.
#[derive(Clone, Copy, Debug)]
pub struct RouteDemand<'a> {
    /// Dense indices of the links the flow traverses.
    pub links: &'a [u32],
    /// Scheduling class.
    pub priority: Priority,
    /// Optional application-level rate cap, bytes/second.
    pub rate_cap: Option<f64>,
}

/// Computes max–min fair rates for `flows` over `topo`.
///
/// Returns one rate per input flow, in input order, bytes/second.
/// Foreground flows are allocated first; background flows divide the
/// remaining headroom max–min fairly among themselves.
///
/// Convenience wrapper over [`Allocator`]; callers that reallocate
/// frequently should hold an `Allocator` to reuse its scratch state.
pub fn allocate<K: Clone>(topo: &Topology, flows: &[FlowDemand<K>]) -> Vec<f64> {
    let links: Vec<Vec<u32>> = flows
        .iter()
        .map(|f| f.links.iter().map(|&l| topo.link_index(l) as u32).collect())
        .collect();
    let demands: Vec<RouteDemand<'_>> = flows
        .iter()
        .zip(&links)
        .map(|(f, l)| RouteDemand {
            links: l,
            priority: f.priority,
            rate_cap: f.rate_cap,
        })
        .collect();
    let mut alloc = Allocator::new();
    let mut rates = Vec::new();
    alloc.allocate_into(topo, &demands, &mut rates);
    rates
}

/// `f64` ordered by `total_cmp` so shares and caps can key a heap.
/// The allocator never produces NaN (subtractions are clamped at zero),
/// so the total order coincides with the numeric one.
#[derive(Clone, Copy, PartialEq, Debug)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Reusable progressive-filling state over dense link indices.
///
/// All buffers are retained between calls; a call allocates nothing
/// once the buffers have grown to the topology/demand size. Per-link
/// state is initialized lazily with an epoch stamp, so a call touching
/// `k` links of a 100 000-link topology costs O(k), not O(100 000).
#[derive(Debug, Default)]
pub struct Allocator {
    epoch: u64,
    /// Epoch stamp per link; `remaining` is valid iff the stamp matches.
    link_epoch: Vec<u64>,
    /// Capacity still unassigned on each touched link.
    remaining: Vec<f64>,
    /// Unfrozen flows of the current class on each touched link.
    count: Vec<u32>,
    /// Flow indices of the current class using each touched link.
    flows_on_link: Vec<Vec<u32>>,
    /// Links referenced by the current demand set.
    touched: Vec<u32>,
    /// Per-flow frozen mask (replaces the O(n²) retain/contains scan).
    frozen: Vec<bool>,
    /// Lazy min-heap of (share lower bound, link). Valid because shares
    /// only grow as flows freeze: a stale entry under-estimates.
    link_heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    /// Min-heap of (rate cap, flow) for the current class.
    capped_heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    /// Flow indices frozen in the current round, ascending.
    freeze_buf: Vec<u32>,
    /// Links at the bottleneck share in the current round.
    bottleneck_links: Vec<u32>,
    /// Scratch class index lists.
    fg: Vec<u32>,
    bg: Vec<u32>,
}

impl Allocator {
    /// A fresh allocator with empty scratch buffers.
    pub fn new() -> Self {
        Allocator::default()
    }

    /// Computes max–min fair rates for `demands` over `topo` into
    /// `rates` (cleared and resized to `demands.len()`), bytes/second.
    ///
    /// Produces bit-identical results to [`allocate_reference`]: same
    /// bottleneck shares, same freeze order (ascending demand index
    /// within a round), same floating-point operation sequence.
    pub fn allocate_into(
        &mut self,
        topo: &Topology,
        demands: &[RouteDemand<'_>],
        rates: &mut Vec<f64>,
    ) {
        rates.clear();
        rates.resize(demands.len(), 0.0);
        let num_links = topo.num_links();
        if self.link_epoch.len() < num_links {
            self.link_epoch.resize(num_links, 0);
            self.remaining.resize(num_links, 0.0);
            self.count.resize(num_links, 0);
            self.flows_on_link.resize_with(num_links, Vec::new);
        }
        if self.frozen.len() < demands.len() {
            self.frozen.resize(demands.len(), false);
        }
        self.frozen[..demands.len()].fill(false);

        // Lazily initialize `remaining` for every link the demand set
        // touches (matches the reference's or_insert(capacity) pass).
        self.epoch += 1;
        self.touched.clear();
        for d in demands {
            for &l in d.links {
                let li = l as usize;
                if self.link_epoch[li] != self.epoch {
                    self.link_epoch[li] = self.epoch;
                    self.remaining[li] = topo.capacity_at(li);
                    self.touched.push(l);
                }
            }
        }

        let mut fg = std::mem::take(&mut self.fg);
        let mut bg = std::mem::take(&mut self.bg);
        fg.clear();
        bg.clear();
        for (i, d) in demands.iter().enumerate() {
            match d.priority {
                Priority::Foreground => fg.push(i as u32),
                Priority::Background => bg.push(i as u32),
            }
        }
        self.fill_class(demands, &fg, rates);
        self.fill_class(demands, &bg, rates);
        self.fg = fg;
        self.bg = bg;
    }

    /// Progressive filling for one priority class over the capacities
    /// left in `remaining`; a later class sees the leftovers.
    fn fill_class(&mut self, demands: &[RouteDemand<'_>], class: &[u32], rates: &mut [f64]) {
        for &l in &self.touched {
            let li = l as usize;
            self.count[li] = 0;
            self.flows_on_link[li].clear();
        }
        self.link_heap.clear();
        self.capped_heap.clear();

        let mut unfrozen = 0usize;
        for &i in class {
            let d = &demands[i as usize];
            if d.links.is_empty() {
                // Loopback flows are only bounded by their cap.
                rates[i as usize] = d.rate_cap.unwrap_or(f64::INFINITY);
                continue;
            }
            unfrozen += 1;
            for &l in d.links {
                self.count[l as usize] += 1;
                self.flows_on_link[l as usize].push(i);
            }
            if let Some(c) = d.rate_cap {
                self.capped_heap.push(Reverse((OrdF64(c), i)));
            }
        }
        for &l in &self.touched {
            let li = l as usize;
            if self.count[li] > 0 {
                let share = self.remaining[li].max(0.0) / self.count[li] as f64;
                self.link_heap.push(Reverse((OrdF64(share), l)));
            }
        }

        while unfrozen > 0 {
            // Lazy bottleneck discovery: pop stale entries (share lower
            // bounds) until the top matches its link's current share —
            // shares never shrink, so that entry is the global minimum.
            let bottleneck_share = loop {
                let &Reverse((s, l)) = self
                    .link_heap
                    .peek()
                    .expect("progressive filling: unfrozen flows but no links");
                let li = l as usize;
                if self.count[li] == 0 {
                    self.link_heap.pop();
                    continue;
                }
                let cur = self.remaining[li].max(0.0) / self.count[li] as f64;
                if cur == s.0 {
                    break cur;
                }
                self.link_heap.pop();
                self.link_heap.push(Reverse((OrdF64(cur), l)));
            };

            // Rate-capped flows below the bottleneck share freeze at
            // their cap (strict `<`, as in the reference).
            self.freeze_buf.clear();
            while let Some(&Reverse((c, i))) = self.capped_heap.peek() {
                if self.frozen[i as usize] {
                    self.capped_heap.pop();
                    continue;
                }
                if c.0 < bottleneck_share {
                    self.capped_heap.pop();
                    self.freeze_buf.push(i);
                } else {
                    break;
                }
            }
            if !self.freeze_buf.is_empty() {
                self.freeze_buf.sort_unstable();
                unfrozen -= self.freeze_buf.len();
                for k in 0..self.freeze_buf.len() {
                    let i = self.freeze_buf[k] as usize;
                    let r = demands[i].rate_cap.expect("capped freeze without cap");
                    rates[i] = r;
                    self.frozen[i] = true;
                    for &l in demands[i].links {
                        let li = l as usize;
                        self.remaining[li] = (self.remaining[li] - r).max(0.0);
                        self.count[li] -= 1;
                    }
                }
                continue;
            }

            // Freeze every flow on a link whose share is within the
            // reference's tolerance window of the bottleneck share.
            let tol = 1e-9 * bottleneck_share.max(1.0);
            self.bottleneck_links.clear();
            while let Some(&Reverse((s, l))) = self.link_heap.peek() {
                if s.0 - bottleneck_share > tol {
                    break;
                }
                self.link_heap.pop();
                let li = l as usize;
                if self.count[li] == 0 {
                    continue;
                }
                let cur = self.remaining[li].max(0.0) / self.count[li] as f64;
                if cur != s.0 {
                    self.link_heap.push(Reverse((OrdF64(cur), l)));
                    continue;
                }
                self.bottleneck_links.push(l);
            }
            self.freeze_buf.clear();
            for &l in &self.bottleneck_links {
                for &i in &self.flows_on_link[l as usize] {
                    if !self.frozen[i as usize] {
                        self.freeze_buf.push(i);
                    }
                }
            }
            self.freeze_buf.sort_unstable();
            self.freeze_buf.dedup();
            debug_assert!(!self.freeze_buf.is_empty(), "progressive filling stalled");
            unfrozen -= self.freeze_buf.len();
            for k in 0..self.freeze_buf.len() {
                let i = self.freeze_buf[k] as usize;
                let r = bottleneck_share.min(demands[i].rate_cap.unwrap_or(f64::INFINITY));
                rates[i] = r;
                self.frozen[i] = true;
                for &l in demands[i].links {
                    let li = l as usize;
                    self.remaining[li] = (self.remaining[li] - r).max(0.0);
                    self.count[li] -= 1;
                }
            }
            if bottleneck_share == 0.0 {
                // No capacity left for this class: everyone remaining
                // keeps the 0 they were initialized with.
                break;
            }
        }
    }
}

/// The original hash-map progressive filling, kept verbatim as the
/// executable specification of [`allocate`] / [`Allocator`].
///
/// O(rounds · flows · path length) per call — fine for the paper's
/// 40-host testbed, quadratic pain at thousands of concurrent flows.
/// Property tests assert [`Allocator`] matches it bit-for-bit; the
/// `flow_churn` bench measures the speedup.
pub fn allocate_reference<K: Clone>(topo: &Topology, flows: &[FlowDemand<K>]) -> Vec<f64> {
    let mut rates = vec![0.0; flows.len()];
    let mut remaining: HashMap<LinkRef, f64> = HashMap::new();
    for f in flows {
        for &l in &f.links {
            remaining.entry(l).or_insert_with(|| topo.capacity(l));
        }
    }
    let fg: Vec<usize> = indices_of(flows, Priority::Foreground);
    let bg: Vec<usize> = indices_of(flows, Priority::Background);
    fill_class_reference(flows, &fg, &mut remaining, &mut rates);
    fill_class_reference(flows, &bg, &mut remaining, &mut rates);
    rates
}

fn indices_of<K>(flows: &[FlowDemand<K>], p: Priority) -> Vec<usize> {
    flows
        .iter()
        .enumerate()
        .filter(|(_, f)| f.priority == p)
        .map(|(i, _)| i)
        .collect()
}

/// Progressive filling for one priority class over the capacities left
/// in `remaining`. Mutates `remaining` so a later class sees leftovers.
fn fill_class_reference<K>(
    flows: &[FlowDemand<K>],
    class: &[usize],
    remaining: &mut HashMap<LinkRef, f64>,
    rates: &mut [f64],
) {
    let mut unfrozen: Vec<usize> = class
        .iter()
        .copied()
        .filter(|&i| !flows[i].links.is_empty())
        .collect();
    // Flows traversing no links (loopback) are only bounded by their cap.
    for &i in class {
        if flows[i].links.is_empty() {
            rates[i] = flows[i].rate_cap.unwrap_or(f64::INFINITY);
        }
    }

    while !unfrozen.is_empty() {
        // Count unfrozen flows per link and find the bottleneck share.
        let mut counts: HashMap<LinkRef, u32> = HashMap::new();
        for &i in &unfrozen {
            for &l in &flows[i].links {
                *counts.entry(l).or_insert(0) += 1;
            }
        }
        let mut bottleneck_share = f64::INFINITY;
        for (&l, &n) in &counts {
            let cap = remaining.get(&l).copied().unwrap_or(0.0).max(0.0);
            let share = cap / n as f64;
            if share < bottleneck_share {
                bottleneck_share = share;
            }
        }
        // Rate-capped flows below the bottleneck share freeze at their cap.
        let capped: Vec<usize> = unfrozen
            .iter()
            .copied()
            .filter(|&i| flows[i].rate_cap.is_some_and(|c| c < bottleneck_share))
            .collect();
        let (freeze_set, share): (Vec<usize>, Option<f64>) = if !capped.is_empty() {
            (capped, None)
        } else {
            // Freeze every flow on a bottleneck link.
            let set: Vec<usize> = unfrozen
                .iter()
                .copied()
                .filter(|&i| {
                    flows[i].links.iter().any(|l| {
                        let cap = remaining.get(l).copied().unwrap_or(0.0).max(0.0);
                        let n = counts[l] as f64;
                        (cap / n - bottleneck_share).abs() <= 1e-9 * bottleneck_share.max(1.0)
                    })
                })
                .collect();
            (set, Some(bottleneck_share))
        };
        debug_assert!(!freeze_set.is_empty(), "progressive filling stalled");
        for &i in &freeze_set {
            let r = match share {
                Some(s) => s.min(flows[i].rate_cap.unwrap_or(f64::INFINITY)),
                None => flows[i].rate_cap.expect("capped freeze without cap"),
            };
            rates[i] = r;
            for &l in &flows[i].links {
                if let Some(c) = remaining.get_mut(&l) {
                    *c = (*c - r).max(0.0);
                }
            }
        }
        unfrozen.retain(|i| !freeze_set.contains(i));
        if share == Some(0.0) {
            // No capacity left for this class: everyone remaining gets 0.
            for &i in &unfrozen {
                rates[i] = 0.0;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Direction, HostId, HostLink};

    fn topo(n: usize, mbit: f64) -> Topology {
        let mut t = Topology::new();
        for _ in 0..n {
            t.add_host(HostLink::symmetric_mbit(mbit, 0.001));
        }
        t
    }

    fn demand(src: u32, dst: u32, prio: Priority) -> FlowDemand<u32> {
        FlowDemand {
            key: src * 1000 + dst,
            links: vec![
                LinkRef {
                    host: HostId(src),
                    dir: Direction::Up,
                },
                LinkRef {
                    host: HostId(dst),
                    dir: Direction::Down,
                },
            ],
            priority: prio,
            rate_cap: None,
        }
    }

    const MBIT100: f64 = 100.0 * 1e6 / 8.0;

    #[test]
    fn single_flow_gets_full_link() {
        let t = topo(2, 100.0);
        let rates = allocate(&t, &[demand(0, 1, Priority::Foreground)]);
        assert!((rates[0] - MBIT100).abs() < 1.0);
    }

    #[test]
    fn shared_uplink_splits_fairly() {
        // Two flows out of host 0 to different destinations: both are
        // bottlenecked on h0's uplink → 50/50.
        let t = topo(3, 100.0);
        let rates = allocate(
            &t,
            &[
                demand(0, 1, Priority::Foreground),
                demand(0, 2, Priority::Foreground),
            ],
        );
        assert!((rates[0] - MBIT100 / 2.0).abs() < 1.0);
        assert!((rates[1] - MBIT100 / 2.0).abs() < 1.0);
    }

    #[test]
    fn max_min_not_just_equal_split() {
        // h0 uplink carries flows to h1 and h2; h1's downlink also carries
        // a flow from h3. All links 100 Mbit.
        //   f0: 0→1, f1: 0→2, f2: 3→1.
        // h1.down has two flows → share 50; h0.up has two flows → share 50.
        // Everyone converges at 50 here. Now shrink h3's uplink to 20 Mbit:
        // f2 freezes at 20; f0 gets min(h0.up share, h1.down leftover 80) =
        // 50 from h0.up; f1 gets 50.
        let mut t = topo(3, 100.0);
        let h3 = t.add_host(HostLink::symmetric_mbit(20.0, 0.001));
        assert_eq!(h3, HostId(3));
        let rates = allocate(
            &t,
            &[
                demand(0, 1, Priority::Foreground),
                demand(0, 2, Priority::Foreground),
                demand(3, 1, Priority::Foreground),
            ],
        );
        let mbit = |x: f64| x * 8.0 / 1e6;
        assert!(
            (mbit(rates[2]) - 20.0).abs() < 0.01,
            "f2={}",
            mbit(rates[2])
        );
        assert!(
            (mbit(rates[0]) - 50.0).abs() < 0.01,
            "f0={}",
            mbit(rates[0])
        );
        assert!(
            (mbit(rates[1]) - 50.0).abs() < 0.01,
            "f1={}",
            mbit(rates[1])
        );
    }

    #[test]
    fn background_yields_to_foreground() {
        let t = topo(2, 100.0);
        let rates = allocate(
            &t,
            &[
                demand(0, 1, Priority::Foreground),
                demand(0, 1, Priority::Background),
            ],
        );
        assert!((rates[0] - MBIT100).abs() < 1.0, "fg gets the whole link");
        assert!(
            rates[1] < 1.0,
            "bg starved while fg active, got {}",
            rates[1]
        );
    }

    #[test]
    fn background_uses_leftover() {
        let t = topo(3, 100.0);
        // fg: 0→1 capped at 40 Mbit; bg: 0→2 should get the remaining 60.
        let mut fg = demand(0, 1, Priority::Foreground);
        fg.rate_cap = Some(40.0 * 1e6 / 8.0);
        let bg = demand(0, 2, Priority::Background);
        let rates = allocate(&t, &[fg, bg]);
        assert!((rates[0] * 8.0 / 1e6 - 40.0).abs() < 0.01);
        assert!((rates[1] * 8.0 / 1e6 - 60.0).abs() < 0.01);
    }

    #[test]
    fn rate_cap_respected() {
        let t = topo(2, 100.0);
        let mut f = demand(0, 1, Priority::Foreground);
        f.rate_cap = Some(1000.0);
        let rates = allocate(&t, &[f]);
        assert_eq!(rates[0], 1000.0);
    }

    #[test]
    fn relay_path_constrained_by_middle_hop() {
        // 0 → relay(2) → 1 where the relay has a 10 Mbit link.
        let mut t = topo(2, 100.0);
        let relay = t.add_host(HostLink::symmetric_mbit(10.0, 0.001));
        let f = FlowDemand {
            key: 0u32,
            links: vec![
                LinkRef {
                    host: HostId(0),
                    dir: Direction::Up,
                },
                LinkRef {
                    host: relay,
                    dir: Direction::Down,
                },
                LinkRef {
                    host: relay,
                    dir: Direction::Up,
                },
                LinkRef {
                    host: HostId(1),
                    dir: Direction::Down,
                },
            ],
            priority: Priority::Foreground,
            rate_cap: None,
        };
        let rates = allocate(&t, &[f]);
        assert!((rates[0] * 8.0 / 1e6 - 10.0).abs() < 0.01);
    }

    #[test]
    fn loopback_flow_unbounded_unless_capped() {
        let t = topo(1, 100.0);
        let f: FlowDemand<u32> = FlowDemand {
            key: 0,
            links: vec![],
            priority: Priority::Foreground,
            rate_cap: Some(5.0),
        };
        assert_eq!(allocate(&t, &[f])[0], 5.0);
        let f2: FlowDemand<u32> = FlowDemand {
            key: 0,
            links: vec![],
            priority: Priority::Foreground,
            rate_cap: None,
        };
        assert!(allocate(&t, &[f2])[0].is_infinite());
    }

    #[test]
    fn many_flows_conservation() {
        // 8 clients all downloading from host 0: h0.up is the bottleneck;
        // the sum of rates must equal its capacity.
        let t = topo(9, 100.0);
        let flows: Vec<_> = (1..9).map(|d| demand(0, d, Priority::Foreground)).collect();
        let rates = allocate(&t, &flows);
        let sum: f64 = rates.iter().sum();
        assert!((sum - MBIT100).abs() < 1.0, "sum {sum}");
        for r in &rates {
            assert!((r - MBIT100 / 8.0).abs() < 1.0);
        }
    }

    #[test]
    fn matches_reference_on_mixed_workload() {
        // Asymmetric links, caps, relays, both classes — the fast path
        // must reproduce the reference bit-for-bit.
        let mut t = Topology::new();
        for i in 0..12 {
            if i % 3 == 0 {
                t.add_host(HostLink::asymmetric_mbit(16.0, 1.0, 0.02));
            } else {
                t.add_host(HostLink::symmetric_mbit(100.0, 0.001));
            }
        }
        let mut flows = Vec::new();
        for i in 0..40u32 {
            let src = i % 12;
            let dst = (i * 7 + 3) % 12;
            if src == dst {
                continue;
            }
            let mut d = demand(
                src,
                dst,
                if i % 3 == 0 {
                    Priority::Background
                } else {
                    Priority::Foreground
                },
            );
            if i % 5 == 0 {
                d.rate_cap = Some(1e5 + i as f64 * 1e4);
            }
            if i % 7 == 0 {
                let relay = (i * 5 + 1) % 12;
                if relay != src && relay != dst {
                    d.links.insert(
                        1,
                        LinkRef {
                            host: HostId(relay),
                            dir: Direction::Up,
                        },
                    );
                    d.links.insert(
                        1,
                        LinkRef {
                            host: HostId(relay),
                            dir: Direction::Down,
                        },
                    );
                }
            }
            flows.push(d);
        }
        let fast = allocate(&t, &flows);
        let slow = allocate_reference(&t, &flows);
        assert_eq!(fast.len(), slow.len());
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "flow {i}: fast {a} != reference {b}"
            );
        }
    }

    #[test]
    fn allocator_reuse_is_stateless_across_calls() {
        // Same demand set through one Allocator twice (epoch reuse) must
        // give the same rates as a fresh call.
        let t = topo(4, 100.0);
        let flows = vec![
            demand(0, 1, Priority::Foreground),
            demand(0, 2, Priority::Foreground),
        ];
        let links: Vec<Vec<u32>> = flows
            .iter()
            .map(|f| f.links.iter().map(|&l| t.link_index(l) as u32).collect())
            .collect();
        let demands: Vec<RouteDemand<'_>> = flows
            .iter()
            .zip(&links)
            .map(|(f, l)| RouteDemand {
                links: l,
                priority: f.priority,
                rate_cap: f.rate_cap,
            })
            .collect();
        let mut alloc = Allocator::new();
        let mut r1 = Vec::new();
        let mut r2 = Vec::new();
        alloc.allocate_into(&t, &demands, &mut r1);
        alloc.allocate_into(&t, &demands, &mut r2);
        assert_eq!(r1, r2);
        assert_eq!(r1, allocate(&t, &flows));
    }
}
