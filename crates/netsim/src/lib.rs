//! # vmr-netsim — network substrate for the BOINC-MR reproduction
//!
//! Replaces the paper's physical Emulab testbed (§IV.A: ~40 machines on
//! 100 Mbit links) with a deterministic model:
//!
//! * [`topology`] — hosts with up/down access links; unconstrained core
//!   (the non-blocking switch) or, beyond testbed scale, a hierarchy of
//!   ISP/AS aggregation tiers and an optional shared backbone.
//! * [`bandwidth`] — max–min fair rate allocation (progressive filling)
//!   with a two-priority TCP-Nice mode where background flows only use
//!   leftover capacity.
//! * [`flow`] — event-driven transfer manager: start flows, advance
//!   virtual time, collect completions; integrates with `vmr-desim`.
//!   Built on incremental data structures (anchor-based progress, lazy
//!   completion/setup heaps) so per-event cost is independent of the
//!   in-flight flow population; [`naive`] keeps the original
//!   scan-everything engine as an executable specification.
//! * [`aggregate`] — internet-scale engine: bit-identical delegation to
//!   [`flow`] below a flow-count threshold, then a one-way ratchet into
//!   flow-class coalescing (processor-sharing pools) with quantized
//!   per-link published shares for 10⁵⁺-host populations.
//! * [`nat`] / [`traversal`] — NAT endpoint classes and the tiered
//!   direct → reversal → hole-punch → relay escalation of §III.D.

#![warn(missing_docs)]

pub mod aggregate;
pub mod bandwidth;
pub mod flow;
pub mod naive;
pub mod nat;
mod obs;
pub mod topology;
pub mod traversal;

pub use aggregate::{AggregateNetwork, ScalePolicy};
pub use bandwidth::{allocate, allocate_reference, Allocator, FlowDemand, Priority, RouteDemand};
pub use flow::{Completion, FlowId, FlowSpec, Network};
pub use naive::NaiveNetwork;
pub use nat::{NatMix, NatType};
pub use topology::{Direction, HostId, HostLink, LinkRef, TierId, TierLink, Topology};
pub use traversal::{connect, ConnectOutcome, Path, TraversalPolicy, TraversalStats};
