//! Event-driven flow manager.
//!
//! `Network` tracks the set of in-flight transfers, advances their
//! progress under the current max–min fair rate allocation, and predicts
//! the next completion instant. The owning world keeps exactly one
//! "network wake-up" event scheduled at [`Network::next_event_time`]; on
//! every mutation (flow added / finished) it re-arms that event.
//!
//! A flow's life: `[created] --setup latency--> [transferring] --> [done]`.

use crate::bandwidth::{allocate, FlowDemand, Priority};
use crate::topology::{Direction, HostId, LinkRef, Topology};
use std::collections::HashMap;
use vmr_desim::{SimDuration, SimTime, Tally};

/// Identifies a transfer within a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Parameters of a new transfer.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Relay hops the data traverses between src and dst (usually empty;
    /// one hop for TURN-style relaying through the server or a peer).
    pub via: Vec<HostId>,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Extra setup delay before data flows (connection establishment,
    /// NAT traversal, HTTP request round-trip…), seconds.
    pub setup_s: f64,
    /// Scheduling class (TCP-Nice background or normal foreground).
    pub priority: Priority,
    /// Optional application rate cap, bytes/second.
    pub rate_cap: Option<f64>,
}

impl FlowSpec {
    /// A plain foreground transfer with no relay and no extra setup.
    pub fn simple(src: HostId, dst: HostId, bytes: u64) -> Self {
        FlowSpec {
            src,
            dst,
            via: Vec::new(),
            bytes,
            setup_s: 0.0,
            priority: Priority::Foreground,
            rate_cap: None,
        }
    }
}

#[derive(Clone, Debug)]
struct ActiveFlow {
    spec: FlowSpec,
    links: Vec<LinkRef>,
    bytes_left: f64,
    starts_at: SimTime,
    created_at: SimTime,
    rate: f64,
}

/// A finished transfer, reported by [`Network::advance`].
#[derive(Clone, Debug)]
pub struct Completion {
    /// Which flow finished.
    pub id: FlowId,
    /// When it finished.
    pub at: SimTime,
    /// Original spec (src/dst/bytes…).
    pub spec: FlowSpec,
    /// Total transfer latency including setup.
    pub duration: SimDuration,
}

/// The shared-network state of one simulation.
pub struct Network {
    topo: Topology,
    flows: HashMap<FlowId, ActiveFlow>,
    next_id: u64,
    last_advance: SimTime,
    /// Completed-transfer duration statistics, by priority class.
    pub fg_durations: Tally,
    /// Completed-transfer duration statistics for background flows.
    pub bg_durations: Tally,
    bytes_delivered: f64,
}

impl Network {
    /// Wraps a topology.
    pub fn new(topo: Topology) -> Self {
        Network {
            topo,
            flows: HashMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            fg_durations: Tally::new(),
            bg_durations: Tally::new(),
            bytes_delivered: 0.0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> f64 {
        self.bytes_delivered
    }

    /// Current rate of a flow, bytes/second (0 during setup).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Starts a transfer at `now`. Returns its id; completions are later
    /// reported by [`Network::advance`].
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        self.settle(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let mut links = Vec::with_capacity(2 + 2 * spec.via.len());
        if spec.src != spec.dst || !spec.via.is_empty() {
            links.push(LinkRef { host: spec.src, dir: Direction::Up });
            for &hop in &spec.via {
                links.push(LinkRef { host: hop, dir: Direction::Down });
                links.push(LinkRef { host: hop, dir: Direction::Up });
            }
            links.push(LinkRef { host: spec.dst, dir: Direction::Down });
        }
        let setup = SimDuration::from_secs_f64(
            spec.setup_s + self.topo.latency(spec.src, spec.dst),
        );
        let flow = ActiveFlow {
            links,
            bytes_left: spec.bytes as f64,
            starts_at: now + setup,
            created_at: now,
            rate: 0.0,
            spec,
        };
        self.flows.insert(id, flow);
        self.reallocate(now);
        id
    }

    /// Aborts a flow (e.g. peer failure injection). Returns `true` if it
    /// was still active.
    pub fn abort_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.settle(now);
        let existed = self.flows.remove(&id).is_some();
        if existed {
            self.reallocate(now);
        }
        existed
    }

    /// Advances the network to `now` and returns every flow that has
    /// completed by then (possibly several).
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        // Completing one flow frees capacity and speeds up the others, so
        // settle repeatedly until no flow completes before `now`.
        loop {
            let next = self.earliest_completion();
            match next {
                Some((t, id)) if t <= now => {
                    self.settle(t);
                    let f = self.flows.remove(&id).expect("completing unknown flow");
                    debug_assert!(f.bytes_left <= 1e-6);
                    let duration = t.saturating_since(f.created_at);
                    match f.spec.priority {
                        Priority::Foreground => self.fg_durations.record_duration(duration),
                        Priority::Background => self.bg_durations.record_duration(duration),
                    }
                    self.bytes_delivered += f.spec.bytes as f64;
                    self.reallocate(t);
                    done.push(Completion { id, at: t, spec: f.spec, duration });
                }
                _ => break,
            }
        }
        self.settle(now);
        done
    }

    /// The next instant at which the network's state changes by itself
    /// (a flow finishing its setup phase or completing). The world should
    /// keep a wake-up event scheduled at this time.
    pub fn next_event_time(&self) -> Option<SimTime> {
        let completion = self.earliest_completion().map(|(t, _)| t);
        let setup_end = self
            .flows
            .values()
            .filter(|f| f.starts_at > self.last_advance)
            .map(|f| f.starts_at)
            .min();
        match (completion, setup_end) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Projected completion instant of a specific flow under current
    /// rates (changes whenever other flows arrive or depart).
    pub fn projected_completion(&self, id: FlowId) -> Option<SimTime> {
        let f = self.flows.get(&id)?;
        Some(Self::flow_completion_time(f, self.last_advance))
    }

    fn earliest_completion(&self) -> Option<(SimTime, FlowId)> {
        self.flows
            .iter()
            .map(|(&id, f)| (Self::flow_completion_time(f, self.last_advance), id))
            .min_by_key(|&(t, id)| (t, id))
    }

    fn flow_completion_time(f: &ActiveFlow, now: SimTime) -> SimTime {
        let start = f.starts_at.max(now);
        if f.bytes_left <= 1e-9 {
            return start;
        }
        if f.rate <= 1e-12 {
            return SimTime::MAX;
        }
        // Round *up* to the next microsecond so that by the completion
        // instant the flow has provably moved all its bytes (a nearest-
        // rounding here could fire half a microsecond early and leave a
        // handful of bytes unsent).
        let us = (f.bytes_left / f.rate * 1e6).ceil();
        let us = if us >= u64::MAX as f64 { u64::MAX } else { us as u64 };
        start + SimDuration::from_micros(us)
    }

    /// Integrates progress from `last_advance` to `t` under the current
    /// rates. Does not complete flows — `advance` does that.
    fn settle(&mut self, t: SimTime) {
        if t <= self.last_advance {
            return;
        }
        for f in self.flows.values_mut() {
            let active_from = f.starts_at.max(self.last_advance);
            if t > active_from && f.rate > 0.0 {
                let dt = t.saturating_since(active_from).as_secs_f64();
                f.bytes_left = (f.bytes_left - f.rate * dt).max(0.0);
            }
        }
        self.last_advance = t;
        // Flows may have just left setup: their rates were 0; recompute.
        self.reallocate(t);
    }

    /// Recomputes max–min fair rates for all flows past their setup phase.
    fn reallocate(&mut self, now: SimTime) {
        let mut keys: Vec<FlowId> = self.flows.keys().copied().collect();
        keys.sort_unstable(); // deterministic allocation order
        let demands: Vec<FlowDemand<FlowId>> = keys
            .iter()
            .filter(|id| {
                let f = &self.flows[id];
                f.starts_at <= now && f.bytes_left > 0.0
            })
            .map(|&id| {
                let f = &self.flows[&id];
                FlowDemand {
                    key: id,
                    links: f.links.clone(),
                    priority: f.spec.priority,
                    rate_cap: f.spec.rate_cap,
                }
            })
            .collect();
        let rates = allocate(&self.topo, &demands);
        for f in self.flows.values_mut() {
            f.rate = 0.0;
        }
        for (d, r) in demands.iter().zip(rates) {
            self.flows.get_mut(&d.key).expect("demand for missing flow").rate = r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::HostLink;

    fn net(n: usize) -> Network {
        let mut t = Topology::new();
        for _ in 0..n {
            t.add_host(HostLink::symmetric_mbit(100.0, 0.0));
        }
        Network::new(t)
    }

    fn drive_to_completion(net: &mut Network) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event_time() {
            assert!(t < SimTime::MAX, "stalled flow");
            out.extend(net.advance(t));
        }
        out
    }

    #[test]
    fn single_transfer_takes_size_over_rate() {
        let mut n = net(2);
        // 12.5 MB over 12.5 MB/s = 1 s.
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(1), 12_500_000));
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 1);
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3, "{:?}", done[0].at);
    }

    #[test]
    fn two_transfers_share_then_speed_up() {
        let mut n = net(3);
        // Both flows leave host 0 (shared uplink). Equal sizes: both
        // finish at 2 s (each gets half rate for the whole time).
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(1), 12_500_000));
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(2), 12_500_000));
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        for c in &done {
            assert!((c.at.as_secs_f64() - 2.0).abs() < 1e-3, "{:?}", c.at);
        }
    }

    #[test]
    fn short_flow_departure_speeds_up_long_flow() {
        let mut n = net(3);
        // Long: 25 MB; short: 6.25 MB, both on h0 uplink.
        // Phase 1: both at 6.25 MB/s until short finishes at t=1 (6.25MB).
        // Long then has 25-6.25=18.75 MB left at 12.5 MB/s → +1.5 s → t=2.5.
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(1), 25_000_000));
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(2), 6_250_000));
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3);
        assert!((done[1].at.as_secs_f64() - 2.5).abs() < 1e-3);
    }

    #[test]
    fn setup_latency_delays_start() {
        let mut n = net(2);
        let mut spec = FlowSpec::simple(HostId(0), HostId(1), 12_500_000);
        spec.setup_s = 3.0;
        n.start_flow(SimTime::ZERO, spec);
        let done = drive_to_completion(&mut n);
        assert!((done[0].at.as_secs_f64() - 4.0).abs() < 1e-3, "{:?}", done[0].at);
    }

    #[test]
    fn abort_flow_frees_capacity() {
        let mut n = net(3);
        let a = n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(1), 12_500_000));
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(2), 12_500_000));
        // Abort A at t=0.5: B has transferred 3.125MB, then full rate.
        let t_half = SimTime::from_millis(500);
        assert!(n.abort_flow(t_half, a));
        assert!(!n.abort_flow(t_half, a));
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 1);
        // B: 3.125 MB by 0.5s, 9.375 MB remaining at 12.5 MB/s = 0.75 s → 1.25 s.
        assert!((done[0].at.as_secs_f64() - 1.25).abs() < 1e-3, "{:?}", done[0].at);
    }

    #[test]
    fn relay_flow_consumes_relay_bandwidth() {
        let mut t = Topology::new();
        let a = t.add_host(HostLink::symmetric_mbit(100.0, 0.0));
        let b = t.add_host(HostLink::symmetric_mbit(100.0, 0.0));
        let relay = t.add_host(HostLink::symmetric_mbit(10.0, 0.0));
        let mut n = Network::new(t);
        let mut spec = FlowSpec::simple(a, b, 1_250_000); // 1.25 MB
        spec.via = vec![relay];
        n.start_flow(SimTime::ZERO, spec);
        let done = drive_to_completion(&mut n);
        // 1.25 MB at 1.25 MB/s (10 Mbit relay) = 1 s.
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3, "{:?}", done[0].at);
    }

    #[test]
    fn background_flow_waits_for_foreground() {
        let mut n = net(3);
        let mut bg = FlowSpec::simple(HostId(0), HostId(2), 12_500_000);
        bg.priority = Priority::Background;
        n.start_flow(SimTime::ZERO, bg);
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(1), 12_500_000));
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        // fg takes the link for 1 s; bg then runs 1 s more.
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3);
        assert!((done[1].at.as_secs_f64() - 2.0).abs() < 1e-3);
        assert_eq!(n.fg_durations.count(), 1);
        assert_eq!(n.bg_durations.count(), 1);
    }

    #[test]
    fn bytes_delivered_accumulates() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(1), 1000));
        drive_to_completion(&mut n);
        assert_eq!(n.bytes_delivered(), 1000.0);
    }

    #[test]
    fn zero_byte_flow_completes_after_setup() {
        let mut n = net(2);
        let mut spec = FlowSpec::simple(HostId(0), HostId(1), 0);
        spec.setup_s = 0.25;
        n.start_flow(SimTime::ZERO, spec);
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 1);
        assert!((done[0].at.as_secs_f64() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn advance_reports_multiple_completions() {
        let mut n = net(3);
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(1), 1_250_000));
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(2), HostId(1), 1_250_000));
        // Jump far past both completions in one advance call.
        let done = n.advance(SimTime::from_secs(100));
        assert_eq!(done.len(), 2);
    }
}
