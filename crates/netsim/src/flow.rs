//! Event-driven flow manager.
//!
//! `Network` tracks the set of in-flight transfers, advances their
//! progress under the current max–min fair rate allocation, and predicts
//! the next completion instant. The owning world keeps exactly one
//! "network wake-up" event scheduled at [`Network::next_event_time`]; on
//! every mutation (flow added / finished) it re-arms that event.
//!
//! A flow's life: `[created] --setup latency--> [transferring] --> [done]`.
//!
//! # Incremental design
//!
//! The engine is built so that per-event cost scales with the flows
//! *affected*, not with the total in-flight population:
//!
//! * **Anchor-based progress.** Each flow stores the bytes it had left
//!   at its `anchor` instant (the last time its rate changed); bytes at
//!   any later time follow from `bytes_at_anchor - rate · Δt`. Settling
//!   to a new instant is O(1) — no per-flow integration pass.
//! * **Lazy completion index.** A min-heap holds projected completion
//!   instants, tagged with a per-flow generation. A reallocation that
//!   changes a flow's rate bumps its generation and pushes a fresh
//!   entry; stale entries are discarded when they surface. While a
//!   flow's rate is unchanged its projection is invariant, so nothing
//!   is recomputed. `next_event_time` is an O(1) peek.
//! * **Setup boundary heap.** Pending setup completions live in their
//!   own min-heap; [`Network::advance`] only reallocates when a
//!   boundary was actually crossed, instead of on every settle.
//! * **Batched completions.** All flows finishing at the same instant
//!   are retired under a single reallocation.
//! * **Zero-clone reallocation.** Demands are handed to the
//!   [`Allocator`] as borrowed dense-index paths in ascending `FlowId`
//!   order (a `BTreeMap` walk — no key sort, no path clones).
//!
//! Call instants must be non-decreasing across `start_flow` /
//! `abort_flow` / `advance` (event-driven callers do this naturally);
//! the engine then reproduces the completion stream of the scan-
//! everything reference implementation, [`crate::NaiveNetwork`].

use crate::bandwidth::{Allocator, Priority, RouteDemand};
use crate::obs::NetObs;
use crate::topology::{HostId, Topology};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use vmr_desim::{SimDuration, SimTime, Tally};
use vmr_obs::EventKind;

/// Identifies a transfer within a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u64);

/// Parameters of a new transfer.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Sending host.
    pub src: HostId,
    /// Receiving host.
    pub dst: HostId,
    /// Relay hops the data traverses between src and dst (usually empty;
    /// one hop for TURN-style relaying through the server or a peer).
    pub via: Vec<HostId>,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Extra setup delay before data flows (connection establishment,
    /// NAT traversal, HTTP request round-trip…), seconds.
    pub setup_s: f64,
    /// Scheduling class (TCP-Nice background or normal foreground).
    pub priority: Priority,
    /// Optional application rate cap, bytes/second.
    pub rate_cap: Option<f64>,
}

impl FlowSpec {
    /// A plain foreground transfer with no relay and no extra setup.
    pub fn simple(src: HostId, dst: HostId, bytes: u64) -> Self {
        FlowSpec {
            src,
            dst,
            via: Vec::new(),
            bytes,
            setup_s: 0.0,
            priority: Priority::Foreground,
            rate_cap: None,
        }
    }
}

#[derive(Clone, Debug)]
struct ActiveFlow {
    spec: FlowSpec,
    /// Dense link indices of the path (see [`Topology::link_index`]).
    links: Vec<u32>,
    /// Bytes still to transfer as of `anchor`.
    bytes_at_anchor: f64,
    /// Instant `bytes_at_anchor` refers to; reset whenever `rate` changes.
    anchor: SimTime,
    starts_at: SimTime,
    created_at: SimTime,
    rate: f64,
    /// Bumped on every rate change; completion-heap entries carrying an
    /// older generation are stale.
    generation: u64,
}

impl ActiveFlow {
    /// Bytes left at `t ≥ anchor` under the current rate.
    fn bytes_left_at(&self, t: SimTime) -> f64 {
        let active_from = self.starts_at.max(self.anchor);
        if t > active_from && self.rate > 0.0 {
            let dt = t.saturating_since(active_from).as_secs_f64();
            (self.bytes_at_anchor - self.rate * dt).max(0.0)
        } else {
            self.bytes_at_anchor
        }
    }

    /// Projected completion instant, evaluated at the anchor (the same
    /// formula the reference engine applies at every settle; because the
    /// microsecond count is rounded *up*, the projection is reached with
    /// zero bytes left, so it stays valid while the rate is unchanged).
    fn completion_at_anchor(&self) -> SimTime {
        let start = self.starts_at.max(self.anchor);
        if self.bytes_at_anchor <= 1e-9 {
            return start;
        }
        if self.rate <= 1e-12 {
            return SimTime::MAX;
        }
        // Round *up* to the next microsecond so that by the completion
        // instant the flow has provably moved all its bytes (a nearest-
        // rounding here could fire half a microsecond early and leave a
        // handful of bytes unsent).
        let us = (self.bytes_at_anchor / self.rate * 1e6).ceil();
        let us = if us >= u64::MAX as f64 {
            u64::MAX
        } else {
            us as u64
        };
        start + SimDuration::from_micros(us)
    }
}

/// A finished transfer, reported by [`Network::advance`].
#[derive(Clone, Debug)]
pub struct Completion {
    /// Which flow finished.
    pub id: FlowId,
    /// When it finished.
    pub at: SimTime,
    /// Original spec (src/dst/bytes…).
    pub spec: FlowSpec,
    /// Total transfer latency including setup.
    pub duration: SimDuration,
}

/// The shared-network state of one simulation.
pub struct Network {
    topo: Topology,
    /// In-flight flows, ascending id — the deterministic demand order.
    flows: BTreeMap<FlowId, ActiveFlow>,
    next_id: u64,
    last_advance: SimTime,
    /// Completed-transfer duration statistics, by priority class.
    pub fg_durations: Tally,
    /// Completed-transfer duration statistics for background flows.
    pub bg_durations: Tally,
    bytes_delivered: f64,
    /// Min-heap of (projected completion, flow, generation); entries
    /// with a stale generation are discarded lazily. The top entry is
    /// kept valid (see `prune_completion_heap`) so peeks need `&self`.
    completion_heap: BinaryHeap<Reverse<(SimTime, FlowId, u64)>>,
    /// Min-heap of pending setup boundaries (starts_at, flow).
    setup_heap: BinaryHeap<Reverse<(SimTime, FlowId)>>,
    /// Reusable progressive-filling state.
    alloc: Allocator,
    /// Scratch: demand ids of the current reallocation, ascending.
    scratch_ids: Vec<FlowId>,
    /// Scratch: rates matching `scratch_ids`.
    scratch_rates: Vec<f64>,
    /// Scratch: flows completing at one instant.
    batch_ids: Vec<FlowId>,
    /// Pre-resolved observability handles (a detached sink by default).
    obs: NetObs,
}

impl Network {
    /// Wraps a topology with observability into a detached sink. Use
    /// [`Network::with_obs`] to record into a shared bundle.
    pub fn new(topo: Topology) -> Self {
        Network::with_obs(topo, &vmr_obs::Obs::detached())
    }

    /// Wraps a topology, recording flow counters (`netsim.flows_*`,
    /// `netsim.bytes_delivered`, `netsim.realloc_waves`), journal
    /// flow-start/complete events and the `netsim.realloc_wave`
    /// profiling scope into `obs`.
    pub fn with_obs(topo: Topology, obs: &vmr_obs::Obs) -> Self {
        Network {
            topo,
            flows: BTreeMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            fg_durations: Tally::new(),
            bg_durations: Tally::new(),
            bytes_delivered: 0.0,
            completion_heap: BinaryHeap::new(),
            setup_heap: BinaryHeap::new(),
            alloc: Allocator::new(),
            scratch_ids: Vec::new(),
            scratch_rates: Vec::new(),
            batch_ids: Vec::new(),
            obs: NetObs::attach(obs),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> f64 {
        self.bytes_delivered
    }

    /// Current rate of a flow, bytes/second (0 during setup).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Starts a transfer at `now`. Returns its id; completions are later
    /// reported by [`Network::advance`].
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        self.settle(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let mut links = Vec::with_capacity(2 + 2 * spec.via.len());
        self.topo
            .route_into(spec.src, &spec.via, spec.dst, &mut links);
        let setup =
            SimDuration::from_secs_f64(spec.setup_s + self.topo.latency(spec.src, spec.dst));
        let starts_at = now + setup;
        let flow = ActiveFlow {
            links,
            bytes_at_anchor: spec.bytes as f64,
            anchor: self.last_advance,
            starts_at,
            created_at: now,
            rate: 0.0,
            generation: 0,
            spec,
        };
        if flow.bytes_at_anchor <= 1e-9 {
            // Zero-byte flows never enter the demand set; their (only)
            // completion entry is due as soon as setup ends.
            self.completion_heap
                .push(Reverse((starts_at.max(self.last_advance), id, 0)));
        }
        if starts_at > now && starts_at > self.last_advance {
            self.setup_heap.push(Reverse((starts_at, id)));
        }
        let flow_bytes = flow.spec.bytes;
        self.flows.insert(id, flow);
        self.reallocate(now);
        self.prune_heaps();
        self.obs.started.inc();
        self.obs
            .journal
            .record_with(now.as_micros(), || EventKind::FlowStart {
                id: id.0,
                bytes: flow_bytes,
            });
        id
    }

    /// Aborts a flow (e.g. peer failure injection). Returns `true` if it
    /// was still active.
    pub fn abort_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.settle(now);
        let existed = self.flows.remove(&id).is_some();
        if existed {
            self.reallocate(now);
            self.obs.aborted.inc();
        }
        self.prune_heaps();
        existed
    }

    /// Advances the network to `now` and returns every flow that has
    /// completed by then (possibly several).
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        // Completing flows frees capacity and speeds up the others, so
        // walk the completion index until no flow completes before `now`.
        loop {
            self.prune_completion_heap();
            let Some(&Reverse((t_raw, _, _))) = self.completion_heap.peek() else {
                break;
            };
            let t = t_raw.max(self.last_advance);
            if t > now {
                break;
            }
            // Setup boundaries crossed by `t` may reallocate and move
            // projections, so settle first and re-examine the index.
            self.settle(t);
            self.prune_completion_heap();
            let Some(&Reverse((t2_raw, _, _))) = self.completion_heap.peek() else {
                continue;
            };
            if t2_raw.max(self.last_advance) > t {
                continue;
            }
            // Retire every flow due at exactly `t` in ascending id order
            // (the reference engine's tie order) under one reallocation;
            // no simulated time passes between them, so the intermediate
            // reallocations the reference performs are unobservable.
            self.batch_ids.clear();
            while let Some(&Reverse((tc_raw, id, generation))) = self.completion_heap.peek() {
                let valid = self
                    .flows
                    .get(&id)
                    .is_some_and(|f| f.generation == generation);
                if !valid {
                    self.completion_heap.pop();
                    continue;
                }
                if tc_raw.max(self.last_advance) > t {
                    break;
                }
                self.completion_heap.pop();
                self.batch_ids.push(id);
            }
            if self.batch_ids.is_empty() {
                continue;
            }
            self.batch_ids.sort_unstable();
            for k in 0..self.batch_ids.len() {
                let id = self.batch_ids[k];
                let f = self.flows.remove(&id).expect("completing unknown flow");
                // Infinite-rate flows (loopback: no constraining links)
                // complete at their start instant with dt = 0, so their
                // bytes are never integrated away.
                debug_assert!(f.rate == f64::INFINITY || f.bytes_left_at(t) <= 1e-6);
                let duration = t.saturating_since(f.created_at);
                match f.spec.priority {
                    Priority::Foreground => self.fg_durations.record_duration(duration),
                    Priority::Background => self.bg_durations.record_duration(duration),
                }
                self.bytes_delivered += f.spec.bytes as f64;
                self.obs.completed.inc();
                self.obs.bytes.add(f.spec.bytes);
                self.obs
                    .journal
                    .record_with(t.as_micros(), || EventKind::FlowComplete {
                        id: id.0,
                        bytes: f.spec.bytes,
                        dur_us: duration.as_micros(),
                    });
                done.push(Completion {
                    id,
                    at: t,
                    spec: f.spec,
                    duration,
                });
            }
            self.reallocate(t);
        }
        self.settle(now);
        self.prune_heaps();
        done
    }

    /// The next instant at which the network's state changes by itself
    /// (a flow finishing its setup phase or completing). The world should
    /// keep a wake-up event scheduled at this time.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.flows.is_empty() {
            return None;
        }
        let completion = self
            .completion_heap
            .peek()
            .map(|&Reverse((t, _, _))| t.max(self.last_advance));
        let setup_end = self.setup_heap.peek().map(|&Reverse((t, _))| t);
        Some(match (completion, setup_end) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            // Flows exist but none can make progress (e.g. background
            // flows starved by foreground traffic): no self-event.
            (None, None) => SimTime::MAX,
        })
    }

    /// Projected completion instant of a specific flow under current
    /// rates (changes whenever other flows arrive or depart).
    pub fn projected_completion(&self, id: FlowId) -> Option<SimTime> {
        let f = self.flows.get(&id)?;
        let start = f.starts_at.max(self.last_advance);
        let bytes = f.bytes_left_at(self.last_advance);
        if bytes <= 1e-9 {
            return Some(start);
        }
        if f.rate <= 1e-12 {
            return Some(SimTime::MAX);
        }
        let us = (bytes / f.rate * 1e6).ceil();
        let us = if us >= u64::MAX as f64 {
            u64::MAX
        } else {
            us as u64
        };
        Some(start + SimDuration::from_micros(us))
    }

    /// Moves the clock to `t` and reallocates iff a setup boundary was
    /// crossed in `(last_advance, t]`. Byte progress needs no per-flow
    /// work: each flow's anchor carries it (rates are constant between
    /// reallocation instants, which are always settle points).
    fn settle(&mut self, t: SimTime) {
        if t <= self.last_advance {
            return;
        }
        self.last_advance = t;
        let mut crossed = false;
        while let Some(&Reverse((s, id))) = self.setup_heap.peek() {
            if s > t {
                break;
            }
            self.setup_heap.pop();
            if self.flows.contains_key(&id) {
                crossed = true;
            }
        }
        if crossed {
            self.reallocate(t);
        }
    }

    /// Recomputes max–min fair rates for all flows past their setup
    /// phase. Flows whose rate actually changed are re-anchored at
    /// `last_advance` and get a fresh completion-heap entry.
    fn reallocate(&mut self, now: SimTime) {
        self.obs.realloc_waves.inc();
        let _wave = self.obs.realloc_scope.enter();
        let anchor = self.last_advance;
        let mut ids = std::mem::take(&mut self.scratch_ids);
        let mut rates = std::mem::take(&mut self.scratch_rates);
        ids.clear();
        for (&id, f) in self.flows.iter() {
            if f.starts_at <= now && f.bytes_left_at(anchor) > 0.0 {
                ids.push(id);
            }
        }
        {
            let flows = &self.flows;
            let demands: Vec<RouteDemand<'_>> = ids
                .iter()
                .map(|id| {
                    let f = &flows[id];
                    RouteDemand {
                        links: &f.links,
                        priority: f.spec.priority,
                        rate_cap: f.spec.rate_cap,
                    }
                })
                .collect();
            self.alloc.allocate_into(&self.topo, &demands, &mut rates);
        }
        // Apply: walk flows and the (ascending) demand list in tandem.
        let mut k = 0usize;
        for (&id, f) in self.flows.iter_mut() {
            if k < ids.len() && ids[k] == id {
                let r = rates[k];
                k += 1;
                if r != f.rate {
                    f.bytes_at_anchor = f.bytes_left_at(anchor);
                    f.anchor = anchor;
                    f.rate = r;
                    f.generation += 1;
                    let due = f.completion_at_anchor();
                    if due < SimTime::MAX {
                        self.completion_heap.push(Reverse((due, id, f.generation)));
                    }
                }
            } else if f.rate != 0.0 {
                // Left the demand set (bytes exhausted but not yet
                // harvested by `advance`): release its capacity claim.
                // Its generation is kept, so the completion entry that
                // led here stays valid for the eventual harvest.
                f.bytes_at_anchor = f.bytes_left_at(anchor);
                f.anchor = anchor;
                f.rate = 0.0;
            }
        }
        self.scratch_ids = ids;
        self.scratch_rates = rates;
    }

    /// Discards dead/stale entries from the top of both heaps so that
    /// `&self` peeks (`next_event_time`) see valid tops. Called at the
    /// end of every public mutator.
    fn prune_heaps(&mut self) {
        self.prune_completion_heap();
        self.prune_setup_heap();
    }

    fn prune_completion_heap(&mut self) {
        while let Some(&Reverse((_, id, generation))) = self.completion_heap.peek() {
            let valid = self
                .flows
                .get(&id)
                .is_some_and(|f| f.generation == generation);
            if valid {
                break;
            }
            self.completion_heap.pop();
        }
    }

    fn prune_setup_heap(&mut self) {
        while let Some(&Reverse((_, id))) = self.setup_heap.peek() {
            if self.flows.contains_key(&id) {
                break;
            }
            self.setup_heap.pop();
        }
    }

    /// Tears the engine down into the state another engine needs to take
    /// over mid-run (see `AggregateNetwork`'s regime migration). Flows
    /// come out in ascending id order with their remaining bytes settled
    /// to `last_advance`.
    pub(crate) fn dismantle(self) -> Dismantled {
        let last = self.last_advance;
        let flows = self
            .flows
            .iter()
            .map(|(&id, f)| MigratedFlow {
                id,
                spec: f.spec.clone(),
                links: f.links.clone(),
                bytes_left: f.bytes_left_at(last),
                starts_at: f.starts_at,
                created_at: f.created_at,
            })
            .collect();
        Dismantled {
            topo: self.topo,
            last_advance: last,
            next_id: self.next_id,
            fg_durations: self.fg_durations,
            bg_durations: self.bg_durations,
            bytes_delivered: self.bytes_delivered,
            flows,
        }
    }
}

/// A still-active flow handed over during regime migration.
#[derive(Clone, Debug)]
pub(crate) struct MigratedFlow {
    pub id: FlowId,
    pub spec: FlowSpec,
    pub links: Vec<u32>,
    pub bytes_left: f64,
    pub starts_at: SimTime,
    pub created_at: SimTime,
}

/// Everything a successor engine needs to continue a run that started
/// under the exact engine.
pub(crate) struct Dismantled {
    pub topo: Topology,
    pub last_advance: SimTime,
    pub next_id: u64,
    pub fg_durations: Tally,
    pub bg_durations: Tally,
    pub bytes_delivered: f64,
    pub flows: Vec<MigratedFlow>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::HostLink;

    fn net(n: usize) -> Network {
        let mut t = Topology::new();
        for _ in 0..n {
            t.add_host(HostLink::symmetric_mbit(100.0, 0.0));
        }
        Network::new(t)
    }

    fn drive_to_completion(net: &mut Network) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event_time() {
            assert!(t < SimTime::MAX, "stalled flow");
            out.extend(net.advance(t));
        }
        out
    }

    #[test]
    fn single_transfer_takes_size_over_rate() {
        let mut n = net(2);
        // 12.5 MB over 12.5 MB/s = 1 s.
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 1);
        assert!(
            (done[0].at.as_secs_f64() - 1.0).abs() < 1e-3,
            "{:?}",
            done[0].at
        );
    }

    #[test]
    fn two_transfers_share_then_speed_up() {
        let mut n = net(3);
        // Both flows leave host 0 (shared uplink). Equal sizes: both
        // finish at 2 s (each gets half rate for the whole time).
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(2), 12_500_000),
        );
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        for c in &done {
            assert!((c.at.as_secs_f64() - 2.0).abs() < 1e-3, "{:?}", c.at);
        }
    }

    #[test]
    fn short_flow_departure_speeds_up_long_flow() {
        let mut n = net(3);
        // Long: 25 MB; short: 6.25 MB, both on h0 uplink.
        // Phase 1: both at 6.25 MB/s until short finishes at t=1 (6.25MB).
        // Long then has 25-6.25=18.75 MB left at 12.5 MB/s → +1.5 s → t=2.5.
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 25_000_000),
        );
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(2), 6_250_000),
        );
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3);
        assert!((done[1].at.as_secs_f64() - 2.5).abs() < 1e-3);
    }

    #[test]
    fn setup_latency_delays_start() {
        let mut n = net(2);
        let mut spec = FlowSpec::simple(HostId(0), HostId(1), 12_500_000);
        spec.setup_s = 3.0;
        n.start_flow(SimTime::ZERO, spec);
        let done = drive_to_completion(&mut n);
        assert!(
            (done[0].at.as_secs_f64() - 4.0).abs() < 1e-3,
            "{:?}",
            done[0].at
        );
    }

    #[test]
    fn abort_flow_frees_capacity() {
        let mut n = net(3);
        let a = n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(2), 12_500_000),
        );
        // Abort A at t=0.5: B has transferred 3.125MB, then full rate.
        let t_half = SimTime::from_millis(500);
        assert!(n.abort_flow(t_half, a));
        assert!(!n.abort_flow(t_half, a));
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 1);
        // B: 3.125 MB by 0.5s, 9.375 MB remaining at 12.5 MB/s = 0.75 s → 1.25 s.
        assert!(
            (done[0].at.as_secs_f64() - 1.25).abs() < 1e-3,
            "{:?}",
            done[0].at
        );
    }

    #[test]
    fn relay_flow_consumes_relay_bandwidth() {
        let mut t = Topology::new();
        let a = t.add_host(HostLink::symmetric_mbit(100.0, 0.0));
        let b = t.add_host(HostLink::symmetric_mbit(100.0, 0.0));
        let relay = t.add_host(HostLink::symmetric_mbit(10.0, 0.0));
        let mut n = Network::new(t);
        let mut spec = FlowSpec::simple(a, b, 1_250_000); // 1.25 MB
        spec.via = vec![relay];
        n.start_flow(SimTime::ZERO, spec);
        let done = drive_to_completion(&mut n);
        // 1.25 MB at 1.25 MB/s (10 Mbit relay) = 1 s.
        assert!(
            (done[0].at.as_secs_f64() - 1.0).abs() < 1e-3,
            "{:?}",
            done[0].at
        );
    }

    #[test]
    fn background_flow_waits_for_foreground() {
        let mut n = net(3);
        let mut bg = FlowSpec::simple(HostId(0), HostId(2), 12_500_000);
        bg.priority = Priority::Background;
        n.start_flow(SimTime::ZERO, bg);
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 2);
        // fg takes the link for 1 s; bg then runs 1 s more.
        assert!((done[0].at.as_secs_f64() - 1.0).abs() < 1e-3);
        assert!((done[1].at.as_secs_f64() - 2.0).abs() < 1e-3);
        assert_eq!(n.fg_durations.count(), 1);
        assert_eq!(n.bg_durations.count(), 1);
    }

    #[test]
    fn bytes_delivered_accumulates() {
        let mut n = net(2);
        n.start_flow(SimTime::ZERO, FlowSpec::simple(HostId(0), HostId(1), 1000));
        drive_to_completion(&mut n);
        assert_eq!(n.bytes_delivered(), 1000.0);
    }

    #[test]
    fn zero_byte_flow_completes_after_setup() {
        let mut n = net(2);
        let mut spec = FlowSpec::simple(HostId(0), HostId(1), 0);
        spec.setup_s = 0.25;
        n.start_flow(SimTime::ZERO, spec);
        let done = drive_to_completion(&mut n);
        assert_eq!(done.len(), 1);
        assert!((done[0].at.as_secs_f64() - 0.25).abs() < 1e-3);
    }

    #[test]
    fn advance_reports_multiple_completions() {
        let mut n = net(3);
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 1_250_000),
        );
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(2), HostId(1), 1_250_000),
        );
        // Jump far past both completions in one advance call.
        let done = n.advance(SimTime::from_secs(100));
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn same_instant_completions_batch_in_id_order() {
        let mut n = net(5);
        // Two identical flows on disjoint links: both complete at
        // exactly the same instant and must batch in id order.
        for i in 0..2 {
            n.start_flow(
                SimTime::ZERO,
                FlowSpec::simple(HostId(i), HostId(i + 2), 12_500_000),
            );
        }
        let done = n.advance(SimTime::from_secs(10));
        assert_eq!(done.len(), 2);
        assert!(done.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(done[0].at, done[1].at);
    }

    #[test]
    fn idle_advance_does_not_disturb_projections() {
        let mut n = net(2);
        let id = n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        let before = n.projected_completion(id).unwrap();
        // Settles with no setup boundary crossed: no reallocation, and
        // the projected completion (and next event) must not move.
        for ms in [1u64, 5, 9, 400] {
            n.advance(SimTime::from_millis(ms));
            assert_eq!(n.next_event_time(), Some(before));
        }
        assert_eq!(n.projected_completion(id), Some(before));
        let done = n.advance(before);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].at, before);
    }

    #[test]
    fn flow_rate_drops_to_zero_when_bytes_exhausted_unharvested() {
        let mut n = net(3);
        let a = n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500),
        );
        // Start another flow long after `a`'s bytes are done but before
        // any advance() harvested it: `a` must not hold capacity.
        let b = n.start_flow(
            SimTime::from_secs(5),
            FlowSpec::simple(HostId(0), HostId(2), 1),
        );
        assert_eq!(n.flow_rate(a), Some(0.0));
        assert_eq!(n.flow_rate(b), Some(12_500_000.0));
        let done = n.advance(SimTime::from_secs(6));
        assert_eq!(done.len(), 2);
        // `a` is harvested at the settle point where it was overtaken.
        assert_eq!(done[0].id, a);
        assert!(done[0].at >= SimTime::from_secs(5));
    }
}
