//! Pre-resolved observability handles shared by both flow engines.

/// Counters, journal and profiling scope one flow engine records into.
/// Resolved once at engine construction; hot-path updates are atomic
/// bumps (or nothing at all when `vmr-obs/record` is off).
pub(crate) struct NetObs {
    pub started: vmr_obs::Counter,
    pub completed: vmr_obs::Counter,
    pub aborted: vmr_obs::Counter,
    pub bytes: vmr_obs::Counter,
    pub realloc_waves: vmr_obs::Counter,
    pub realloc_scope: vmr_obs::Scope,
    pub journal: vmr_obs::Journal,
    /// Flow-class pools currently coalescing ≥ 2 flows (scale regime).
    pub aggregates: vmr_obs::Gauge,
    /// Flows that joined an already-populated pool instead of being
    /// fair-shared individually.
    pub coalesce_hits: vmr_obs::Counter,
    /// Per-flow completions expanded back out of a multi-member pool.
    pub splits: vmr_obs::Counter,
}

impl NetObs {
    /// Resolve handles from a live bundle.
    pub fn attach(obs: &vmr_obs::Obs) -> Self {
        NetObs {
            started: obs.counter("netsim.flows_started"),
            completed: obs.counter("netsim.flows_completed"),
            aborted: obs.counter("netsim.flows_aborted"),
            bytes: obs.counter("netsim.bytes_delivered"),
            realloc_waves: obs.counter("netsim.realloc_waves"),
            realloc_scope: obs.scope("netsim.realloc_wave"),
            journal: obs.journal.clone(),
            aggregates: obs.gauge("net.aggregates_active"),
            coalesce_hits: obs.counter("net.coalesce_hits"),
            splits: obs.counter("net.splits"),
        }
    }
}
