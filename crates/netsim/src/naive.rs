//! The scan-everything flow engine, kept as an executable specification.
//!
//! [`NaiveNetwork`] implements the same flow semantics as
//! [`crate::Network`] with none of its incremental machinery: completion
//! prediction scans all flows, **every** settle reallocates, every
//! reallocation sorts and clones the whole demand set and runs the
//! hash-map reference allocator. O(F) per event query and O(F² · d) per
//! reallocation wave, which is fine for the paper's 40-host testbed and
//! hopeless at thousands of concurrent flows.
//!
//! Byte progress uses the same anchor discipline as the incremental
//! engine — a flow's remaining bytes are materialized only when its rate
//! changes, in one multiply from the anchor instant. This makes the
//! observable behaviour independent of *when* the caller happens to call
//! `advance` (the pre-rewrite engine re-integrated bytes at every
//! observation, so the `ceil` to whole microseconds could land one
//! microsecond differently depending on the call pattern), and it is
//! what lets the differential tests in `tests/equivalence.rs` demand the
//! two engines produce **bit-identical completion streams**.
//!
//! The reference allocator speaks the flat [`LinkRef`] vocabulary
//! (host access links only), so this engine models **flat topologies
//! only** — construction rejects tiered/backbone hierarchies. That is
//! deliberate: the spec engine pins down testbed-scale semantics, and
//! the hierarchical regimes are validated against [`crate::Network`]
//! (which shares the dense-index path code) instead.
//!
//! Do not use this in simulations; use [`crate::Network`].

use crate::bandwidth::{allocate_reference, FlowDemand, Priority};
use crate::flow::{Completion, FlowId, FlowSpec};
use crate::obs::NetObs;
use crate::topology::{Direction, LinkRef, Topology};
use std::collections::HashMap;
use vmr_desim::{SimDuration, SimTime, Tally};
use vmr_obs::EventKind;

#[derive(Clone, Debug)]
struct ActiveFlow {
    spec: FlowSpec,
    links: Vec<LinkRef>,
    /// Bytes still to transfer as of `anchor`.
    bytes_at_anchor: f64,
    /// Instant `bytes_at_anchor` refers to; reset whenever `rate` changes.
    anchor: SimTime,
    starts_at: SimTime,
    created_at: SimTime,
    rate: f64,
}

impl ActiveFlow {
    /// Bytes left at `t ≥ anchor` under the current rate. Identical
    /// arithmetic to the incremental engine's `ActiveFlow::bytes_left_at`.
    fn bytes_left_at(&self, t: SimTime) -> f64 {
        let active_from = self.starts_at.max(self.anchor);
        if t > active_from && self.rate > 0.0 {
            let dt = t.saturating_since(active_from).as_secs_f64();
            (self.bytes_at_anchor - self.rate * dt).max(0.0)
        } else {
            self.bytes_at_anchor
        }
    }

    /// Projected completion instant, evaluated at the anchor. Identical
    /// arithmetic to the incremental engine's
    /// `ActiveFlow::completion_at_anchor`.
    fn completion_at_anchor(&self) -> SimTime {
        let start = self.starts_at.max(self.anchor);
        if self.bytes_at_anchor <= 1e-9 {
            return start;
        }
        if self.rate <= 1e-12 {
            return SimTime::MAX;
        }
        // Round *up* to the next microsecond so that by the completion
        // instant the flow has provably moved all its bytes (a nearest-
        // rounding here could fire half a microsecond early and leave a
        // handful of bytes unsent).
        let us = (self.bytes_at_anchor / self.rate * 1e6).ceil();
        let us = if us >= u64::MAX as f64 {
            u64::MAX
        } else {
            us as u64
        };
        start + SimDuration::from_micros(us)
    }
}

/// The original scan-everything flow engine (see module docs).
pub struct NaiveNetwork {
    topo: Topology,
    flows: HashMap<FlowId, ActiveFlow>,
    next_id: u64,
    last_advance: SimTime,
    /// Completed-transfer duration statistics, by priority class.
    pub fg_durations: Tally,
    /// Completed-transfer duration statistics for background flows.
    pub bg_durations: Tally,
    bytes_delivered: f64,
    /// Pre-resolved observability handles (a detached sink by default).
    obs: NetObs,
}

impl NaiveNetwork {
    /// Wraps a topology with observability into a detached sink. Use
    /// [`NaiveNetwork::with_obs`] to record into a shared bundle.
    pub fn new(topo: Topology) -> Self {
        NaiveNetwork::with_obs(topo, &vmr_obs::Obs::detached())
    }

    /// Wraps a topology recording the same `netsim.*` counters and
    /// journal events as the incremental engine — the differential
    /// tests compare the two engines' counter streams. (The
    /// `netsim.realloc_waves` counter is still engine-defined: this
    /// engine reallocates on every settle by design.)
    pub fn with_obs(topo: Topology, obs: &vmr_obs::Obs) -> Self {
        assert!(
            !topo.is_hierarchical(),
            "NaiveNetwork models flat topologies only (see module docs)"
        );
        NaiveNetwork {
            topo,
            flows: HashMap::new(),
            next_id: 0,
            last_advance: SimTime::ZERO,
            fg_durations: Tally::new(),
            bg_durations: Tally::new(),
            bytes_delivered: 0.0,
            obs: NetObs::attach(obs),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of in-flight flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total payload bytes delivered so far.
    pub fn bytes_delivered(&self) -> f64 {
        self.bytes_delivered
    }

    /// Current rate of a flow, bytes/second (0 during setup).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    /// Starts a transfer at `now`. Returns its id; completions are later
    /// reported by [`NaiveNetwork::advance`].
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        self.settle(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let mut links = Vec::with_capacity(2 + 2 * spec.via.len());
        if spec.src != spec.dst || !spec.via.is_empty() {
            links.push(LinkRef {
                host: spec.src,
                dir: Direction::Up,
            });
            for &hop in &spec.via {
                links.push(LinkRef {
                    host: hop,
                    dir: Direction::Down,
                });
                links.push(LinkRef {
                    host: hop,
                    dir: Direction::Up,
                });
            }
            links.push(LinkRef {
                host: spec.dst,
                dir: Direction::Down,
            });
        }
        let setup =
            SimDuration::from_secs_f64(spec.setup_s + self.topo.latency(spec.src, spec.dst));
        let flow = ActiveFlow {
            links,
            bytes_at_anchor: spec.bytes as f64,
            anchor: self.last_advance,
            starts_at: now + setup,
            created_at: now,
            rate: 0.0,
            spec,
        };
        let flow_bytes = flow.spec.bytes;
        self.flows.insert(id, flow);
        self.reallocate(now);
        self.obs.started.inc();
        self.obs
            .journal
            .record_with(now.as_micros(), || EventKind::FlowStart {
                id: id.0,
                bytes: flow_bytes,
            });
        id
    }

    /// Aborts a flow (e.g. peer failure injection). Returns `true` if it
    /// was still active.
    pub fn abort_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.settle(now);
        let existed = self.flows.remove(&id).is_some();
        if existed {
            self.reallocate(now);
            self.obs.aborted.inc();
        }
        existed
    }

    /// Advances the network to `now` and returns every flow that has
    /// completed by then (possibly several).
    pub fn advance(&mut self, now: SimTime) -> Vec<Completion> {
        let mut done = Vec::new();
        // Completing one flow frees capacity and speeds up the others, so
        // settle repeatedly until no flow completes before `now`.
        loop {
            let next = self.earliest_completion();
            match next {
                Some((t, id)) if t <= now => {
                    self.settle(t);
                    let f = self.flows.remove(&id).expect("completing unknown flow");
                    // Infinite-rate flows (loopback: no constraining
                    // links) complete at their start instant with dt = 0,
                    // so their bytes are never integrated away.
                    debug_assert!(f.rate == f64::INFINITY || f.bytes_left_at(t) <= 1e-6);
                    let duration = t.saturating_since(f.created_at);
                    match f.spec.priority {
                        Priority::Foreground => self.fg_durations.record_duration(duration),
                        Priority::Background => self.bg_durations.record_duration(duration),
                    }
                    self.bytes_delivered += f.spec.bytes as f64;
                    self.obs.completed.inc();
                    self.obs.bytes.add(f.spec.bytes);
                    self.obs
                        .journal
                        .record_with(t.as_micros(), || EventKind::FlowComplete {
                            id: id.0,
                            bytes: f.spec.bytes,
                            dur_us: duration.as_micros(),
                        });
                    self.reallocate(t);
                    done.push(Completion {
                        id,
                        at: t,
                        spec: f.spec,
                        duration,
                    });
                }
                _ => break,
            }
        }
        self.settle(now);
        done
    }

    /// The next instant at which the network's state changes by itself
    /// (a flow finishing its setup phase or completing).
    pub fn next_event_time(&self) -> Option<SimTime> {
        if self.flows.is_empty() {
            return None;
        }
        let completion = self.earliest_completion().map(|(t, _)| t);
        let setup_end = self
            .flows
            .values()
            .filter(|f| f.starts_at > self.last_advance)
            .map(|f| f.starts_at)
            .min();
        Some(match (completion, setup_end) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => SimTime::MAX,
        })
    }

    /// Projected completion instant of a specific flow under current
    /// rates (changes whenever other flows arrive or depart).
    pub fn projected_completion(&self, id: FlowId) -> Option<SimTime> {
        let f = self.flows.get(&id)?;
        let start = f.starts_at.max(self.last_advance);
        let bytes = f.bytes_left_at(self.last_advance);
        if bytes <= 1e-9 {
            return Some(start);
        }
        if f.rate <= 1e-12 {
            return Some(SimTime::MAX);
        }
        let us = (bytes / f.rate * 1e6).ceil();
        let us = if us >= u64::MAX as f64 {
            u64::MAX
        } else {
            us as u64
        };
        Some(start + SimDuration::from_micros(us))
    }

    fn earliest_completion(&self) -> Option<(SimTime, FlowId)> {
        self.flows
            .iter()
            .map(|(&id, f)| (f.completion_at_anchor().max(self.last_advance), id))
            .filter(|&(t, _)| t < SimTime::MAX)
            .min_by_key(|&(t, id)| (t, id))
    }

    /// Moves the clock to `t` and reallocates — unconditionally, this is
    /// the naive engine. When no demand eligibility changed the allocator
    /// reproduces every rate exactly, no flow is re-anchored, and the
    /// call is a (slow) no-op.
    fn settle(&mut self, t: SimTime) {
        if t <= self.last_advance {
            return;
        }
        self.last_advance = t;
        self.reallocate(t);
    }

    /// Recomputes max–min fair rates for all flows past their setup
    /// phase; re-anchors exactly the flows whose rate changed.
    fn reallocate(&mut self, now: SimTime) {
        self.obs.realloc_waves.inc();
        let _wave = self.obs.realloc_scope.enter();
        let anchor = self.last_advance;
        let mut keys: Vec<FlowId> = self.flows.keys().copied().collect();
        keys.sort_unstable(); // deterministic allocation order
        let demands: Vec<FlowDemand<FlowId>> = keys
            .iter()
            .filter(|id| {
                let f = &self.flows[id];
                f.starts_at <= now && f.bytes_left_at(anchor) > 0.0
            })
            .map(|&id| {
                let f = &self.flows[&id];
                FlowDemand {
                    key: id,
                    links: f.links.clone(),
                    priority: f.spec.priority,
                    rate_cap: f.spec.rate_cap,
                }
            })
            .collect();
        let rates = allocate_reference(&self.topo, &demands);
        let mut in_demand: HashMap<FlowId, f64> = HashMap::with_capacity(demands.len());
        for (d, r) in demands.iter().zip(rates) {
            in_demand.insert(d.key, r);
        }
        for (id, f) in self.flows.iter_mut() {
            let r = in_demand.get(id).copied().unwrap_or(0.0);
            if r != f.rate {
                f.bytes_at_anchor = f.bytes_left_at(anchor);
                f.anchor = anchor;
                f.rate = r;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{HostId, HostLink};

    #[test]
    fn naive_engine_still_works() {
        let mut t = Topology::new();
        for _ in 0..3 {
            t.add_host(HostLink::symmetric_mbit(100.0, 0.0));
        }
        let mut n = NaiveNetwork::new(t);
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(1), 12_500_000),
        );
        n.start_flow(
            SimTime::ZERO,
            FlowSpec::simple(HostId(0), HostId(2), 12_500_000),
        );
        let mut done = Vec::new();
        while let Some(t) = n.next_event_time() {
            assert!(t < SimTime::MAX, "stalled flow");
            done.extend(n.advance(t));
        }
        assert_eq!(done.len(), 2);
        for c in &done {
            assert!((c.at.as_secs_f64() - 2.0).abs() < 1e-3, "{:?}", c.at);
        }
        assert_eq!(n.bytes_delivered(), 25_000_000.0);
    }
}
