//! Hosts and access links.
//!
//! The Emulab testbed the paper used is a set of machines on 100 Mbit
//! NICs behind non-blocking switches, so the model is *access-link
//! limited*: each host has an uplink and a downlink capacity, and the
//! switch core is unconstrained. A flow from A to B is limited by A's
//! uplink and B's downlink (and by any relay hop's links).

use std::fmt;

/// Identifies a host in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// One direction of a host's access link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Traffic leaving the host.
    Up,
    /// Traffic entering the host.
    Down,
}

impl Direction {
    /// Position of this direction within a host's pair of dense link
    /// slots (see [`Topology::link_index`]).
    pub fn index(self) -> usize {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
        }
    }
}

/// A directed link endpoint — the unit of capacity in the allocator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkRef {
    /// The host the link belongs to.
    pub host: HostId,
    /// Which direction of the host's access link.
    pub dir: Direction,
}

/// Static description of one host's connectivity.
#[derive(Clone, Debug)]
pub struct HostLink {
    /// Uplink capacity in bytes/second.
    pub up_bytes_per_sec: f64,
    /// Downlink capacity in bytes/second.
    pub down_bytes_per_sec: f64,
    /// One-way propagation latency to the switch core, seconds.
    pub latency_s: f64,
}

impl HostLink {
    /// Symmetric link of `mbit` megabits per second with `latency_s`
    /// one-way latency (the paper's testbed: 100 Mbit, LAN latency).
    pub fn symmetric_mbit(mbit: f64, latency_s: f64) -> Self {
        let bps = mbit * 1e6 / 8.0;
        HostLink {
            up_bytes_per_sec: bps,
            down_bytes_per_sec: bps,
            latency_s,
        }
    }

    /// Asymmetric consumer-style link (e.g. ADSL volunteers).
    pub fn asymmetric_mbit(down_mbit: f64, up_mbit: f64, latency_s: f64) -> Self {
        HostLink {
            up_bytes_per_sec: up_mbit * 1e6 / 8.0,
            down_bytes_per_sec: down_mbit * 1e6 / 8.0,
            latency_s,
        }
    }

    /// Capacity of the given direction, bytes/second.
    pub fn capacity(&self, dir: Direction) -> f64 {
        match dir {
            Direction::Up => self.up_bytes_per_sec,
            Direction::Down => self.down_bytes_per_sec,
        }
    }
}

/// The set of hosts and their access links.
///
/// Every directed link endpoint also has a *dense index* in
/// `0..num_links()` (host `h` owns slots `2h` / `2h+1` for up / down),
/// so per-link state can live in flat arrays instead of hash maps —
/// the bandwidth allocator and flow engine depend on this.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    hosts: Vec<HostLink>,
    /// Capacity per dense link index, kept in sync with `hosts`.
    caps: Vec<f64>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology {
            hosts: Vec::new(),
            caps: Vec::new(),
        }
    }

    /// Adds a host, returning its id.
    pub fn add_host(&mut self, link: HostLink) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.caps.push(link.up_bytes_per_sec);
        self.caps.push(link.down_bytes_per_sec);
        self.hosts.push(link);
        id
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when no hosts exist.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The link description of `host`.
    ///
    /// # Panics
    /// If `host` is not in this topology.
    pub fn link(&self, host: HostId) -> &HostLink {
        &self.hosts[host.0 as usize]
    }

    /// Capacity of a directed link endpoint, bytes/second.
    pub fn capacity(&self, l: LinkRef) -> f64 {
        self.link(l.host).capacity(l.dir)
    }

    /// Number of dense link slots (two per host).
    pub fn num_links(&self) -> usize {
        self.caps.len()
    }

    /// Dense index of a directed link endpoint, in `0..num_links()`.
    pub fn link_index(&self, l: LinkRef) -> usize {
        l.host.0 as usize * 2 + l.dir.index()
    }

    /// Capacity of the dense link slot `idx`, bytes/second.
    ///
    /// # Panics
    /// If `idx >= num_links()`.
    pub fn capacity_at(&self, idx: usize) -> f64 {
        self.caps[idx]
    }

    /// One-way latency between two hosts through the core, seconds.
    pub fn latency(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            0.0
        } else {
            self.link(a).latency_s + self.link(b).latency_s
        }
    }

    /// All host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_link_capacity() {
        let l = HostLink::symmetric_mbit(100.0, 0.001);
        assert!((l.up_bytes_per_sec - 12_500_000.0).abs() < 1e-6);
        assert_eq!(l.up_bytes_per_sec, l.down_bytes_per_sec);
        assert_eq!(l.capacity(Direction::Up), l.up_bytes_per_sec);
    }

    #[test]
    fn asymmetric_link() {
        let l = HostLink::asymmetric_mbit(16.0, 1.0, 0.02);
        assert!(l.down_bytes_per_sec > l.up_bytes_per_sec);
    }

    #[test]
    fn topology_add_and_query() {
        let mut t = Topology::new();
        assert!(t.is_empty());
        let a = t.add_host(HostLink::symmetric_mbit(100.0, 0.001));
        let b = t.add_host(HostLink::symmetric_mbit(10.0, 0.005));
        assert_eq!(t.len(), 2);
        assert_eq!(a, HostId(0));
        assert_eq!(b, HostId(1));
        assert!((t.latency(a, b) - 0.006).abs() < 1e-12);
        assert_eq!(t.latency(a, a), 0.0);
        let ids: Vec<_> = t.host_ids().collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn dense_link_index_roundtrip() {
        let mut t = Topology::new();
        let a = t.add_host(HostLink::asymmetric_mbit(16.0, 1.0, 0.02));
        let b = t.add_host(HostLink::symmetric_mbit(100.0, 0.001));
        assert_eq!(t.num_links(), 4);
        for host in [a, b] {
            for dir in [Direction::Up, Direction::Down] {
                let l = LinkRef { host, dir };
                let idx = t.link_index(l);
                assert!(idx < t.num_links());
                assert_eq!(t.capacity_at(idx), t.capacity(l));
            }
        }
        // Up/Down of the same host occupy adjacent slots.
        assert_eq!(
            t.link_index(LinkRef {
                host: b,
                dir: Direction::Up
            }),
            2
        );
        assert_eq!(
            t.link_index(LinkRef {
                host: b,
                dir: Direction::Down
            }),
            3
        );
    }
}
