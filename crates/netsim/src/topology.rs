//! Hosts, access links, and the internet-scale tier hierarchy.
//!
//! The Emulab testbed the paper used is a set of machines on 100 Mbit
//! NICs behind non-blocking switches, so the base model is *access-link
//! limited*: each host has an uplink and a downlink capacity, and the
//! switch core is unconstrained. A flow from A to B is limited by A's
//! uplink and B's downlink (and by any relay hop's links).
//!
//! For volunteer populations beyond testbed scale the topology grows a
//! **hierarchy**: hosts may be placed behind an ISP/AS *tier* whose
//! aggregation links (up/down) carry every flow entering or leaving
//! that tier, and inter-tier traffic may additionally cross a single
//! shared *backbone* pipe. A topology with no tiers and no backbone
//! behaves exactly like the original flat model — same link set, same
//! dense indices, same latencies — so testbed-scale runs are unchanged
//! bit for bit.

use std::fmt;

/// Identifies a host in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// One direction of a host's access link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Traffic leaving the host.
    Up,
    /// Traffic entering the host.
    Down,
}

impl Direction {
    /// Position of this direction within a host's pair of dense link
    /// slots (see [`Topology::link_index`]).
    pub fn index(self) -> usize {
        match self {
            Direction::Up => 0,
            Direction::Down => 1,
        }
    }
}

/// A directed link endpoint — the unit of capacity in the allocator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkRef {
    /// The host the link belongs to.
    pub host: HostId,
    /// Which direction of the host's access link.
    pub dir: Direction,
}

/// Static description of one host's connectivity.
#[derive(Clone, Debug)]
pub struct HostLink {
    /// Uplink capacity in bytes/second.
    pub up_bytes_per_sec: f64,
    /// Downlink capacity in bytes/second.
    pub down_bytes_per_sec: f64,
    /// One-way propagation latency to the switch core, seconds.
    pub latency_s: f64,
}

impl HostLink {
    /// Symmetric link of `mbit` megabits per second with `latency_s`
    /// one-way latency (the paper's testbed: 100 Mbit, LAN latency).
    pub fn symmetric_mbit(mbit: f64, latency_s: f64) -> Self {
        let bps = mbit * 1e6 / 8.0;
        HostLink {
            up_bytes_per_sec: bps,
            down_bytes_per_sec: bps,
            latency_s,
        }
    }

    /// Asymmetric consumer-style link (e.g. ADSL volunteers).
    pub fn asymmetric_mbit(down_mbit: f64, up_mbit: f64, latency_s: f64) -> Self {
        HostLink {
            up_bytes_per_sec: up_mbit * 1e6 / 8.0,
            down_bytes_per_sec: down_mbit * 1e6 / 8.0,
            latency_s,
        }
    }

    /// Capacity of the given direction, bytes/second.
    pub fn capacity(&self, dir: Direction) -> f64 {
        match dir {
            Direction::Up => self.up_bytes_per_sec,
            Direction::Down => self.down_bytes_per_sec,
        }
    }
}

/// Identifies an ISP/AS aggregation tier in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TierId(pub u32);

impl fmt::Debug for TierId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "isp{}", self.0)
    }
}

/// Static description of one ISP/AS tier's aggregation links.
#[derive(Clone, Debug)]
pub struct TierLink {
    /// Capacity of the tier's uplink toward the backbone, bytes/second.
    pub up_bytes_per_sec: f64,
    /// Capacity of the tier's downlink from the backbone, bytes/second.
    pub down_bytes_per_sec: f64,
    /// One-way propagation latency across the tier's aggregation
    /// network, seconds (added per side when a flow crosses tiers).
    pub latency_s: f64,
}

impl TierLink {
    /// Symmetric aggregation link of `gbit` gigabits per second.
    pub fn symmetric_gbit(gbit: f64, latency_s: f64) -> Self {
        let bps = gbit * 1e9 / 8.0;
        TierLink {
            up_bytes_per_sec: bps,
            down_bytes_per_sec: bps,
            latency_s,
        }
    }
}

/// Sentinel in `tier_of` for hosts not placed behind any tier.
const NO_TIER: u32 = u32::MAX;

/// The set of hosts, their access links, and the optional tier
/// hierarchy above them.
///
/// Every directed link endpoint also has a *dense index* in
/// `0..num_links()`: host `h` owns slots `2h` / `2h+1` for up / down,
/// tier `t` owns slots `2H + 2t` / `2H + 2t + 1` (where `H` is the host
/// count), and the backbone — if constrained — owns the final slot.
/// Per-link state can therefore live in flat arrays instead of hash
/// maps — the bandwidth allocator and flow engines depend on this.
/// Because tier/backbone indices embed the host count, a topology must
/// be fully built before an engine starts routing over it (engines own
/// their topology, so this holds by construction).
#[derive(Clone, Debug, Default)]
pub struct Topology {
    hosts: Vec<HostLink>,
    /// Capacity per dense host-link index, kept in sync with `hosts`.
    caps: Vec<f64>,
    /// Tier membership per host (`NO_TIER` = directly on the core).
    tier_of: Vec<u32>,
    tiers: Vec<TierLink>,
    /// Capacity per dense tier-link slot, kept in sync with `tiers`.
    tier_caps: Vec<f64>,
    /// Shared backbone pipe crossed by inter-tier flows, bytes/second;
    /// `None` models the original unconstrained core.
    backbone: Option<f64>,
    backbone_latency_s: f64,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a host directly on the unconstrained core, returning its id.
    pub fn add_host(&mut self, link: HostLink) -> HostId {
        let id = HostId(self.hosts.len() as u32);
        self.caps.push(link.up_bytes_per_sec);
        self.caps.push(link.down_bytes_per_sec);
        self.hosts.push(link);
        self.tier_of.push(NO_TIER);
        id
    }

    /// Adds an ISP/AS tier, returning its id.
    pub fn add_tier(&mut self, link: TierLink) -> TierId {
        let id = TierId(self.tiers.len() as u32);
        self.tier_caps.push(link.up_bytes_per_sec);
        self.tier_caps.push(link.down_bytes_per_sec);
        self.tiers.push(link);
        id
    }

    /// Adds a host behind the given tier, returning its id.
    ///
    /// # Panics
    /// If `tier` is not in this topology.
    pub fn add_host_in(&mut self, tier: TierId, link: HostLink) -> HostId {
        assert!((tier.0 as usize) < self.tiers.len(), "unknown {tier:?}");
        let id = self.add_host(link);
        self.tier_of[id.0 as usize] = tier.0;
        id
    }

    /// Constrains the backbone: inter-tier flows cross one shared pipe
    /// of `bytes_per_sec` with `latency_s` one-way latency.
    pub fn set_backbone(&mut self, bytes_per_sec: f64, latency_s: f64) {
        self.backbone = Some(bytes_per_sec);
        self.backbone_latency_s = latency_s;
    }

    /// The tier a host sits behind, if any.
    pub fn tier_of(&self, host: HostId) -> Option<TierId> {
        match self.tier_of[host.0 as usize] {
            NO_TIER => None,
            t => Some(TierId(t)),
        }
    }

    /// Number of tiers.
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// The aggregation-link description of `tier`.
    ///
    /// # Panics
    /// If `tier` is not in this topology.
    pub fn tier_link(&self, tier: TierId) -> &TierLink {
        &self.tiers[tier.0 as usize]
    }

    /// True when the topology has tier or backbone structure that the
    /// flat `LinkRef` vocabulary (host links only) cannot express.
    pub fn is_hierarchical(&self) -> bool {
        !self.tiers.is_empty() || self.backbone.is_some()
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when no hosts exist.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// The link description of `host`.
    ///
    /// # Panics
    /// If `host` is not in this topology.
    pub fn link(&self, host: HostId) -> &HostLink {
        &self.hosts[host.0 as usize]
    }

    /// Capacity of a directed link endpoint, bytes/second.
    pub fn capacity(&self, l: LinkRef) -> f64 {
        self.link(l.host).capacity(l.dir)
    }

    /// Number of dense link slots: two per host, two per tier, plus one
    /// for the backbone when it is constrained.
    pub fn num_links(&self) -> usize {
        self.caps.len() + self.tier_caps.len() + self.backbone.is_some() as usize
    }

    /// Dense index of a directed host-link endpoint.
    pub fn link_index(&self, l: LinkRef) -> usize {
        l.host.0 as usize * 2 + l.dir.index()
    }

    /// Dense index of a directed tier-link endpoint.
    pub fn tier_link_index(&self, tier: TierId, dir: Direction) -> usize {
        self.caps.len() + tier.0 as usize * 2 + dir.index()
    }

    /// Dense index of the backbone slot.
    ///
    /// # Panics
    /// If the backbone is unconstrained.
    pub fn backbone_index(&self) -> usize {
        assert!(self.backbone.is_some(), "backbone is unconstrained");
        self.caps.len() + self.tier_caps.len()
    }

    /// Capacity of the dense link slot `idx`, bytes/second.
    ///
    /// # Panics
    /// If `idx >= num_links()`.
    pub fn capacity_at(&self, idx: usize) -> f64 {
        let nh = self.caps.len();
        if idx < nh {
            self.caps[idx]
        } else if idx < nh + self.tier_caps.len() {
            self.tier_caps[idx - nh]
        } else {
            self.backbone.expect("backbone slot without backbone")
        }
    }

    /// One-way latency between two hosts, seconds: the sum of both
    /// access-link latencies, plus — when the hosts sit behind different
    /// tiers — each side's tier latency and the backbone latency.
    pub fn latency(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 0.0;
        }
        let mut l = self.link(a).latency_s + self.link(b).latency_s;
        let (ta, tb) = (self.tier_of[a.0 as usize], self.tier_of[b.0 as usize]);
        if ta != tb {
            if ta != NO_TIER {
                l += self.tiers[ta as usize].latency_s;
            }
            if tb != NO_TIER {
                l += self.tiers[tb as usize].latency_s;
            }
            l += self.backbone_latency_s;
        }
        l
    }

    /// Appends the dense link indices a transfer from `src` through the
    /// `via` relay chain to `dst` traverses, in path order.
    ///
    /// Each hop-to-hop segment contributes the sender's uplink, then —
    /// when the endpoints sit behind different tiers — the source tier's
    /// uplink, the (constrained) backbone, and the destination tier's
    /// downlink, then the receiver's downlink. A loopback transfer
    /// (`src == dst`, no relays) traverses nothing. On a flat topology
    /// this produces exactly the original host-link path.
    pub fn route_into(&self, src: HostId, via: &[HostId], dst: HostId, out: &mut Vec<u32>) {
        if src == dst && via.is_empty() {
            return;
        }
        let mut from = src;
        for k in 0..=via.len() {
            let to = if k < via.len() { via[k] } else { dst };
            out.push((from.0 as usize * 2 + Direction::Up.index()) as u32);
            let (tf, tt) = (self.tier_of[from.0 as usize], self.tier_of[to.0 as usize]);
            if tf != tt {
                if tf != NO_TIER {
                    out.push(self.tier_link_index(TierId(tf), Direction::Up) as u32);
                }
                if self.backbone.is_some() {
                    out.push(self.backbone_index() as u32);
                }
                if tt != NO_TIER {
                    out.push(self.tier_link_index(TierId(tt), Direction::Down) as u32);
                }
            }
            out.push((to.0 as usize * 2 + Direction::Down.index()) as u32);
            from = to;
        }
    }

    /// All host ids.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_link_capacity() {
        let l = HostLink::symmetric_mbit(100.0, 0.001);
        assert!((l.up_bytes_per_sec - 12_500_000.0).abs() < 1e-6);
        assert_eq!(l.up_bytes_per_sec, l.down_bytes_per_sec);
        assert_eq!(l.capacity(Direction::Up), l.up_bytes_per_sec);
    }

    #[test]
    fn asymmetric_link() {
        let l = HostLink::asymmetric_mbit(16.0, 1.0, 0.02);
        assert!(l.down_bytes_per_sec > l.up_bytes_per_sec);
    }

    #[test]
    fn topology_add_and_query() {
        let mut t = Topology::new();
        assert!(t.is_empty());
        let a = t.add_host(HostLink::symmetric_mbit(100.0, 0.001));
        let b = t.add_host(HostLink::symmetric_mbit(10.0, 0.005));
        assert_eq!(t.len(), 2);
        assert_eq!(a, HostId(0));
        assert_eq!(b, HostId(1));
        assert!((t.latency(a, b) - 0.006).abs() < 1e-12);
        assert_eq!(t.latency(a, a), 0.0);
        let ids: Vec<_> = t.host_ids().collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn flat_route_matches_legacy_path() {
        let mut t = Topology::new();
        let a = t.add_host(HostLink::symmetric_mbit(100.0, 0.001));
        let b = t.add_host(HostLink::symmetric_mbit(100.0, 0.001));
        let v = t.add_host(HostLink::symmetric_mbit(10.0, 0.001));
        assert!(!t.is_hierarchical());
        let mut out = Vec::new();
        t.route_into(a, &[], b, &mut out);
        assert_eq!(out, vec![0, 3]); // a.up, b.down
        out.clear();
        t.route_into(a, &[v], b, &mut out);
        assert_eq!(out, vec![0, 5, 4, 3]); // a.up, v.down, v.up, b.down
        out.clear();
        t.route_into(a, &[], a, &mut out);
        assert!(out.is_empty(), "loopback traverses nothing");
    }

    #[test]
    fn tiered_route_crosses_aggregation_and_backbone() {
        let mut t = Topology::new();
        let isp0 = t.add_tier(TierLink::symmetric_gbit(1.0, 0.005));
        let isp1 = t.add_tier(TierLink::symmetric_gbit(2.0, 0.004));
        let a = t.add_host_in(isp0, HostLink::symmetric_mbit(100.0, 0.001));
        let b = t.add_host_in(isp0, HostLink::symmetric_mbit(100.0, 0.001));
        let c = t.add_host_in(isp1, HostLink::symmetric_mbit(10.0, 0.002));
        t.set_backbone(100e9 / 8.0, 0.01);
        assert!(t.is_hierarchical());
        assert_eq!(t.tier_of(a), Some(isp0));
        assert_eq!(t.tier_of(c), Some(isp1));
        // 3 hosts → slots 0..6; 2 tiers → 6..10; backbone → 10.
        assert_eq!(t.num_links(), 11);
        assert_eq!(t.tier_link_index(isp0, Direction::Up), 6);
        assert_eq!(t.tier_link_index(isp1, Direction::Down), 9);
        assert_eq!(t.backbone_index(), 10);
        assert_eq!(t.capacity_at(6), 1e9 / 8.0);
        assert_eq!(t.capacity_at(10), 100e9 / 8.0);

        // Intra-tier: access links only (traffic stays inside the ISP).
        let mut out = Vec::new();
        t.route_into(a, &[], b, &mut out);
        assert_eq!(out, vec![0, 3]);
        // Inter-tier: a.up, isp0.up, backbone, isp1.down, c.down.
        out.clear();
        t.route_into(a, &[], c, &mut out);
        assert_eq!(out, vec![0, 6, 10, 9, 5]);
        // Latency gains tier + backbone terms only across tiers.
        assert!((t.latency(a, b) - 0.002).abs() < 1e-12);
        assert!((t.latency(a, c) - (0.001 + 0.002 + 0.005 + 0.004 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn untiered_hosts_mixed_with_tiered() {
        let mut t = Topology::new();
        let server = t.add_host(HostLink::symmetric_mbit(1000.0, 0.0005));
        let isp = t.add_tier(TierLink::symmetric_gbit(1.0, 0.005));
        let vol = t.add_host_in(isp, HostLink::asymmetric_mbit(16.0, 1.0, 0.02));
        let mut out = Vec::new();
        // Untiered → tiered crosses the destination tier's downlink
        // (no backbone configured → no backbone slot).
        t.route_into(server, &[], vol, &mut out);
        assert_eq!(out, vec![0, 5, 3]);
        assert!((t.latency(server, vol) - (0.0005 + 0.02 + 0.005)).abs() < 1e-12);
    }

    #[test]
    fn dense_link_index_roundtrip() {
        let mut t = Topology::new();
        let a = t.add_host(HostLink::asymmetric_mbit(16.0, 1.0, 0.02));
        let b = t.add_host(HostLink::symmetric_mbit(100.0, 0.001));
        assert_eq!(t.num_links(), 4);
        for host in [a, b] {
            for dir in [Direction::Up, Direction::Down] {
                let l = LinkRef { host, dir };
                let idx = t.link_index(l);
                assert!(idx < t.num_links());
                assert_eq!(t.capacity_at(idx), t.capacity(l));
            }
        }
        // Up/Down of the same host occupy adjacent slots.
        assert_eq!(
            t.link_index(LinkRef {
                host: b,
                dir: Direction::Up
            }),
            2
        );
        assert_eq!(
            t.link_index(LinkRef {
                host: b,
                dir: Direction::Down
            }),
            3
        );
    }
}
