//! Differential tests: the incremental allocator/flow engine against
//! the scan-everything reference implementations.
//!
//! * [`vmr_netsim::Allocator`] (behind [`allocate`]) must reproduce
//!   [`allocate_reference`] bit-for-bit on arbitrary topologies and
//!   demand sets, and never oversubscribe a link.
//! * [`Network`] must produce the **bit-identical completion stream** of
//!   [`NaiveNetwork`] — same flows, same order, same microsecond, same
//!   durations, exact byte/tally accounting — for arbitrary monotone
//!   event scripts, and be deterministic across repeated runs.
//! * [`AggregateNetwork`] must be bit-identical to [`Network`] below its
//!   coalescing threshold (flat **and** tiered topologies), and above it
//!   must complete every flow exactly once with total bytes conserved
//!   and the makespan inside an asserted tolerance band.

use proptest::prelude::*;
use vmr_desim::{SimDuration, SimTime};
use vmr_netsim::{
    allocate, allocate_reference, AggregateNetwork, Direction, FlowDemand, FlowSpec, HostId,
    HostLink, LinkRef, NaiveNetwork, Network, Priority, ScalePolicy, TierLink, Topology,
};

fn host_link(sel: u8) -> HostLink {
    match sel % 4 {
        0 => HostLink::symmetric_mbit(100.0, 0.0),
        1 => HostLink::symmetric_mbit(10.0, 0.001),
        2 => HostLink::asymmetric_mbit(16.0, 1.0, 0.02),
        _ => HostLink::symmetric_mbit(0.5, 0.005),
    }
}

fn build_topology(hosts: &[u8]) -> Topology {
    let mut t = Topology::new();
    for &h in hosts {
        t.add_host(host_link(h));
    }
    t
}

/// Builds a demand set from raw generator tuples; src == dst produces a
/// loopback (no-link) demand, `relay_sel` sometimes adds a relay hop.
#[allow(clippy::type_complexity)]
fn build_demands(
    n_hosts: u32,
    raw: &[((u32, u32, u32), (bool, u8, u8))],
) -> Vec<FlowDemand<usize>> {
    raw.iter()
        .enumerate()
        .map(|(i, &((src, dst, relay_sel), (bg, cap_sel, _)))| {
            let src = HostId(src % n_hosts);
            let dst = HostId(dst % n_hosts);
            let mut links = Vec::new();
            if src != dst {
                links.push(LinkRef {
                    host: src,
                    dir: Direction::Up,
                });
                if relay_sel % 5 == 0 {
                    let relay = HostId(relay_sel % n_hosts);
                    links.push(LinkRef {
                        host: relay,
                        dir: Direction::Down,
                    });
                    links.push(LinkRef {
                        host: relay,
                        dir: Direction::Up,
                    });
                }
                links.push(LinkRef {
                    host: dst,
                    dir: Direction::Down,
                });
            }
            FlowDemand {
                key: i,
                links,
                priority: if bg {
                    Priority::Background
                } else {
                    Priority::Foreground
                },
                rate_cap: if cap_sel % 3 == 0 {
                    Some(500.0 + cap_sel as f64 * 4_321.0)
                } else {
                    None
                },
            }
        })
        .collect()
}

/// One scripted flow start: `(src, dst, relay_sel, bytes, setup_ms,
/// prio_sel)` then `(cap_sel, dt_us, abort_sel)`.
type RawFlow = ((u32, u32, u32, u64, u16, u8), (u8, u32, u8));

/// The obs counters both engines must agree on: flows started,
/// completed, aborted, and payload bytes delivered. (Deliberately not
/// `netsim.realloc_waves`, which is engine-defined: the reference
/// engine reallocates on every settle.)
fn obs_counters(obs: &vmr_obs::Obs) -> [u64; 4] {
    let snap = obs.snapshot();
    [
        snap.counter("netsim.flows_started"),
        snap.counter("netsim.flows_completed"),
        snap.counter("netsim.flows_aborted"),
        snap.counter("netsim.bytes_delivered"),
    ]
}

/// Replays a script on either engine; both expose the same API, so the
/// runner is stamped out per engine type. Alongside the completion
/// stream, returns the engine's obs counter vector for differential
/// comparison.
macro_rules! script_runner {
    ($name:ident, $on_name:ident, $engine:ty) => {
        fn $name(
            hosts: &[u8],
            flows: &[RawFlow],
        ) -> (Vec<(u64, u64, u64)>, f64, u64, u64, [u64; 4]) {
            $on_name(build_topology(hosts), flows)
        }

        fn $on_name(
            topo: Topology,
            flows: &[RawFlow],
        ) -> (Vec<(u64, u64, u64)>, f64, u64, u64, [u64; 4]) {
            let n = topo.len() as u32;
            let obs = vmr_obs::Obs::new();
            let mut net = <$engine>::with_obs(topo, &obs);
            let mut now = SimTime::ZERO;
            let mut out = Vec::new();
            let mut started = Vec::new();
            let record =
                |c: vmr_netsim::Completion| (c.id.0, c.at.as_micros(), c.duration.as_micros());
            for &((src, dst, relay_sel, bytes, setup_ms, prio_sel), (cap_sel, dt_us, abort_sel)) in
                flows
            {
                now += SimDuration::from_micros(dt_us as u64 % 3_000_000);
                out.extend(net.advance(now).into_iter().map(record));
                if abort_sel % 7 == 0 && !started.is_empty() {
                    let victim = started[abort_sel as usize % started.len()];
                    net.abort_flow(now, victim);
                }
                let src = HostId(src % n);
                let dst = HostId(dst % n);
                let mut spec = FlowSpec::simple(src, dst, bytes % 5_000_000);
                spec.setup_s = (setup_ms % 2_000) as f64 / 1_000.0;
                if prio_sel % 3 == 0 {
                    spec.priority = Priority::Background;
                }
                if cap_sel % 4 == 0 {
                    spec.rate_cap = Some(1_000.0 + cap_sel as f64 * 977.0);
                }
                if relay_sel % 6 == 0 && n >= 3 {
                    spec.via = vec![HostId((relay_sel + 1) % n)];
                }
                started.push(net.start_flow(now, spec));
            }
            let mut guard = 0u32;
            while let Some(t) = net.next_event_time() {
                if t == SimTime::MAX {
                    break;
                }
                guard += 1;
                assert!(guard < 100_000, "script did not converge");
                out.extend(net.advance(t).into_iter().map(record));
            }
            (
                out,
                net.bytes_delivered(),
                net.fg_durations.count(),
                net.bg_durations.count(),
                obs_counters(&obs),
            )
        }
    };
}

script_runner!(run_incremental, run_incremental_on, Network);
script_runner!(run_naive, run_naive_on, NaiveNetwork);

/// Scale-regime statistics of an [`AggregateNetwork`] run, for the
/// counter assertions.
struct AggStats {
    aggregates_active: usize,
    peak_aggregates: usize,
    coalesce_hits: u64,
    splits: u64,
    scale_regime: bool,
}

/// `script_runner!` body for [`AggregateNetwork`] — hand-rolled because
/// the engine takes a [`ScalePolicy`], exposes tallies through methods
/// rather than fields, and reports aggregate statistics. Optionally
/// replays onto a caller-built (possibly tiered) topology.
#[allow(clippy::type_complexity)]
fn run_aggregate_on(
    topo: Topology,
    flows: &[RawFlow],
    policy: ScalePolicy,
) -> (Vec<(u64, u64, u64)>, f64, u64, u64, [u64; 4], AggStats) {
    let n = topo.len() as u32;
    let obs = vmr_obs::Obs::new();
    let mut net = AggregateNetwork::with_policy(topo, &obs, policy);
    let mut now = SimTime::ZERO;
    let mut out = Vec::new();
    let mut started = Vec::new();
    let record = |c: vmr_netsim::Completion| (c.id.0, c.at.as_micros(), c.duration.as_micros());
    for &((src, dst, relay_sel, bytes, setup_ms, prio_sel), (cap_sel, dt_us, abort_sel)) in flows {
        now += SimDuration::from_micros(dt_us as u64 % 3_000_000);
        out.extend(net.advance(now).into_iter().map(record));
        if abort_sel % 7 == 0 && !started.is_empty() {
            let victim = started[abort_sel as usize % started.len()];
            net.abort_flow(now, victim);
        }
        let src = HostId(src % n);
        let dst = HostId(dst % n);
        let mut spec = FlowSpec::simple(src, dst, bytes % 5_000_000);
        spec.setup_s = (setup_ms % 2_000) as f64 / 1_000.0;
        if prio_sel % 3 == 0 {
            spec.priority = Priority::Background;
        }
        if cap_sel % 4 == 0 {
            spec.rate_cap = Some(1_000.0 + cap_sel as f64 * 977.0);
        }
        if relay_sel % 6 == 0 && n >= 3 {
            spec.via = vec![HostId((relay_sel + 1) % n)];
        }
        started.push(net.start_flow(now, spec));
    }
    let mut guard = 0u32;
    while let Some(t) = net.next_event_time() {
        if t == SimTime::MAX {
            break;
        }
        guard += 1;
        assert!(guard < 100_000, "script did not converge");
        out.extend(net.advance(t).into_iter().map(record));
    }
    let stats = AggStats {
        aggregates_active: net.aggregates_active(),
        peak_aggregates: net.peak_aggregates(),
        coalesce_hits: net.coalesce_hits(),
        splits: net.splits(),
        scale_regime: net.is_scale_regime(),
    };
    // The vmr-obs wiring (`net.aggregates_active` gauge,
    // `net.coalesce_hits` / `net.splits` counters) must agree with the
    // engine's own statistics whenever recording is compiled in.
    if cfg!(feature = "record") {
        let snap = obs.snapshot();
        assert_eq!(snap.counter("net.coalesce_hits"), stats.coalesce_hits);
        assert_eq!(snap.counter("net.splits"), stats.splits);
        let gauge = match snap.get("net.aggregates_active") {
            Some(vmr_obs::MetricValue::Gauge(v)) => *v,
            _ => 0.0,
        };
        assert_eq!(gauge, stats.aggregates_active as f64);
    }
    (
        out,
        net.bytes_delivered(),
        net.fg_durations().count(),
        net.bg_durations().count(),
        obs_counters(&obs),
        stats,
    )
}

#[allow(clippy::type_complexity)]
fn run_aggregate(
    hosts: &[u8],
    flows: &[RawFlow],
    policy: ScalePolicy,
) -> (Vec<(u64, u64, u64)>, f64, u64, u64, [u64; 4], AggStats) {
    run_aggregate_on(build_topology(hosts), flows, policy)
}

/// A three-ISP tiered topology with a constrained backbone, for the
/// hierarchical differential tests (the incremental engine allocates
/// over the same dense tier/backbone indices the aggregate engine
/// publishes shares for).
fn tiered_topology(hosts: &[u8]) -> Topology {
    let mut t = Topology::new();
    let tiers = [
        t.add_tier(TierLink::symmetric_gbit(0.04, 0.004)),
        t.add_tier(TierLink::symmetric_gbit(0.1, 0.006)),
        t.add_tier(TierLink::symmetric_gbit(0.02, 0.008)),
    ];
    for (i, &h) in hosts.iter().enumerate() {
        t.add_host_in(tiers[i % tiers.len()], host_link(h));
    }
    t.set_backbone(60e6 / 8.0, 0.012);
    t
}

/// Compares two completion streams for exact equality — same flows, in
/// the same order, at the same microsecond, with the same durations —
/// and checks each stream is time-ordered. Returns a description of the
/// first violation, if any.
///
/// Exactness is achievable because both engines materialize a flow's
/// bytes only at its rate changes, with identical arithmetic from
/// identical anchors, and the allocator is proven bit-identical to the
/// reference. (The pre-rewrite engine instead re-integrated bytes at
/// every `advance` call, so its `ceil` to whole microseconds shifted by
/// ±1 µs with the caller's observation pattern; both engines now use the
/// observation-independent anchor semantics.)
fn stream_divergence(inc: &[(u64, u64, u64)], nai: &[(u64, u64, u64)]) -> Option<String> {
    if inc.len() != nai.len() {
        return Some(format!("lengths differ: {} vs {}", inc.len(), nai.len()));
    }
    for (i, (a, b)) in inc.iter().zip(nai).enumerate() {
        if a != b {
            return Some(format!(
                "entry {}: incremental (id {}, at {} µs, dur {}) vs naive (id {}, at {} µs, dur {})",
                i, a.0, a.1, a.2, b.0, b.1, b.2
            ));
        }
    }
    for s in [inc, nai] {
        if s.windows(2).any(|w| w[0].1 > w[1].1) {
            return Some("completion stream not time-ordered".into());
        }
    }
    None
}

/// A fixed mixed script (relays, aborts, setup phases, both priorities,
/// loopback flows) pinned as a regression case: it sits on several of
/// the `ceil`-boundary instants where the pre-rewrite observation-
/// dependent byte integration used to shift completions by 1 µs.
#[test]
fn pinned_mixed_script_matches_naive() {
    let hosts = [0u8, 3, 1, 2, 3, 2, 1];
    let flows: Vec<RawFlow> = vec![
        ((6, 7, 2, 4884319, 1838, 3), (1, 2769706, 7)),
        ((0, 6, 5, 3918933, 801, 5), (4, 1820795, 8)),
        ((1, 7, 3, 4087075, 910, 0), (2, 1485187, 4)),
        ((3, 6, 1, 4191922, 553, 4), (4, 1385974, 5)),
        ((6, 2, 0, 2783030, 76, 4), (5, 890703, 2)),
        ((2, 0, 4, 3318767, 630, 2), (6, 125313, 12)),
        ((5, 7, 11, 3511820, 154, 4), (5, 2789263, 2)),
        ((6, 2, 2, 1568056, 1391, 2), (6, 2247833, 2)),
        ((1, 2, 0, 2958001, 1492, 3), (0, 2379743, 11)),
        ((4, 6, 6, 4618704, 1753, 0), (4, 2198808, 2)),
        ((0, 6, 11, 2066412, 54, 4), (7, 967746, 8)),
        ((5, 7, 1, 2474246, 220, 3), (2, 1358664, 10)),
        ((7, 1, 0, 3189491, 854, 4), (6, 1332666, 10)),
        ((6, 1, 6, 2047573, 923, 3), (7, 91435, 12)),
        ((0, 5, 11, 205501, 1, 5), (7, 978067, 4)),
        ((5, 5, 3, 4830722, 1271, 3), (3, 1510680, 5)),
        ((4, 5, 9, 1791366, 1471, 1), (5, 161319, 11)),
    ];
    let (inc, inc_bytes, _, _, inc_obs) = run_incremental(&hosts, &flows);
    let (nai, nai_bytes, _, _, nai_obs) = run_naive(&hosts, &flows);
    assert_eq!(stream_divergence(&inc, &nai), None);
    assert_eq!(inc_bytes.to_bits(), nai_bytes.to_bits());
    assert_eq!(inc_obs, nai_obs, "obs counters diverge");
    if cfg!(feature = "record") {
        assert!(inc_obs[0] > 0, "script started no flows");
    }
}

proptest! {
    /// The incremental allocator reproduces the reference bit-for-bit
    /// (same shares, same freeze order, same float operation sequence),
    /// on random topologies with relays, caps and both priorities.
    #[test]
    fn allocator_matches_reference_bitwise(
        hosts in proptest::collection::vec(0u8..4, 2usize..12),
        raw in proptest::collection::vec(
            ((0u32..16, 0u32..16, 0u32..16), (any::<bool>(), 0u8..9, 0u8..4)),
            0usize..50,
        ),
    ) {
        let topo = build_topology(&hosts);
        let demands = build_demands(topo.len() as u32, &raw);
        let fast = allocate(&topo, &demands);
        let slow = allocate_reference(&topo, &demands);
        prop_assert_eq!(fast.len(), slow.len());
        for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!(
                a.to_bits() == b.to_bits(),
                "flow {}: incremental {} != reference {}", i, a, b
            );
        }
    }

    /// Per-link conservation under the incremental allocator: the rates
    /// crossing any link sum to at most its capacity.
    #[test]
    fn allocator_conserves_link_capacity(
        hosts in proptest::collection::vec(0u8..4, 2usize..12),
        raw in proptest::collection::vec(
            ((0u32..16, 0u32..16, 0u32..16), (any::<bool>(), 0u8..9, 0u8..4)),
            1usize..50,
        ),
    ) {
        let topo = build_topology(&hosts);
        let demands = build_demands(topo.len() as u32, &raw);
        let rates = allocate(&topo, &demands);
        let mut usage = std::collections::HashMap::new();
        for (f, r) in demands.iter().zip(&rates) {
            prop_assert!(*r >= 0.0, "negative rate {}", r);
            for l in &f.links {
                *usage.entry(*l).or_insert(0.0) += *r;
            }
        }
        for (l, used) in usage {
            let cap = topo.capacity(l);
            prop_assert!(
                used <= cap * (1.0 + 1e-6) + 1e-6,
                "link {:?} oversubscribed: {} > {}", l, used, cap
            );
        }
    }

    /// The incremental engine and the naive engine emit the same
    /// completion stream — same flows, same instants (exact, to the
    /// microsecond), same durations, same tallies — for arbitrary
    /// monotone scripts of starts, aborts and advances.
    #[test]
    fn completion_stream_matches_naive_engine(
        hosts in proptest::collection::vec(0u8..4, 2usize..8),
        flows in proptest::collection::vec(
            (
                (0u32..8, 0u32..8, 0u32..12, 0u64..5_000_000, 0u16..2_000, 0u8..6),
                (0u8..8, 0u32..3_000_000, 0u8..15),
            ),
            1usize..25,
        ),
    ) {
        let (inc, inc_bytes, inc_fg, inc_bg, inc_obs) = run_incremental(&hosts, &flows);
        let (naive, naive_bytes, naive_fg, naive_bg, naive_obs) = run_naive(&hosts, &flows);
        let diff = stream_divergence(&inc, &naive);
        prop_assert!(diff.is_none(), "completion streams diverge: {}", diff.unwrap());
        prop_assert_eq!(inc_bytes.to_bits(), naive_bytes.to_bits());
        prop_assert_eq!(inc_fg, naive_fg);
        prop_assert_eq!(inc_bg, naive_bg);
        // Differential obs check: both engines must have recorded the
        // same started/completed/aborted/bytes counters.
        prop_assert_eq!(inc_obs, naive_obs);
        if cfg!(feature = "record") {
            prop_assert!(inc_obs[0] >= inc_obs[1] + inc_obs[2]);
            prop_assert_eq!(inc_obs[1], inc.len() as u64);
        }
    }

    /// Two runs of the incremental engine over the same script are
    /// identical — no iteration-order or allocation-order effects.
    #[test]
    fn completion_stream_deterministic_across_runs(
        hosts in proptest::collection::vec(0u8..4, 2usize..8),
        flows in proptest::collection::vec(
            (
                (0u32..8, 0u32..8, 0u32..12, 0u64..5_000_000, 0u16..2_000, 0u8..6),
                (0u8..8, 0u32..3_000_000, 0u8..15),
            ),
            1usize..25,
        ),
    ) {
        let first = run_incremental(&hosts, &flows);
        let second = run_incremental(&hosts, &flows);
        prop_assert_eq!(first.0, second.0);
        prop_assert_eq!(first.1.to_bits(), second.1.to_bits());
    }

    /// Below its coalescing threshold the aggregate engine IS the
    /// incremental engine: bit-identical completion streams, bytes,
    /// tallies and obs counters, with zero aggregate activity — for
    /// arbitrary mixed scripts (relays, aborts, both priorities).
    #[test]
    fn aggregate_matches_incremental_below_threshold(
        hosts in proptest::collection::vec(0u8..4, 2usize..8),
        flows in proptest::collection::vec(
            (
                (0u32..8, 0u32..8, 0u32..12, 0u64..5_000_000, 0u16..2_000, 0u8..6),
                (0u8..8, 0u32..3_000_000, 0u8..15),
            ),
            1usize..25,
        ),
    ) {
        let policy = ScalePolicy { coalesce_threshold: 1_000, quantum_mantissa_bits: 6 };
        let (inc, inc_bytes, inc_fg, inc_bg, inc_obs) = run_incremental(&hosts, &flows);
        let (agg, agg_bytes, agg_fg, agg_bg, agg_obs, stats) =
            run_aggregate(&hosts, &flows, policy);
        let diff = stream_divergence(&inc, &agg);
        prop_assert!(diff.is_none(), "completion streams diverge: {}", diff.unwrap());
        prop_assert_eq!(inc_bytes.to_bits(), agg_bytes.to_bits());
        prop_assert_eq!((inc_fg, inc_bg), (agg_fg, agg_bg));
        prop_assert_eq!(inc_obs, agg_obs);
        prop_assert!(!stats.scale_regime, "engine migrated below threshold");
        prop_assert_eq!(stats.peak_aggregates, 0);
        prop_assert_eq!((stats.coalesce_hits, stats.splits), (0, 0));
    }

    /// Same bit-identity claim on a hierarchical topology: the exact
    /// engine allocates over tier and backbone links through the same
    /// dense index space the aggregate engine publishes shares for.
    #[test]
    fn aggregate_matches_incremental_on_tiered_topology(
        hosts in proptest::collection::vec(0u8..4, 3usize..8),
        flows in proptest::collection::vec(
            (
                (0u32..8, 0u32..8, 0u32..12, 0u64..5_000_000, 0u16..2_000, 0u8..6),
                (0u8..8, 0u32..3_000_000, 0u8..15),
            ),
            1usize..25,
        ),
    ) {
        let policy = ScalePolicy { coalesce_threshold: 1_000, quantum_mantissa_bits: 6 };
        let (inc, inc_bytes, inc_fg, inc_bg, inc_obs) =
            run_incremental_on(tiered_topology(&hosts), &flows);
        let (agg, agg_bytes, agg_fg, agg_bg, agg_obs, stats) =
            run_aggregate_on(tiered_topology(&hosts), &flows, policy);
        let diff = stream_divergence(&inc, &agg);
        prop_assert!(diff.is_none(), "completion streams diverge: {}", diff.unwrap());
        prop_assert_eq!(inc_bytes.to_bits(), agg_bytes.to_bits());
        prop_assert_eq!((inc_fg, inc_bg), (agg_fg, agg_bg));
        prop_assert_eq!(inc_obs, agg_obs);
        prop_assert!(!stats.scale_regime);
    }

    /// Above the threshold the fluid approximation must stay honest:
    /// every flow still completes exactly once, total bytes match, and
    /// the makespan lands within the asserted tolerance band of the
    /// exact engine (the min-share pool rate is a lower bound on the
    /// max-min rate, so the aggregate engine can only be slower — by at
    /// most the pooling and share-quantization error).
    #[test]
    fn aggregate_makespan_within_tolerance_above_threshold(
        hosts in proptest::collection::vec(0u8..4, 2usize..8),
        flows in proptest::collection::vec(
            (
                // Foreground-only (prio_sel never % 3 == 0) …
                (0u32..8, 0u32..8, 0u32..12, 1_000u64..5_000_000, 0u16..500, 1u8..3),
                // … no aborts (abort_sel never % 7 == 0), tight spacing
                // so the script actually crosses the threshold.
                (0u8..8, 0u32..200_000, 1u8..7),
            ),
            6usize..25,
        ),
    ) {
        let policy = ScalePolicy { coalesce_threshold: 4, quantum_mantissa_bits: 6 };
        let (inc, inc_bytes, ..) = run_incremental(&hosts, &flows);
        let (agg, agg_bytes, _, _, _, stats) = run_aggregate(&hosts, &flows, policy);
        // No aborts: every scripted flow completes in both engines.
        prop_assert_eq!(inc.len(), flows.len());
        prop_assert_eq!(agg.len(), flows.len());
        let mut inc_ids: Vec<u64> = inc.iter().map(|c| c.0).collect();
        let mut agg_ids: Vec<u64> = agg.iter().map(|c| c.0).collect();
        inc_ids.sort_unstable();
        agg_ids.sort_unstable();
        prop_assert_eq!(inc_ids, agg_ids);
        // Payload byte counts are integers < 2^53, so the sums are
        // exact regardless of completion order.
        prop_assert_eq!(inc_bytes.to_bits(), agg_bytes.to_bits());
        let inc_makespan = inc.iter().map(|c| c.1).max().unwrap_or(0).max(1) as f64;
        let agg_makespan = agg.iter().map(|c| c.1).max().unwrap_or(0).max(1) as f64;
        let ratio = agg_makespan / inc_makespan;
        prop_assert!(
            (0.99..=3.0).contains(&ratio),
            "makespan ratio {} outside tolerance (exact {} µs, aggregate {} µs, migrated: {})",
            ratio, inc_makespan, agg_makespan, stats.scale_regime
        );
    }
}

/// Deterministic coalescing scenario: eight identical-path foreground
/// transfers with a threshold of four. The engine must migrate on the
/// fifth start, pool the class, and expand per-flow completions back
/// out — visible through the `net.*` statistics (run_aggregate also
/// cross-checks them against the vmr-obs snapshot).
#[test]
fn scale_regime_counters_track_coalescing() {
    let hosts = [0u8; 6];
    let flows: Vec<RawFlow> = (0..8u64)
        .map(|i| ((0, 1, 1, 2_000_000 + i, 0, 1), (1, 0, 1)))
        .collect();
    let policy = ScalePolicy {
        coalesce_threshold: 4,
        quantum_mantissa_bits: 6,
    };
    let (out, bytes, fg, bg, _obs, stats) = run_aggregate(&hosts, &flows, policy);
    assert_eq!(out.len(), 8, "every flow completes exactly once");
    assert_eq!(fg, 8);
    assert_eq!(bg, 0);
    let expected: f64 = flows.iter().map(|f| (f.0 .3 % 5_000_000) as f64).sum();
    assert_eq!(bytes.to_bits(), expected.to_bits());
    assert!(stats.scale_regime, "threshold crossing must ratchet");
    assert!(stats.peak_aggregates >= 1, "same-class flows must pool");
    assert!(stats.coalesce_hits > 0);
    assert!(stats.splits > 0);
    assert_eq!(stats.aggregates_active, 0, "pools drained at quiescence");
}
