//! Property tests for the bandwidth allocator and flow manager.

use proptest::prelude::*;
use vmr_desim::SimTime;
use vmr_netsim::{
    allocate, Direction, FlowDemand, FlowSpec, HostId, HostLink, LinkRef, Network, Priority,
    Topology,
};

fn random_topology(n_hosts: usize, caps: &[f64]) -> Topology {
    let mut t = Topology::new();
    for i in 0..n_hosts {
        t.add_host(HostLink::symmetric_mbit(caps[i % caps.len()], 0.0));
    }
    t
}

proptest! {
    /// No link ever carries more than its capacity, for any flow pattern.
    #[test]
    fn allocation_never_oversubscribes(
        n_hosts in 2usize..12,
        caps in proptest::collection::vec(1.0f64..1000.0, 1..4),
        pairs in proptest::collection::vec((0u32..12, 0u32..12, any::<bool>()), 1..40),
    ) {
        let topo = random_topology(n_hosts, &caps);
        let flows: Vec<FlowDemand<usize>> = pairs
            .iter()
            .enumerate()
            .filter(|(_, (s, d, _))| {
                (*s as usize) < n_hosts && (*d as usize) < n_hosts && s != d
            })
            .map(|(i, (s, d, bg))| FlowDemand {
                key: i,
                links: vec![
                    LinkRef { host: HostId(*s), dir: Direction::Up },
                    LinkRef { host: HostId(*d), dir: Direction::Down },
                ],
                priority: if *bg { Priority::Background } else { Priority::Foreground },
                rate_cap: None,
            })
            .collect();
        let rates = allocate(&topo, &flows);
        // Sum per link.
        let mut usage = std::collections::HashMap::new();
        for (f, r) in flows.iter().zip(&rates) {
            for l in &f.links {
                *usage.entry(*l).or_insert(0.0) += *r;
            }
        }
        for (l, used) in usage {
            let cap = topo.capacity(l);
            prop_assert!(
                used <= cap * (1.0 + 1e-6) + 1e-6,
                "link {:?} oversubscribed: {} > {}", l, used, cap
            );
        }
    }

    /// All rates are non-negative and every flow with at least one link
    /// of positive capacity gets a positive foreground rate when it is
    /// alone on its links.
    #[test]
    fn lone_flow_gets_positive_rate(
        cap in 1.0f64..1000.0,
        bytes in 1u64..1_000_000_000,
    ) {
        let mut topo = Topology::new();
        let a = topo.add_host(HostLink::symmetric_mbit(cap, 0.0));
        let b = topo.add_host(HostLink::symmetric_mbit(cap, 0.0));
        let mut net = Network::new(topo);
        net.start_flow(SimTime::ZERO, FlowSpec::simple(a, b, bytes));
        let t = net.next_event_time().unwrap();
        prop_assert!(t < SimTime::MAX);
        let done = net.advance(t);
        prop_assert_eq!(done.len(), 1);
        // Completion time == bytes / capacity.
        let expect = bytes as f64 / (cap * 1e6 / 8.0);
        let got = done[0].at.as_secs_f64();
        prop_assert!((got - expect).abs() < expect.max(1e-3) * 1e-3 + 2e-6,
            "expected {} got {}", expect, got);
    }

    /// Max–min property: you cannot raise any flow's rate without
    /// lowering the rate of some flow that has an equal or smaller rate.
    /// We verify the standard certificate: every flow has at least one
    /// saturated link on which it has the maximal rate among its users.
    #[test]
    fn max_min_certificate(
        n_hosts in 2usize..8,
        pairs in proptest::collection::vec((0u32..8, 0u32..8), 1..20),
    ) {
        let topo = random_topology(n_hosts, &[100.0]);
        let flows: Vec<FlowDemand<usize>> = pairs
            .iter()
            .enumerate()
            .filter(|(_, (s, d))| (*s as usize) < n_hosts && (*d as usize) < n_hosts && s != d)
            .map(|(i, (s, d))| FlowDemand {
                key: i,
                links: vec![
                    LinkRef { host: HostId(*s), dir: Direction::Up },
                    LinkRef { host: HostId(*d), dir: Direction::Down },
                ],
                priority: Priority::Foreground,
                rate_cap: None,
            })
            .collect();
        prop_assume!(!flows.is_empty());
        let rates = allocate(&topo, &flows);
        let mut usage = std::collections::HashMap::new();
        for (f, r) in flows.iter().zip(&rates) {
            for l in &f.links {
                *usage.entry(*l).or_insert(0.0) += *r;
            }
        }
        for (i, f) in flows.iter().enumerate() {
            let has_certificate = f.links.iter().any(|l| {
                let cap = topo.capacity(*l);
                let used: f64 = usage[l];
                let saturated = used >= cap * (1.0 - 1e-6);
                let is_max_user = flows
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.links.contains(l))
                    .all(|(j, _)| rates[j] <= rates[i] * (1.0 + 1e-6));
                saturated && is_max_user
            });
            prop_assert!(has_certificate, "flow {} lacks a bottleneck certificate", i);
        }
    }

    /// The flow manager conserves bytes: total delivered equals the sum
    /// of all completed flow sizes, regardless of arrival pattern.
    #[test]
    fn byte_conservation(
        specs in proptest::collection::vec((0u32..6, 0u32..6, 1u64..10_000_000, 0u64..5_000), 1..20)
    ) {
        let topo = random_topology(6, &[100.0]);
        let mut net = Network::new(topo);
        let mut expected = 0u64;
        // The Network API requires non-decreasing call times.
        let mut specs = specs;
        specs.sort_by_key(|(_, _, _, start_ms)| *start_ms);
        for (s, d, bytes, start_ms) in &specs {
            if s == d { continue; }
            expected += bytes;
            net.start_flow(
                SimTime::from_millis(*start_ms),
                FlowSpec::simple(HostId(*s), HostId(*d), *bytes),
            );
        }
        let mut completed = 0usize;
        let mut bytes_done = 0u64;
        while let Some(t) = net.next_event_time() {
            prop_assert!(t < SimTime::MAX, "flow stalled forever");
            for c in net.advance(t) {
                completed += 1;
                bytes_done += c.spec.bytes;
            }
        }
        prop_assert_eq!(bytes_done, expected);
        prop_assert_eq!(net.active_flows(), 0);
        let _ = completed;
    }
}
