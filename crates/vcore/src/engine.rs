//! The middleware engine: server daemons + client state machines wired
//! to the discrete-event kernel and the network model.
//!
//! One [`Engine`] simulates one BOINC project: a server host (scheduler,
//! data server, transitioner, validator, feeder) plus N volunteer
//! clients. Everything follows the paper's **pull model** — every
//! interaction starts with a client RPC; the server never contacts a
//! client.
//!
//! Project-specific behaviour (the MapReduce orchestration of vmr-core)
//! plugs in through the [`Policy`] trait, whose hooks fire on work-unit
//! validation, task execution, report arrival, and custom events.

use crate::backoff::Backoff;
use crate::config::ProjectConfig;
use crate::db::Db;
use crate::fault::{Corruption, FaultIndex, FaultPlan};
use crate::host::{HostProfile, ValidationCounts};
use crate::sched::{pick_results, WorkRequest};
use crate::transition::{transition_wu, Transition};
use crate::types::{ClientId, FileSource, OutputFingerprint, ResultId, WuId};
use crate::workunit::{ResultOutcome, ResultState, WorkUnitSpec};
use std::collections::{HashMap, VecDeque};
use vmr_desim::{EventId, RngStream, SimDuration, SimTime, Simulation, Tally};
use vmr_durable::{DurabilityPlan, Journal, Sections};
use vmr_netsim::{
    connect, AggregateNetwork, FlowId, FlowSpec, HostId, HostLink, Path, Priority, Topology,
    TraversalPolicy, TraversalStats,
};
use vmr_obs::EventKind;
use vmr_shuffle::{
    FetchObs, ShuffleStrategy, StrategyKind, SwarmIndex, SwarmSource, SwarmTransfer,
};
use vmr_trust::{Outcome as TrustOutcome, ReplicationDecision, ReplicationPolicy, TrustLedger};

/// Sentinel "source id" for swarm chunks seeded by the data server
/// (the server is not a client, so it has no `ClientId`).
const SERVER_SEED: u32 = u32::MAX;

/// Events driving the middleware simulation.
#[derive(Debug)]
pub enum Ev {
    /// The network has something to report (flow completion/setup end).
    NetWake,
    /// A client's scheduled RPC instant arrived.
    ClientWake(ClientId),
    /// A task finished executing on a client.
    ExecDone(ClientId, ResultId),
    /// A result's report deadline may have passed.
    DeadlineCheck(ResultId),
    /// Periodic server daemon pass (feeder refill).
    DaemonTick,
    /// Retry a peer download: (client, result, input index).
    PeerRetry(ClientId, ResultId, usize),
    /// A client permanently disappears (churn injection).
    Dropout(ClientId),
    /// The host's owner starts using the machine: execution pauses.
    Suspend(ClientId),
    /// The host becomes idle again: execution resumes.
    Resume(ClientId),
    /// Policy-defined event.
    Custom(u64),
}

/// Why a network flow exists.
#[derive(Debug, Clone)]
enum FlowPurpose {
    InputDownload {
        client: ClientId,
        rid: ResultId,
        input_idx: usize,
        from_peer: Option<ClientId>,
        /// Swarm chunk index; `None` = whole-file flow.
        chunk: Option<u32>,
        /// Server flow taken after peer attempts failed (shuffle
        /// fallback, as opposed to a regular data-server input).
        fallback: bool,
        /// Source is a sibling seed (a reducer re-serving a completed
        /// chunk), not a validated holder.
        sibling: bool,
    },
    OutputUpload {
        client: ClientId,
        rid: ResultId,
    },
}

/// Client-side task lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Downloading,
    Queued,
    Running,
    Uploading,
}

#[derive(Debug)]
struct TaskProgress {
    state: TaskState,
    downloads_pending: usize,
    /// Peer-download attempts per input index.
    attempts: Vec<u32>,
    assigned_at: SimTime,
    dl_done_at: Option<SimTime>,
    exec_done_at: Option<SimTime>,
    /// Pending ExecDone event while running (cancelled on suspend).
    exec_ev: Option<EventId>,
    /// When the current execution burst started.
    exec_started: Option<SimTime>,
    /// Compute time still owed when suspended mid-run.
    exec_remaining: Option<SimDuration>,
    fingerprint: Option<OutputFingerprint>,
    errored: bool,
}

/// A file a client is willing to serve to peers (BOINC-MR map outputs).
#[derive(Debug, Clone)]
pub struct ServedFile {
    /// Size served to each downloader.
    pub bytes: u64,
    /// Serving window end; `None` = no timeout.
    pub until: Option<SimTime>,
}

struct Client {
    host: HostId,
    profile: HostProfile,
    rng: RngStream,
    tasks: HashMap<ResultId, TaskProgress>,
    run_queue: VecDeque<ResultId>,
    running: Vec<ResultId>,
    ready_to_report: Vec<(ResultId, Option<OutputFingerprint>, bool)>, // (rid, fp, errored)
    backoff: Backoff,
    next_rpc_at: SimTime,
    wake: Option<EventId>,
    served: HashMap<String, ServedFile>,
    serving_now: u32,
    dropped: bool,
    suspended: bool,
}

/// Aggregate counters the experiment harness reads after a run.
#[derive(Debug, Default, Clone)]
pub struct EngineStats {
    /// Scheduler RPCs served.
    pub rpcs: u64,
    /// RPCs that requested work and got none (trigger backoff).
    pub empty_replies: u64,
    /// Results granted to clients.
    pub grants: u64,
    /// Reports received.
    pub reports: u64,
    /// Upload-finished → report-accepted gap, seconds (the §IV.B delay).
    pub report_delay: Tally,
    /// Peer download attempts that failed (connection/fault).
    pub peer_failures: u64,
    /// Inputs that fell back to the data server after peer retries.
    pub server_fallbacks: u64,
    /// Peer download attempts deferred because the serving peer was at
    /// its connection cap.
    pub busy_deferrals: u64,
    /// NAT traversal outcomes for peer connections.
    pub traversal: TraversalStats,
    /// Bytes uploaded to the server (all flows into the server host).
    pub bytes_via_server: f64,
}

/// Project-specific orchestration hooks (implemented by vmr-core).
#[allow(unused_variables)]
pub trait Policy {
    /// A work unit reached quorum. `agreeing` lists the clients whose
    /// outputs matched the canonical fingerprint (they hold the data).
    fn on_wu_validated(&mut self, eng: &mut Engine, wu: WuId, agreeing: &[ClientId]) {}
    /// A work unit exhausted its retry budget.
    fn on_wu_failed(&mut self, eng: &mut Engine, wu: WuId) {}
    /// The scheduler handed `rid` to `client` (task assignment — phase
    /// starts are timestamped from this hook).
    fn on_task_granted(&mut self, eng: &mut Engine, client: ClientId, rid: ResultId) {}
    /// A client finished *executing* a task (before upload/report).
    fn on_task_executed(&mut self, eng: &mut Engine, client: ClientId, rid: ResultId) {}
    /// The server accepted a report for `rid`.
    fn on_result_reported(&mut self, eng: &mut Engine, rid: ResultId) {}
    /// A custom event fired.
    fn on_custom(&mut self, eng: &mut Engine, tag: u64) {}
    /// Contribute extra named sections to a durability snapshot
    /// (vmr-core serializes its JobTracker here). Sections must be
    /// canonical: equal policy states must append equal bytes.
    fn durable_sections(&self, out: &mut Vec<(String, Vec<u8>)>) {}
}

/// A no-op policy: plain BOINC with no project hooks.
pub struct NullPolicy;
impl Policy for NullPolicy {}

/// Who carries relayed peer traffic when NAT traversal ends at the
/// relay tier (§III.D).
#[derive(Clone, Debug, Default)]
pub enum RelayChoice {
    /// The project server doubles as a TURN relay ("the server could
    /// work as a relay node, but that would require all map output to
    /// be sent back to the project servers").
    #[default]
    Server,
    /// Publicly reachable volunteers are promoted to supernodes and
    /// carry relay traffic ("creating a supernode-based P2P network").
    Supernodes(Vec<ClientId>),
}

/// The BOINC-like middleware simulation.
pub struct Engine {
    sim: Simulation<Ev>,
    net: AggregateNetwork,
    /// The project database (public: policies inspect it freely).
    pub db: Db,
    /// Configuration knobs.
    pub cfg: ProjectConfig,
    /// Fault-injection plan.
    pub fault: FaultPlan,
    /// NAT traversal policy for inter-client connections.
    pub traversal: TraversalPolicy,
    /// Observability bundle: metrics registry, event journal (the
    /// Fig. 4 source — rebuild lanes with `Timeline::from_journal`),
    /// profiling scopes. Shared with the network engine and the sim.
    pub obs: vmr_obs::Obs,
    /// Aggregate counters.
    pub stats: EngineStats,
    /// Credit / reliability ledger (BOINC's volunteer incentive).
    pub credit: crate::credit::CreditLedger,
    /// Assimilator: ordered sink of validated canonical results.
    pub assimilator: crate::assimilate::Assimilator,
    /// Relay-node selection for NAT-relayed transfers.
    pub relay: RelayChoice,
    /// Host reputation ledger driving adaptive replication. Observes
    /// validation outcomes only when `cfg.trust.enabled`; its WAL
    /// section is always part of snapshots (a pristine ledger encodes
    /// deterministically).
    pub trust: TrustLedger,
    server_host: HostId,
    clients: Vec<Client>,
    flows: HashMap<FlowId, FlowPurpose>,
    /// Pending NetWake event and the time it targets. The time is kept
    /// so re-arming at the same instant preserves the original event
    /// (and its queue tie-break rank) instead of cancel+reschedule —
    /// required for stepped/resumed runs to match continuous ones.
    net_wake: Option<(EventId, SimTime)>,
    feeder: crate::sched::Feeder,
    /// Worker pool for daemon passes, sized from `cfg.shard`.
    pool: crate::shard::WorkerPool,
    rng: RngStream,
    /// Dedicated stream for spot-check draws: it is consumed only for
    /// trusted hosts with trust enabled, so disabling trust leaves
    /// every other stream's draw sequence untouched (bit-identical
    /// baseline runs).
    trust_rng: RngStream,
    /// Per-client validation outcome tallies, kept even when the trust
    /// subsystem is disabled (satellite observability).
    host_outcomes: Vec<ValidationCounts>,
    dropouts_armed: bool,
    /// Compiled fault lookups, built from `fault` at run start.
    fidx: FaultIndex,
    /// Write-ahead log handle (disabled unless `attach_durable` ran).
    durable: Journal,
    eobs: EngineObs,
    /// Shuffle strategy object built from `cfg.shuffle` — owns the
    /// *decisions* of the transfer path (source pick, chunking, coded
    /// planning); all mechanics stay in this file so the Baseline
    /// strategy is bit-identical to the pre-strategy path.
    shuffle: Box<dyn ShuffleStrategy + Send + Sync>,
    /// Per-chunk sibling seeds of swarmed files.
    swarm_index: SwarmIndex,
    /// In-progress swarmed transfers, keyed (client, result, input).
    swarm: HashMap<(u32, u32, u32), SwarmTransfer>,
    /// Pre-resolved `shuffle.*` counters.
    fobs: FetchObs,
}

/// Pre-resolved metric handles for the scheduler hot paths. These
/// mirror the cumulative [`EngineStats`] fields into the shared
/// registry so one snapshot covers every crate; resolving them once at
/// construction keeps per-event cost to an atomic bump.
struct EngineObs {
    rpcs: vmr_obs::Counter,
    empty_replies: vmr_obs::Counter,
    grants: vmr_obs::Counter,
    reports: vmr_obs::Counter,
    peer_failures: vmr_obs::Counter,
    server_fallbacks: vmr_obs::Counter,
    busy_deferrals: vmr_obs::Counter,
    wu_validated: vmr_obs::Counter,
    wu_failed: vmr_obs::Counter,
    report_delay_s: vmr_obs::Histo,
    feeder_occupancy: vmr_obs::TimeGauge,
    transitioner_scope: vmr_obs::Scope,
    host_valid: vmr_obs::Counter,
    host_invalid: vmr_obs::Counter,
    host_error: vmr_obs::Counter,
    error_escapes: vmr_obs::Counter,
    trust_spot_checks: vmr_obs::Counter,
    trust_spot_check_failures: vmr_obs::Counter,
    trust_replication_saved: vmr_obs::Counter,
    trust_hosts_trusted: vmr_obs::TimeGauge,
}

impl EngineObs {
    fn attach(obs: &vmr_obs::Obs) -> Self {
        EngineObs {
            rpcs: obs.counter("vcore.rpcs"),
            empty_replies: obs.counter("vcore.empty_replies"),
            grants: obs.counter("vcore.grants"),
            reports: obs.counter("vcore.reports"),
            peer_failures: obs.counter("vcore.peer_failures"),
            server_fallbacks: obs.counter("vcore.server_fallbacks"),
            busy_deferrals: obs.counter("vcore.busy_deferrals"),
            wu_validated: obs.counter_labeled("vcore.wu_outcomes", &[("outcome", "validated")]),
            wu_failed: obs.counter_labeled("vcore.wu_outcomes", &[("outcome", "failed")]),
            report_delay_s: obs.histogram("vcore.report_delay_s"),
            feeder_occupancy: obs.time_gauge("vcore.feeder_occupancy"),
            transitioner_scope: obs.scope("vcore.transitioner_sweep"),
            host_valid: obs.counter_labeled("vcore.host_outcomes", &[("outcome", "valid")]),
            host_invalid: obs.counter_labeled("vcore.host_outcomes", &[("outcome", "invalid")]),
            host_error: obs.counter_labeled("vcore.host_outcomes", &[("outcome", "error")]),
            error_escapes: obs.counter("vcore.error_escapes"),
            trust_spot_checks: obs.counter("trust.spot_checks"),
            trust_spot_check_failures: obs.counter("trust.spot_check_failures"),
            trust_replication_saved: obs.counter("trust.replication_saved"),
            trust_hosts_trusted: obs.time_gauge("trust.hosts_trusted"),
        }
    }
}

impl Engine {
    /// Starts a fluent [`EngineBuilder`] — the single construction
    /// surface for engines: configuration, shard count, durability,
    /// synthetic populations and ad-hoc clients in one pass.
    pub fn builder(seed: u64) -> EngineBuilder {
        EngineBuilder::new(seed)
    }

    /// The engine's metric registry rendered in Prometheus exposition
    /// format — the same text the rtnet poll runtime serves on its
    /// `GET /metrics` endpoint, so simulated and real runs are scraped
    /// identically.
    pub fn metrics_text(&self) -> String {
        vmr_obs::render_prometheus(&self.obs.snapshot())
    }

    /// A one-shot human-readable dashboard of the engine's registry
    /// (counters, gauges, latency summaries).
    pub fn dashboard_text(&self) -> String {
        vmr_obs::render_dashboard(&self.obs.snapshot(), "vcore engine")
    }

    /// Builds an engine with a server host on `server_link`.
    #[deprecated(note = "use Engine::builder(seed).config(cfg).server_link(link).build()")]
    pub fn new(seed: u64, cfg: ProjectConfig, server_link: HostLink) -> Self {
        Engine::builder(seed)
            .config(cfg)
            .server_link(server_link)
            .build()
    }

    /// Convenience: an engine with a 100 Mbit server, like the testbed.
    #[deprecated(note = "use Engine::builder(seed).config(cfg).build()")]
    pub fn testbed(seed: u64, cfg: ProjectConfig) -> Self {
        Engine::builder(seed).config(cfg).build()
    }

    /// Assembles the engine over a fully built topology. The topology
    /// must be complete before the network engine is constructed (dense
    /// link indices embed the host count), which is exactly what the
    /// builder guarantees — [`Engine::add_client`] after the fact pays
    /// an O(hosts) network rebuild instead.
    fn from_parts(seed: u64, cfg: ProjectConfig, topo: Topology, server_host: HostId) -> Self {
        let mut sim = Simulation::new(seed);
        let rng = sim.fork_rng("engine");
        let trust_rng = sim.fork_rng("trust");
        let trust = TrustLedger::with_shards(cfg.trust.clone(), cfg.shard.n.max(1));
        let obs = vmr_obs::Obs::new();
        sim.attach_obs(&obs);
        let eobs = EngineObs::attach(&obs);
        let policy = cfg.scale_policy();
        let n_shards = cfg.shard.n.max(1);
        let pool = crate::shard::WorkerPool::from_config(&cfg.shard);
        let shuffle = cfg.shuffle.build();
        let fobs = FetchObs::attach(&obs);
        let mut eng = Engine {
            sim,
            net: AggregateNetwork::with_policy(topo, &obs, policy),
            db: Db::with_shards(n_shards),
            cfg,
            fault: FaultPlan::none(),
            traversal: TraversalPolicy::direct_only(),
            obs,
            stats: EngineStats::default(),
            credit: crate::credit::CreditLedger::with_shards(n_shards),
            assimilator: crate::assimilate::Assimilator::new(),
            relay: RelayChoice::default(),
            trust,
            server_host,
            clients: Vec::new(),
            flows: HashMap::new(),
            net_wake: None,
            feeder: crate::sched::Feeder::new(n_shards),
            pool,
            rng,
            trust_rng,
            host_outcomes: Vec::new(),
            dropouts_armed: false,
            fidx: FaultIndex::default(),
            durable: Journal::disabled(),
            eobs,
            shuffle,
            swarm_index: SwarmIndex::default(),
            swarm: HashMap::new(),
            fobs,
        };
        eng.sim.schedule_at(SimTime::ZERO, Ev::DaemonTick);
        eng
    }

    // ----- construction ---------------------------------------------------

    /// Adds a volunteer with the given profile and link. Returns its id.
    ///
    /// Prefer declaring clients on [`Engine::builder`]: adding one here
    /// rebuilds the network engine (topologies are sealed once routing
    /// starts), so an N-client loop costs O(N²).
    pub fn add_client(&mut self, profile: HostProfile, link: HostLink) -> ClientId {
        let host = self.net_add_host(link);
        self.push_client(profile, host)
    }

    /// Registers a client over an already-placed network host (the
    /// builder path: hosts go into the topology before the network
    /// engine exists, so no rebuild is needed).
    fn push_client(&mut self, profile: HostProfile, host: HostId) -> ClientId {
        let id = ClientId(self.clients.len() as u32);
        let rng = self.rng.fork(&format!("client-{}", id.0));
        let (bmin, bmax) = self.cfg.backoff_bounds();
        let mut c = Client {
            host,
            profile,
            rng,
            tasks: HashMap::new(),
            run_queue: VecDeque::new(),
            running: Vec::new(),
            ready_to_report: Vec::new(),
            backoff: Backoff::with_bounds(bmin, bmax),
            next_rpc_at: SimTime::ZERO,
            wake: None,
            served: HashMap::new(),
            serving_now: 0,
            dropped: false,
            suspended: false,
        };
        // Stagger initial contact to avoid a lockstep thundering herd.
        let stagger = SimDuration::from_secs_f64(c.rng.uniform_f64(0.0, 3.0));
        c.next_rpc_at = SimTime::ZERO + stagger;
        let ev = self.sim.schedule_at(c.next_rpc_at, Ev::ClientWake(id));
        c.wake = Some(ev);
        self.clients.push(c);
        self.host_outcomes.push(ValidationCounts::default());
        id
    }

    fn net_add_host(&mut self, link: HostLink) -> HostId {
        // The engine does not expose topology mutation; rebuild it.
        let mut topo = self.net.topology().clone();
        let id = topo.add_host(link);
        // Safe only before any flow exists (construction phase).
        assert_eq!(self.net.active_flows(), 0, "add clients before running");
        self.net = AggregateNetwork::with_policy(topo, &self.obs, self.cfg.scale_policy());
        id
    }

    /// Inserts a work unit; it becomes schedulable at the next daemon
    /// tick (feeder pass).
    pub fn insert_workunit(&mut self, spec: WorkUnitSpec) -> WuId {
        self.db.insert_workunit(spec, self.sim.now())
    }

    // ----- accessors -------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The server's network host id.
    pub fn server_host(&self) -> HostId {
        self.server_host
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// The network host of a client.
    pub fn client_host(&self, c: ClientId) -> HostId {
        self.clients[c.0 as usize].host
    }

    /// The profile of a client.
    pub fn client_profile(&self, c: ClientId) -> &HostProfile {
        &self.clients[c.0 as usize].profile
    }

    /// Has this client dropped out?
    pub fn client_dropped(&self, c: ClientId) -> bool {
        self.clients[c.0 as usize].dropped
    }

    /// Validation outcome tallies for a client. Maintained regardless
    /// of whether the trust subsystem is enabled, so operators can see
    /// the raw material a reputation system would consume.
    pub fn host_outcomes(&self, c: ClientId) -> ValidationCounts {
        self.host_outcomes[c.0 as usize]
    }

    /// Schedules a policy-defined event.
    pub fn schedule_custom(&mut self, delay: SimDuration, tag: u64) {
        self.sim.schedule_in(delay, Ev::Custom(tag));
    }

    /// Marks `name` as served by `client` for peers to download
    /// (BOINC-MR: a mapper starts serving its outputs after execution).
    pub fn register_served_file(
        &mut self,
        client: ClientId,
        name: impl Into<String>,
        bytes: u64,
        until: Option<SimTime>,
    ) {
        self.clients[client.0 as usize]
            .served
            .insert(name.into(), ServedFile { bytes, until });
    }

    /// Stops serving `name` from `client` (job finished). Sibling
    /// seeds of the file are dropped with it: once the job stops
    /// serving a map output, nobody swarms its chunks any more.
    pub fn unregister_served_file(&mut self, client: ClientId, name: &str) {
        self.clients[client.0 as usize].served.remove(name);
        self.swarm_index.drop_file(name);
    }

    /// Extends/reset the serving window of a file ("the map outputs'
    /// timeout is reset … and the file becomes available for upload").
    pub fn reset_serving_timeout(&mut self, client: ClientId, name: &str, until: Option<SimTime>) {
        if let Some(f) = self.clients[client.0 as usize].served.get_mut(name) {
            f.until = until;
        }
    }

    // ----- durability -------------------------------------------------------

    /// Attaches a write-ahead log: the engine owns the master handle
    /// and clones it into every journaled subsystem (project database,
    /// credit ledger, assimilator). Policies append through
    /// [`Engine::durable`]. Call before inserting work units so the
    /// genesis records land in the log.
    #[deprecated(note = "pass the journal to Engine::builder via .journal(j) or .durability(plan)")]
    pub fn attach_durable(&mut self, journal: Journal) {
        self.set_durable(journal);
    }

    /// [`Engine::attach_durable`] without the deprecation: the builder
    /// wires journals through here.
    fn set_durable(&mut self, journal: Journal) {
        journal.attach_obs(&self.obs);
        self.db.set_journal(journal.clone());
        self.credit.set_journal(journal.clone());
        self.assimilator.set_journal(journal.clone());
        self.trust.set_journal(journal.clone());
        self.durable = journal;
    }

    /// The engine's WAL handle (disabled unless `attach_durable` ran).
    pub fn durable(&self) -> &Journal {
        &self.durable
    }

    /// The shuffle strategy in effect — policies consult it for map
    /// placement and reduce-input fetch planning.
    pub fn shuffle_strategy(&self) -> &(dyn ShuffleStrategy + Send + Sync) {
        self.shuffle.as_ref()
    }

    /// Pre-resolved `shuffle.*` counters (policies account planned
    /// coded sends here; the engine accounts transfer bytes).
    pub fn shuffle_obs(&self) -> &FetchObs {
        &self.fobs
    }

    /// Canonical snapshot sections of the vcore-owned server state,
    /// plus whatever the policy contributes. Section order is fixed, so
    /// equal states produce byte-identical snapshots.
    fn snapshot_sections<P: Policy>(&self, policy: &P) -> Sections {
        Sections {
            entries: self.live_sections(policy),
        }
    }

    /// The vcore-owned snapshot sections (db, credit, assimilator) —
    /// the prefix [`Engine::live_sections`] emits before the policy and
    /// trust ledger add theirs.
    pub fn state_sections(&self) -> Vec<(String, Vec<u8>)> {
        use vmr_durable::section;
        vec![
            (section::NAMES[section::DB].into(), self.db.encode_state()),
            (
                section::NAMES[section::CREDIT].into(),
                self.credit.encode_state(),
            ),
            (
                section::NAMES[section::ASSIM].into(),
                self.assimilator.encode_state(),
            ),
        ]
    }

    /// Every snapshot section in canonical order: the vcore-owned
    /// trio, then whatever the policy contributes, then the trust
    /// ledger (always present — a pristine ledger still encodes its
    /// config deterministically). The recovery audit compares these
    /// against a recovered image byte-for-byte.
    pub fn live_sections<P: Policy>(&self, policy: &P) -> Vec<(String, Vec<u8>)> {
        use vmr_durable::section;
        let mut entries = self.state_sections();
        policy.durable_sections(&mut entries);
        entries.push((
            section::NAMES[section::TRUST].into(),
            self.trust.encode_state(),
        ));
        entries
    }

    // ----- main loop --------------------------------------------------------

    /// Runs until `stop` returns true, the event queue drains, or `horizon`
    /// passes. Returns the number of events processed.
    pub fn run_until<P: Policy>(
        &mut self,
        policy: &mut P,
        horizon: SimTime,
        mut stop: impl FnMut(&Engine) -> bool,
    ) -> u64 {
        let mut n = 0;
        self.arm_dropouts();
        self.arm_net_wake();
        // Construction-time records (WU inserts before the first run)
        // belong to a transaction of their own.
        self.durable.advance_to(self.sim.now().as_micros());
        self.durable.commit();
        loop {
            // A crashed journal models a dead server: stop consuming
            // events; whatever memory holds past this point is lost.
            if self.durable.crashed() {
                break;
            }
            if stop(self) {
                break;
            }
            if self.sim.peek_time().map(|t| t > horizon).unwrap_or(true) {
                break;
            }
            let ev = match self.sim.next_event() {
                Some(e) => e,
                None => break,
            };
            n += 1;
            self.dispatch(policy, ev.payload);
            // One dispatched event = one WAL transaction.
            self.durable.commit();
            self.arm_net_wake();
        }
        n
    }

    fn dispatch<P: Policy>(&mut self, policy: &mut P, ev: Ev) {
        self.durable.advance_to(self.sim.now().as_micros());
        match ev {
            Ev::NetWake => self.on_net_wake(policy),
            Ev::ClientWake(c) => self.client_rpc(policy, c),
            Ev::ExecDone(c, rid) => self.on_exec_done(policy, c, rid),
            Ev::DeadlineCheck(rid) => self.on_deadline(policy, rid),
            Ev::DaemonTick => self.on_daemon_tick(policy),
            Ev::PeerRetry(c, rid, idx) => self.start_input_download(c, rid, idx),
            Ev::Dropout(c) => self.on_dropout(c),
            Ev::Suspend(c) => self.on_suspend(c),
            Ev::Resume(c) => self.on_resume(c),
            Ev::Custom(tag) => policy.on_custom(self, tag),
        }
    }

    /// Schedules dropout events from the fault plan. Idempotent: runs
    /// once (dropouts are scheduled lazily at run start so callers can
    /// set `fault` after constructing the engine).
    fn arm_dropouts(&mut self) {
        if self.dropouts_armed {
            return;
        }
        // Rebuilt on every run entry (not behind the armed flag) so a
        // plan swapped between run segments is picked up, matching the
        // old scan-the-plan-live behavior.
        self.fidx = self.fault.index();
        if self.dropouts_armed {
            return;
        }
        self.dropouts_armed = true;
        for i in 0..self.clients.len() {
            let id = ClientId(i as u32);
            if let Some(after) = self.fidx.dropout_time(id) {
                self.sim.schedule_at(SimTime::ZERO + after, Ev::Dropout(id));
            }
            if let Some(av) = self.clients[i].profile.availability {
                let first_on = {
                    let c = &mut self.clients[i];
                    SimDuration::from_secs_f64(c.rng.exponential(av.on_mean_s))
                };
                self.sim.schedule_in(first_on, Ev::Suspend(id));
            }
        }
    }

    /// The owner takes the machine: pause execution and scheduler
    /// contact; in-flight transfers continue (BOINC keeps network
    /// activity in the background by default).
    fn on_suspend(&mut self, cid: ClientId) {
        let now = self.sim.now();
        if self.clients[cid.0 as usize].dropped || self.clients[cid.0 as usize].suspended {
            return;
        }
        self.clients[cid.0 as usize].suspended = true;
        let running: Vec<ResultId> = self.clients[cid.0 as usize].running.clone();
        for rid in running {
            if let Some(t) = self.clients[cid.0 as usize].tasks.get_mut(&rid) {
                if let (Some(ev), Some(started), Some(total)) =
                    (t.exec_ev.take(), t.exec_started, t.exec_remaining)
                {
                    self.sim.cancel(ev);
                    let done = now.saturating_since(started);
                    let left = total.saturating_sub(done);
                    // Restore into the slot the resume handler reads.
                    let t = self.clients[cid.0 as usize].tasks.get_mut(&rid).unwrap();
                    t.exec_remaining = Some(left);
                }
            }
        }
        if let Some(ev) = self.clients[cid.0 as usize].wake.take() {
            self.sim.cancel(ev);
        }
        let off = {
            let av = self.clients[cid.0 as usize].profile.availability.unwrap();
            let c = &mut self.clients[cid.0 as usize];
            SimDuration::from_secs_f64(c.rng.exponential(av.off_mean_s).max(1.0))
        };
        self.obs
            .journal
            .point(self.client_name(cid), "suspend", "", now.as_micros());
        self.sim.schedule_in(off, Ev::Resume(cid));
    }

    /// The machine is idle again: resume paused executions and resume
    /// polling the scheduler.
    fn on_resume(&mut self, cid: ClientId) {
        let now = self.sim.now();
        if self.clients[cid.0 as usize].dropped {
            return;
        }
        self.clients[cid.0 as usize].suspended = false;
        let running: Vec<ResultId> = self.clients[cid.0 as usize].running.clone();
        for rid in running {
            let left = self.clients[cid.0 as usize]
                .tasks
                .get(&rid)
                .and_then(|t| t.exec_remaining);
            if let Some(left) = left {
                let ev = self.sim.schedule_in(left, Ev::ExecDone(cid, rid));
                let t = self.clients[cid.0 as usize].tasks.get_mut(&rid).unwrap();
                t.exec_ev = Some(ev);
                t.exec_started = Some(now);
            }
        }
        self.obs
            .journal
            .point(self.client_name(cid), "resume", "", now.as_micros());
        let on = {
            let av = self.clients[cid.0 as usize].profile.availability.unwrap();
            let c = &mut self.clients[cid.0 as usize];
            SimDuration::from_secs_f64(c.rng.exponential(av.on_mean_s).max(1.0))
        };
        self.sim.schedule_in(on, Ev::Suspend(cid));
        self.clients[cid.0 as usize].next_rpc_at =
            now.max(self.clients[cid.0 as usize].next_rpc_at);
        self.maybe_contact_server(cid);
        self.try_start_tasks(cid);
    }

    fn arm_net_wake(&mut self) {
        let target = match self.net.next_event_time() {
            Some(t) if t < SimTime::MAX => Some(t.max(self.sim.now())),
            _ => None,
        };
        // Keep a pending wake aimed at the same instant: cancelling and
        // rescheduling would give it a fresh (younger) tie-break rank
        // among same-time events, so a run stepped in short run_until
        // segments could diverge from one continuous run.
        if let (Some((ev, armed_at)), Some(t)) = (self.net_wake, target) {
            if armed_at == t && self.sim.is_pending(ev) {
                return;
            }
        }
        if let Some((ev, _)) = self.net_wake.take() {
            self.sim.cancel(ev);
        }
        if let Some(t) = target {
            self.net_wake = Some((self.sim.schedule_at(t, Ev::NetWake), t));
        }
    }

    // ----- server daemons ---------------------------------------------------

    fn on_daemon_tick<P: Policy>(&mut self, policy: &mut P) {
        // Periodic snapshot (full or incremental — the journal picks
        // from its dirty bits), before the feeder refill so the
        // snapshot captures the same state replay would rebuild. A
        // `None` return means an incremental found nothing dirty and
        // was skipped entirely.
        if self.durable.snapshot_due() {
            let sections = self.snapshot_sections(policy);
            if let Some(bytes) = self.durable.write_snapshot(&sections) {
                let records = self.durable.records();
                self.obs
                    .journal
                    .record_with(self.sim.now().as_micros(), || EventKind::SnapshotTaken {
                        records,
                        bytes: bytes as u64,
                    });
            }
        }
        // Feeder refill: copy unsent results (FIFO) into the cache,
        // one id-ordered segment per shard (pool-parallel scan).
        self.feeder
            .refill(&self.db, self.cfg.feeder_slots, &self.pool);
        self.eobs
            .feeder_occupancy
            .set(self.sim.now().as_micros(), self.feeder.len() as f64);
        let period = SimDuration::from_secs_f64(self.cfg.server_daemon_period_s.max(0.1));
        self.sim.schedule_in(period, Ev::DaemonTick);
    }

    fn after_report_transition<P: Policy>(&mut self, policy: &mut P, wu: WuId) {
        let now = self.sim.now();
        let transition = {
            let _sweep = self.eobs.transitioner_scope.enter();
            transition_wu(&mut self.db, wu, now)
        };
        match transition {
            Transition::Validated {
                canonical,
                agreeing,
            } => {
                let clients: Vec<ClientId> = agreeing
                    .iter()
                    .filter_map(|&rid| self.db.result(rid).client)
                    .collect();
                // Credit: quorum members are granted; dissenting
                // successes are flagged.
                let dissenting: Vec<ClientId> = self
                    .db
                    .results_of(wu)
                    .iter()
                    .filter(|&&rid| {
                        let r = self.db.result(rid);
                        r.is_success() && r.fingerprint != Some(canonical)
                    })
                    .filter_map(|&rid| self.db.result(rid).client)
                    .collect();
                let flops = self.db.wu(wu).spec.flops;
                // Error escape: a wrong fingerprint became canonical
                // (colluders outvoted the honest hosts, or an
                // unreplicated result was wrong). Tracked always — the
                // fixed-quorum baseline rows need it too.
                if canonical != honest_fingerprint(&self.db.wu(wu).spec.name) {
                    self.eobs.error_escapes.inc();
                }
                // Per-host outcome tallies, kept even with trust off.
                for &c in &clients {
                    self.host_outcomes[c.0 as usize].valid += 1;
                    self.eobs.host_valid.inc();
                }
                for &c in &dissenting {
                    self.host_outcomes[c.0 as usize].invalid += 1;
                    self.eobs.host_invalid.inc();
                }
                if self.cfg.trust.enabled {
                    for &c in &dissenting {
                        // A trusted host caught dissenting is a failed
                        // spot-check: the whole point of keeping the
                        // occasional replicated WU for trusted hosts.
                        if self.trust.is_trusted(c.0) {
                            self.eobs.trust_spot_check_failures.inc();
                        }
                        self.trust.observe(c.0, TrustOutcome::Mismatch);
                    }
                    for &c in &clients {
                        self.trust.observe(c.0, TrustOutcome::Agree);
                    }
                    self.eobs
                        .trust_hosts_trusted
                        .set(now.as_micros(), self.trust.trusted_count() as f64);
                }
                // Credit: an unreplicated validation (trusted host,
                // quorum overridden to one) is granted pro-rata to the
                // host's reliability; full quorums grant as before.
                let unreplicated = self.db.wu(wu).effective_quorum() == 1 && clients.len() == 1;
                if self.cfg.trust.enabled && unreplicated {
                    let scale = self.trust.reliability(clients[0].0);
                    self.credit
                        .on_wu_validated_scaled(&clients, &dissenting, flops, scale);
                } else {
                    self.credit.on_wu_validated(&clients, &dissenting, flops);
                }
                self.assimilator.assimilate(crate::assimilate::Assimilated {
                    wu,
                    wu_name: self.db.wu(wu).spec.name.clone(),
                    app: self.db.wu(wu).spec.app.clone(),
                    canonical,
                    holders: clients.clone(),
                    at: now,
                });
                self.eobs.wu_validated.inc();
                self.obs
                    .journal
                    .record_with(now.as_micros(), || EventKind::WuTransition {
                        wu: wu.to_string(),
                        to: "validated".into(),
                    });
                self.obs
                    .journal
                    .point("server", "validated", wu.to_string(), now.as_micros());
                policy.on_wu_validated(self, wu, &clients);
            }
            Transition::Failed => {
                self.eobs.wu_failed.inc();
                self.obs
                    .journal
                    .record_with(now.as_micros(), || EventKind::WuTransition {
                        wu: wu.to_string(),
                        to: "failed".into(),
                    });
                self.obs
                    .journal
                    .point("server", "wu-failed", wu.to_string(), now.as_micros());
                policy.on_wu_failed(self, wu);
            }
            Transition::Retried { new_results } => {
                // New replicas become schedulable at the next feeder pass;
                // deadlines attach when they are sent.
                let _ = new_results;
            }
            Transition::None => {}
        }
    }

    // ----- client: scheduler RPC --------------------------------------------

    fn client_rpc<P: Policy>(&mut self, policy: &mut P, cid: ClientId) {
        let now = self.sim.now();
        {
            let c = &mut self.clients[cid.0 as usize];
            c.wake = None;
            if c.dropped || c.suspended {
                return;
            }
            if now < c.next_rpc_at {
                // Woken early (stale event); re-arm at the right time.
                let t = c.next_rpc_at;
                let ev = self.sim.schedule_at(t, Ev::ClientWake(cid));
                self.clients[cid.0 as usize].wake = Some(ev);
                return;
            }
        }
        self.stats.rpcs += 1;
        self.eobs.rpcs.inc();

        // 1. Deliver reports.
        let reports = std::mem::take(&mut self.clients[cid.0 as usize].ready_to_report);
        let mut reported_wus = Vec::new();
        for (rid, fp, errored) in reports {
            let outcome = if errored {
                ResultOutcome::Error
            } else {
                ResultOutcome::Success
            };
            if self.db.mark_reported(rid, outcome, fp, now) {
                self.stats.reports += 1;
                self.eobs.reports.inc();
                if errored {
                    self.credit.on_error(cid);
                    self.host_outcomes[cid.0 as usize].errors += 1;
                    self.eobs.host_error.inc();
                    if self.cfg.trust.enabled {
                        self.trust.observe(cid.0, TrustOutcome::Error);
                    }
                }
                // The §IV.B gap: upload finished at exec/upload time; the
                // server only *learns* of it now.
                if let Some(t) = self.clients[cid.0 as usize]
                    .tasks
                    .get(&rid)
                    .and_then(|t| t.exec_done_at)
                {
                    let delay_s = now.saturating_since(t).as_secs_f64();
                    self.stats.report_delay.record(delay_s);
                    self.eobs.report_delay_s.record(delay_s);
                }
                self.obs.journal.point(
                    self.client_name(cid),
                    "report",
                    rid.to_string(),
                    now.as_micros(),
                );
                reported_wus.push(self.db.result(rid).wu);
                policy.on_result_reported(self, rid);
            }
            self.clients[cid.0 as usize].tasks.remove(&rid);
        }
        for wu in reported_wus {
            self.after_report_transition(policy, wu);
        }

        // 2. Work request.
        let live = self.clients[cid.0 as usize].tasks.len() as u32;
        let mut slots_wanted = self.cfg.client_buffer_slots.saturating_sub(live);
        // Quarantine: unreliable hosts get no work (BOINC-style host
        // punishment driven by the validation ledger).
        if let Some(limit) = self.cfg.max_host_error_rate {
            if self.credit.account(cid).error_rate() > limit {
                slots_wanted = 0;
            }
        }
        let mut got_work = false;
        let mut n_granted = 0u32;
        if slots_wanted > 0 {
            let req = WorkRequest {
                client: cid,
                slots_wanted,
            };
            let picked = if self.cfg.locality_scheduling {
                // Prefer results whose inputs this client already serves
                // (it can read them from local disk instead of the
                // network). Stable sort keeps FIFO order within ties.
                let served = &self.clients[cid.0 as usize].served;
                let mut scored: Vec<(usize, ResultId)> = self
                    .feeder
                    .candidates()
                    .map(|rid| {
                        let score = self
                            .db
                            .inputs_of(rid)
                            .iter()
                            .filter(|f| served.contains_key(&f.name))
                            .count();
                        (score, rid)
                    })
                    .collect();
                scored.sort_by_key(|&(score, rid)| (std::cmp::Reverse(score), rid));
                pick_results(
                    &self.db,
                    scored.into_iter().map(|(_, rid)| rid),
                    req,
                    self.cfg.max_results_per_rpc,
                )
            } else {
                // The merged candidate stream is lazy: the grant fills
                // after a handful of results, so the feeder shards past
                // the cut-off are never scanned.
                pick_results(
                    &self.db,
                    self.feeder.candidates(),
                    req,
                    self.cfg.max_results_per_rpc,
                )
            };
            got_work = !picked.is_empty();
            n_granted = picked.len() as u32;
            for rid in picked {
                self.feeder.remove(rid);
                let deadline = now + self.db.wu(self.db.result(rid).wu).spec.delay_bound;
                self.db.mark_sent(rid, cid, now, deadline);
                self.stats.grants += 1;
                self.eobs.grants.inc();
                self.sim.schedule_at(deadline, Ev::DeadlineCheck(rid));
                self.adapt_replication(cid, rid);
                self.grant_task(cid, rid);
                policy.on_task_granted(self, cid, rid);
            }
        }

        let asked_and_empty = slots_wanted > 0 && !got_work;
        self.obs
            .journal
            .record_with(now.as_micros(), || EventKind::RpcServed {
                client: cid.0,
                granted: n_granted,
                empty: asked_and_empty,
            });

        // 3. Backoff bookkeeping.
        if slots_wanted > 0 && !got_work {
            self.stats.empty_replies += 1;
            self.eobs.empty_replies.inc();
            let delay = {
                let c = &mut self.clients[cid.0 as usize];
                let d = c.backoff.on_empty_reply(&mut c.rng);
                c.next_rpc_at = now + d;
                d
            };
            self.obs
                .journal
                .record_with(now.as_micros(), || EventKind::BackoffArmed {
                    client: cid.0,
                    delay_us: delay.as_micros(),
                });
            // A fully idle client re-polls at backoff expiry; a busy one
            // will naturally wake on task completion (and must still
            // respect next_rpc_at).
            self.schedule_rpc_wake(cid);
        } else if got_work {
            let c = &mut self.clients[cid.0 as usize];
            c.backoff.on_work_received();
            c.next_rpc_at = now;
        }
    }

    /// Adaptive replication: re-evaluates a WU's replication level at
    /// the moment a replica is handed to `cid` (the one point where the
    /// scheduler knows both the WU and the host).
    ///
    /// * Granting to an **untrusted** host always restores the spec
    ///   quorum, so a relaxed quorum can never be inherited by a retry
    ///   landing on an unknown host.
    /// * Granting the WU's **first live attempt** to a trusted host
    ///   drops the quorum to one and cancels the spare replicas —
    ///   unless a randomized spot-check keeps full replication to keep
    ///   trusted hosts honest.
    ///
    /// No-op (and no rng draws) when `cfg.trust.enabled` is false.
    fn adapt_replication(&mut self, cid: ClientId, rid: ResultId) {
        if !self.cfg.trust.enabled {
            return;
        }
        let wu = self.db.result(rid).wu;
        if !self.trust.is_trusted(cid.0) {
            // `set_quorum_override` is a no-op (no WAL record) when the
            // override is already clear.
            self.db.set_quorum_override(wu, None);
            return;
        }
        // Only the WU's first live attempt is eligible for relaxation:
        // every sibling replica must still be unsent (no reports,
        // retries or in-flight copies a quorum change could strand).
        let eligible = self
            .db
            .results_of(wu)
            .iter()
            .all(|&r| r == rid || self.db.result(r).state == ResultState::Unsent);
        if !eligible {
            return;
        }
        let decision = {
            let policy = ReplicationPolicy::new(self.cfg.trust.clone());
            let rng = &mut self.trust_rng;
            policy.decide(true, |p| rng.chance(p))
        };
        match decision {
            ReplicationDecision::Single => {
                let spares: Vec<ResultId> = self
                    .db
                    .results_of(wu)
                    .iter()
                    .copied()
                    .filter(|&r| r != rid)
                    .collect();
                for r in spares {
                    if self.db.cancel_unsent(r) {
                        self.feeder.remove(r);
                        self.eobs.trust_replication_saved.inc();
                    }
                }
                self.db.set_quorum_override(wu, Some(1));
            }
            ReplicationDecision::SpotCheck => {
                self.trust.record_spot_check(cid.0);
                self.eobs.trust_spot_checks.inc();
                self.db.set_quorum_override(wu, None);
            }
            ReplicationDecision::Full => {
                self.db.set_quorum_override(wu, None);
            }
        }
    }

    /// Schedules (or keeps) a ClientWake at `max(now, next_rpc_at)`.
    fn schedule_rpc_wake(&mut self, cid: ClientId) {
        let now = self.sim.now();
        let t = self.clients[cid.0 as usize].next_rpc_at.max(now);
        if let Some(ev) = self.clients[cid.0 as usize].wake {
            if self.sim.is_pending(ev) {
                // Keep the earlier of the two.
                self.sim.cancel(ev);
            }
        }
        let ev = self.sim.schedule_at(t, Ev::ClientWake(cid));
        self.clients[cid.0 as usize].wake = Some(ev);
    }

    /// A client state change that may warrant contacting the server:
    /// reports pending or free slots. Respects the backoff gate.
    fn maybe_contact_server(&mut self, cid: ClientId) {
        let c = &self.clients[cid.0 as usize];
        if c.dropped {
            return;
        }
        let wants =
            !c.ready_to_report.is_empty() || (c.tasks.len() as u32) < self.cfg.client_buffer_slots;
        if wants {
            self.schedule_rpc_wake(cid);
        }
    }

    // ----- client: task lifecycle --------------------------------------------

    fn grant_task(&mut self, cid: ClientId, rid: ResultId) {
        let now = self.sim.now();
        let inputs = self.db.inputs_of(rid).to_vec();
        let progress = TaskProgress {
            state: if inputs.is_empty() {
                TaskState::Queued
            } else {
                TaskState::Downloading
            },
            downloads_pending: inputs.len(),
            attempts: vec![0; inputs.len()],
            assigned_at: now,
            dl_done_at: None,
            exec_done_at: None,
            exec_ev: None,
            exec_started: None,
            exec_remaining: None,
            fingerprint: None,
            errored: false,
        };
        self.clients[cid.0 as usize].tasks.insert(rid, progress);
        if inputs.is_empty() {
            self.clients[cid.0 as usize].run_queue.push_back(rid);
            self.try_start_tasks(cid);
        } else {
            for idx in 0..inputs.len() {
                self.start_input_download(cid, rid, idx);
            }
        }
    }

    /// Starts (or retries) the download of one input file.
    fn start_input_download(&mut self, cid: ClientId, rid: ResultId, idx: usize) {
        let now = self.sim.now();
        if self.clients[cid.0 as usize].dropped {
            return;
        }
        if !self.clients[cid.0 as usize].tasks.contains_key(&rid) {
            return; // task gone (deadline hit, etc.)
        }
        let file = self.db.inputs_of(rid)[idx].clone();
        match &file.source {
            FileSource::DataServer => {
                let spec = FlowSpec {
                    src: self.server_host,
                    dst: self.clients[cid.0 as usize].host,
                    via: vec![],
                    bytes: file.bytes,
                    setup_s: self.cfg.rpc_overhead_s,
                    priority: Priority::Foreground,
                    rate_cap: None,
                };
                let fid = self.net.start_flow(now, spec);
                self.flows.insert(
                    fid,
                    FlowPurpose::InputDownload {
                        client: cid,
                        rid,
                        input_idx: idx,
                        from_peer: None,
                        chunk: None,
                        fallback: false,
                        sibling: false,
                    },
                );
            }
            FileSource::Peers(peers) => match self.shuffle.kind() {
                StrategyKind::Legacy => {
                    self.legacy_peer_download(cid, rid, idx, &file.name, file.bytes, peers.clone());
                }
                StrategyKind::Swarm => {
                    self.swarm_pump(cid, rid, idx, &file.name, file.bytes, peers.clone());
                }
                StrategyKind::Baseline | StrategyKind::Coded => {
                    self.start_peer_download(cid, rid, idx, &file.name, file.bytes, peers.clone());
                }
            },
        }
    }

    /// Whole-file pull from one source per attempt, the source chosen
    /// by the shuffle strategy ([`vmr_shuffle::Baseline`] reproduces
    /// the legacy rotation; Coded follows its planned order). All
    /// mechanics — fallback budget, local read, serving caps, fault
    /// and NAT draws — are the legacy path's, in the legacy order.
    fn start_peer_download(
        &mut self,
        cid: ClientId,
        rid: ResultId,
        idx: usize,
        name: &str,
        bytes: u64,
        peers: Vec<ClientId>,
    ) {
        let now = self.sim.now();
        let attempts = self.clients[cid.0 as usize].tasks[&rid].attempts[idx];

        // Fall back to the data server after the retry budget
        // ("after n failed attempts, the user resorts to downloading the
        // file from the server").
        if peers.is_empty() || attempts >= self.cfg.peer_retry_limit {
            self.stats.server_fallbacks += 1;
            self.eobs.server_fallbacks.inc();
            self.obs
                .journal
                .record_with(now.as_micros(), || EventKind::PeerFallback {
                    client: cid.0,
                    file: name.to_string(),
                });
            let spec = FlowSpec {
                src: self.server_host,
                dst: self.clients[cid.0 as usize].host,
                via: vec![],
                bytes,
                setup_s: self.cfg.rpc_overhead_s,
                priority: Priority::Foreground,
                rate_cap: None,
            };
            let fid = self.net.start_flow(now, spec);
            self.flows.insert(
                fid,
                FlowPurpose::InputDownload {
                    client: cid,
                    rid,
                    input_idx: idx,
                    from_peer: None,
                    chunk: None,
                    fallback: true,
                    sibling: false,
                },
            );
            return;
        }

        // A reducer that is itself a holder of the file reads it from
        // local disk — no transfer at all.
        if peers.contains(&cid)
            && self.clients[cid.0 as usize]
                .served
                .get(name)
                .map(|f| f.until.map(|u| now <= u).unwrap_or(true))
                .unwrap_or(false)
        {
            let host = self.clients[cid.0 as usize].host;
            let fid = self.net.start_flow(now, FlowSpec::simple(host, host, 0));
            self.flows.insert(
                fid,
                FlowPurpose::InputDownload {
                    client: cid,
                    rid,
                    input_idx: idx,
                    from_peer: Some(cid),
                    chunk: None,
                    fallback: false,
                    sibling: false,
                },
            );
            self.clients[cid.0 as usize].serving_now += 1;
            return;
        }

        // The strategy picks the source for this attempt.
        let peer = peers[self.shuffle.pick_source(peers.len(), attempts, cid.0)];
        let bump_and_retry = |eng: &mut Engine, delay: f64| {
            if let Some(t) = eng.clients[cid.0 as usize].tasks.get_mut(&rid) {
                t.attempts[idx] += 1;
            }
            eng.sim.schedule_in(
                SimDuration::from_secs_f64(delay),
                Ev::PeerRetry(cid, rid, idx),
            );
        };

        // Peer alive and still serving the file?
        let (peer_ok, window_expired) = {
            let p = &self.clients[peer.0 as usize];
            let window = p.served.get(name).map(|f| f.until);
            let ok = !p.dropped
                && window
                    .map(|until| until.map(|u| now <= u).unwrap_or(true))
                    .unwrap_or(false);
            let expired = !p.dropped
                && window
                    .map(|until| until.map(|u| now > u).unwrap_or(false))
                    .unwrap_or(false);
            (ok, expired)
        };
        if !peer_ok {
            self.stats.peer_failures += 1;
            self.eobs.peer_failures.inc();
            if window_expired {
                self.obs
                    .journal
                    .record_with(now.as_micros(), || EventKind::ServingExpiry {
                        client: peer.0,
                        file: name.to_string(),
                    });
            }
            bump_and_retry(self, self.cfg.peer_retry_delay_s);
            return;
        }
        // Serving-connection threshold on the mapper side.
        if self.clients[peer.0 as usize].serving_now >= self.cfg.max_serving_connections {
            self.stats.busy_deferrals += 1;
            self.eobs.busy_deferrals.inc();
            // Busy is not a failure — retry without consuming budget.
            self.sim.schedule_in(
                SimDuration::from_secs_f64(self.cfg.serving_busy_retry_s),
                Ev::PeerRetry(cid, rid, idx),
            );
            return;
        }
        // Transient transfer fault?
        let fails = {
            let c = &mut self.clients[cid.0 as usize];
            self.fault.peer_attempt_fails(&mut c.rng)
        };
        if fails {
            self.stats.peer_failures += 1;
            self.eobs.peer_failures.inc();
            bump_and_retry(self, self.cfg.peer_retry_delay_s);
            return;
        }
        // NAT traversal.
        let (req_nat, srv_nat) = (
            self.clients[cid.0 as usize].profile.nat,
            self.clients[peer.0 as usize].profile.nat,
        );
        let outcome = {
            let c = &mut self.clients[cid.0 as usize];
            connect(req_nat, srv_nat, &self.traversal, &mut c.rng)
        };
        self.stats.traversal.record(outcome);
        let outcome = match outcome {
            Some(o) => o,
            None => {
                self.stats.peer_failures += 1;
                self.eobs.peer_failures.inc();
                bump_and_retry(self, self.cfg.peer_retry_delay_s);
                return;
            }
        };
        let via = if outcome.path == Path::Relay {
            vec![self.pick_relay_host(cid)]
        } else {
            vec![]
        };
        let spec = FlowSpec {
            src: self.clients[peer.0 as usize].host,
            dst: self.clients[cid.0 as usize].host,
            via,
            bytes,
            setup_s: outcome.setup_s,
            priority: Priority::Foreground,
            rate_cap: None,
        };
        let fid = self.net.start_flow(now, spec);
        self.clients[peer.0 as usize].serving_now += 1;
        self.flows.insert(
            fid,
            FlowPurpose::InputDownload {
                client: cid,
                rid,
                input_idx: idx,
                from_peer: Some(peer),
                chunk: None,
                fallback: false,
                sibling: false,
            },
        );
    }

    /// The pre-strategy transfer path, preserved verbatim as an
    /// executable spec: differential tests (and the `SHUFFLE_SMOKE`
    /// byte-diff) run it via [`StrategyKind::Legacy`] to prove the
    /// strategy-driven path above is bit-identical under the default
    /// `Baseline` strategy. Do not "improve" this function — its value
    /// is being exactly the code the Baseline extraction started from.
    fn legacy_peer_download(
        &mut self,
        cid: ClientId,
        rid: ResultId,
        idx: usize,
        name: &str,
        bytes: u64,
        peers: Vec<ClientId>,
    ) {
        let now = self.sim.now();
        let attempts = self.clients[cid.0 as usize].tasks[&rid].attempts[idx];

        // Fall back to the data server after the retry budget
        // ("after n failed attempts, the user resorts to downloading the
        // file from the server").
        if peers.is_empty() || attempts >= self.cfg.peer_retry_limit {
            self.stats.server_fallbacks += 1;
            self.eobs.server_fallbacks.inc();
            self.obs
                .journal
                .record_with(now.as_micros(), || EventKind::PeerFallback {
                    client: cid.0,
                    file: name.to_string(),
                });
            let spec = FlowSpec {
                src: self.server_host,
                dst: self.clients[cid.0 as usize].host,
                via: vec![],
                bytes,
                setup_s: self.cfg.rpc_overhead_s,
                priority: Priority::Foreground,
                rate_cap: None,
            };
            let fid = self.net.start_flow(now, spec);
            self.flows.insert(
                fid,
                FlowPurpose::InputDownload {
                    client: cid,
                    rid,
                    input_idx: idx,
                    from_peer: None,
                    chunk: None,
                    fallback: true,
                    sibling: false,
                },
            );
            return;
        }

        // A reducer that is itself a holder of the file reads it from
        // local disk — no transfer at all.
        if peers.contains(&cid)
            && self.clients[cid.0 as usize]
                .served
                .get(name)
                .map(|f| f.until.map(|u| now <= u).unwrap_or(true))
                .unwrap_or(false)
        {
            let host = self.clients[cid.0 as usize].host;
            let fid = self.net.start_flow(now, FlowSpec::simple(host, host, 0));
            self.flows.insert(
                fid,
                FlowPurpose::InputDownload {
                    client: cid,
                    rid,
                    input_idx: idx,
                    from_peer: Some(cid),
                    chunk: None,
                    fallback: false,
                    sibling: false,
                },
            );
            self.clients[cid.0 as usize].serving_now += 1;
            return;
        }

        // Round-robin over holders, offset per client to spread load.
        let peer = peers[(attempts as usize + cid.0 as usize) % peers.len()];
        let bump_and_retry = |eng: &mut Engine, delay: f64| {
            if let Some(t) = eng.clients[cid.0 as usize].tasks.get_mut(&rid) {
                t.attempts[idx] += 1;
            }
            eng.sim.schedule_in(
                SimDuration::from_secs_f64(delay),
                Ev::PeerRetry(cid, rid, idx),
            );
        };

        // Peer alive and still serving the file?
        let (peer_ok, window_expired) = {
            let p = &self.clients[peer.0 as usize];
            let window = p.served.get(name).map(|f| f.until);
            let ok = !p.dropped
                && window
                    .map(|until| until.map(|u| now <= u).unwrap_or(true))
                    .unwrap_or(false);
            let expired = !p.dropped
                && window
                    .map(|until| until.map(|u| now > u).unwrap_or(false))
                    .unwrap_or(false);
            (ok, expired)
        };
        if !peer_ok {
            self.stats.peer_failures += 1;
            self.eobs.peer_failures.inc();
            if window_expired {
                self.obs
                    .journal
                    .record_with(now.as_micros(), || EventKind::ServingExpiry {
                        client: peer.0,
                        file: name.to_string(),
                    });
            }
            bump_and_retry(self, self.cfg.peer_retry_delay_s);
            return;
        }
        // Serving-connection threshold on the mapper side.
        if self.clients[peer.0 as usize].serving_now >= self.cfg.max_serving_connections {
            self.stats.busy_deferrals += 1;
            self.eobs.busy_deferrals.inc();
            // Busy is not a failure — retry without consuming budget.
            self.sim.schedule_in(
                SimDuration::from_secs_f64(self.cfg.serving_busy_retry_s),
                Ev::PeerRetry(cid, rid, idx),
            );
            return;
        }
        // Transient transfer fault?
        let fails = {
            let c = &mut self.clients[cid.0 as usize];
            self.fault.peer_attempt_fails(&mut c.rng)
        };
        if fails {
            self.stats.peer_failures += 1;
            self.eobs.peer_failures.inc();
            bump_and_retry(self, self.cfg.peer_retry_delay_s);
            return;
        }
        // NAT traversal.
        let (req_nat, srv_nat) = (
            self.clients[cid.0 as usize].profile.nat,
            self.clients[peer.0 as usize].profile.nat,
        );
        let outcome = {
            let c = &mut self.clients[cid.0 as usize];
            connect(req_nat, srv_nat, &self.traversal, &mut c.rng)
        };
        self.stats.traversal.record(outcome);
        let outcome = match outcome {
            Some(o) => o,
            None => {
                self.stats.peer_failures += 1;
                self.eobs.peer_failures.inc();
                bump_and_retry(self, self.cfg.peer_retry_delay_s);
                return;
            }
        };
        let via = if outcome.path == Path::Relay {
            vec![self.pick_relay_host(cid)]
        } else {
            vec![]
        };
        let spec = FlowSpec {
            src: self.clients[peer.0 as usize].host,
            dst: self.clients[cid.0 as usize].host,
            via,
            bytes,
            setup_s: outcome.setup_s,
            priority: Priority::Foreground,
            rate_cap: None,
        };
        let fid = self.net.start_flow(now, spec);
        self.clients[peer.0 as usize].serving_now += 1;
        self.flows.insert(
            fid,
            FlowPurpose::InputDownload {
                client: cid,
                rid,
                input_idx: idx,
                from_peer: Some(peer),
                chunk: None,
                fallback: false,
                sibling: false,
            },
        );
    }

    /// Swarm transfer driver: splits the input into fixed-size chunks
    /// and keeps up to `shuffle.max_parallel_chunks` chunk flows in
    /// flight, rarest-first, pulling from sibling seeds (reducers that
    /// already completed a chunk) and validated holders under
    /// per-source concurrency caps. A chunk whose retry budget is
    /// exhausted is seeded by the server — the seeder of last resort.
    /// Re-entered on every chunk completion and `PeerRetry` event.
    fn swarm_pump(
        &mut self,
        cid: ClientId,
        rid: ResultId,
        idx: usize,
        name: &str,
        bytes: u64,
        peers: Vec<ClientId>,
    ) {
        let now = self.sim.now();
        let key = (cid.0, rid.0, idx as u32);
        {
            let t = &self.clients[cid.0 as usize].tasks[&rid];
            if t.state != TaskState::Downloading {
                return; // stale retry after the task became ready
            }
        }
        if !self.swarm.contains_key(&key) {
            let plan = self
                .shuffle
                .chunking(bytes)
                .unwrap_or_else(|| vmr_shuffle::ChunkPlan::new(bytes, bytes.max(1)));
            let holders: Vec<u32> = peers.iter().map(|p| p.0).collect();
            self.swarm
                .insert(key, SwarmTransfer::new(name.to_string(), holders, plan));
        }
        let max_parallel = self.cfg.shuffle.max_parallel_chunks;
        let per_source_cap = self.cfg.shuffle.per_source_chunks;
        let retry_limit = self.cfg.shuffle.chunk_retry_limit;
        loop {
            // Rarest-first pick of the next chunk under the global cap.
            let (chunk, chunk_len, attempts, sources) = {
                let t = &self.swarm[&key];
                if t.remaining() == 0 || t.inflight() >= max_parallel {
                    return;
                }
                let Some(c) = t.choose_chunk(&self.swarm_index) else {
                    return; // every remaining chunk is already in flight
                };
                (
                    c,
                    t.plan.chunk_len(c),
                    t.attempts(c),
                    t.sources_for(c, &self.swarm_index, cid.0),
                )
            };

            // Retry budget exhausted (or nobody holds the file): the
            // server seeds this chunk.
            if sources.is_empty() || attempts >= retry_limit {
                self.stats.server_fallbacks += 1;
                self.eobs.server_fallbacks.inc();
                self.obs
                    .journal
                    .record_with(now.as_micros(), || EventKind::PeerFallback {
                        client: cid.0,
                        file: name.to_string(),
                    });
                let spec = FlowSpec {
                    src: self.server_host,
                    dst: self.clients[cid.0 as usize].host,
                    via: vec![],
                    bytes: chunk_len,
                    setup_s: self.cfg.rpc_overhead_s,
                    priority: Priority::Foreground,
                    rate_cap: None,
                };
                let fid = self.net.start_flow(now, spec);
                self.flows.insert(
                    fid,
                    FlowPurpose::InputDownload {
                        client: cid,
                        rid,
                        input_idx: idx,
                        from_peer: None,
                        chunk: Some(chunk),
                        fallback: true,
                        sibling: false,
                    },
                );
                self.swarm.get_mut(&key).unwrap().start(chunk, SERVER_SEED);
                continue;
            }

            // Walk the candidates in preference order (siblings first);
            // remember whether anyone was merely busy — busy sources
            // defer for free, dead/expired ones consume retry budget.
            let mut pick: Option<SwarmSource> = None;
            let mut any_busy = false;
            for s in sources {
                let scid = s.cid();
                if scid == cid.0 {
                    // Self-holder: local read while the window is live.
                    let live = self.clients[cid.0 as usize]
                        .served
                        .get(name)
                        .map(|f| f.until.map(|u| now <= u).unwrap_or(true))
                        .unwrap_or(false);
                    if live {
                        pick = Some(s);
                        break;
                    }
                    continue;
                }
                let p = &self.clients[scid as usize];
                if p.dropped {
                    continue;
                }
                // Holders must be inside their serving window; sibling
                // seeds keep chunks for the life of the job.
                if matches!(s, SwarmSource::Holder(_)) {
                    let live = p
                        .served
                        .get(name)
                        .map(|f| f.until.map(|u| now <= u).unwrap_or(true))
                        .unwrap_or(false);
                    if !live {
                        continue;
                    }
                }
                if p.serving_now >= self.cfg.max_serving_connections
                    || !self.swarm[&key].source_has_room(scid, per_source_cap)
                {
                    any_busy = true;
                    continue;
                }
                pick = Some(s);
                break;
            }

            let Some(src) = pick else {
                if any_busy {
                    self.stats.busy_deferrals += 1;
                    self.eobs.busy_deferrals.inc();
                    self.sim.schedule_in(
                        SimDuration::from_secs_f64(self.cfg.serving_busy_retry_s),
                        Ev::PeerRetry(cid, rid, idx),
                    );
                } else {
                    self.stats.peer_failures += 1;
                    self.eobs.peer_failures.inc();
                    self.swarm.get_mut(&key).unwrap().bump_attempt(chunk);
                    self.sim.schedule_in(
                        SimDuration::from_secs_f64(self.cfg.peer_retry_delay_s),
                        Ev::PeerRetry(cid, rid, idx),
                    );
                }
                return;
            };

            let scid = src.cid();
            // Self-holder local read: a zero-byte loopback flow.
            if scid == cid.0 {
                let host = self.clients[cid.0 as usize].host;
                let fid = self.net.start_flow(now, FlowSpec::simple(host, host, 0));
                self.flows.insert(
                    fid,
                    FlowPurpose::InputDownload {
                        client: cid,
                        rid,
                        input_idx: idx,
                        from_peer: Some(cid),
                        chunk: Some(chunk),
                        fallback: false,
                        sibling: false,
                    },
                );
                self.clients[cid.0 as usize].serving_now += 1;
                self.swarm.get_mut(&key).unwrap().start(chunk, scid);
                continue;
            }
            // Transient transfer fault?
            let fails = {
                let c = &mut self.clients[cid.0 as usize];
                self.fault.peer_attempt_fails(&mut c.rng)
            };
            if fails {
                self.stats.peer_failures += 1;
                self.eobs.peer_failures.inc();
                self.swarm.get_mut(&key).unwrap().bump_attempt(chunk);
                self.sim.schedule_in(
                    SimDuration::from_secs_f64(self.cfg.peer_retry_delay_s),
                    Ev::PeerRetry(cid, rid, idx),
                );
                return;
            }
            // NAT traversal.
            let (req_nat, srv_nat) = (
                self.clients[cid.0 as usize].profile.nat,
                self.clients[scid as usize].profile.nat,
            );
            let outcome = {
                let c = &mut self.clients[cid.0 as usize];
                connect(req_nat, srv_nat, &self.traversal, &mut c.rng)
            };
            self.stats.traversal.record(outcome);
            let Some(outcome) = outcome else {
                self.stats.peer_failures += 1;
                self.eobs.peer_failures.inc();
                self.swarm.get_mut(&key).unwrap().bump_attempt(chunk);
                self.sim.schedule_in(
                    SimDuration::from_secs_f64(self.cfg.peer_retry_delay_s),
                    Ev::PeerRetry(cid, rid, idx),
                );
                return;
            };
            let via = if outcome.path == Path::Relay {
                vec![self.pick_relay_host(cid)]
            } else {
                vec![]
            };
            let spec = FlowSpec {
                src: self.clients[scid as usize].host,
                dst: self.clients[cid.0 as usize].host,
                via,
                bytes: chunk_len,
                setup_s: outcome.setup_s,
                priority: Priority::Foreground,
                rate_cap: None,
            };
            let fid = self.net.start_flow(now, spec);
            self.clients[scid as usize].serving_now += 1;
            self.flows.insert(
                fid,
                FlowPurpose::InputDownload {
                    client: cid,
                    rid,
                    input_idx: idx,
                    from_peer: Some(ClientId(scid)),
                    chunk: Some(chunk),
                    fallback: false,
                    sibling: matches!(src, SwarmSource::Sibling(_)),
                },
            );
            self.swarm.get_mut(&key).unwrap().start(chunk, scid);
        }
    }

    /// Chooses the relay host for a NAT-relayed transfer.
    fn pick_relay_host(&mut self, cid: ClientId) -> HostId {
        match &self.relay {
            RelayChoice::Server => self.server_host,
            RelayChoice::Supernodes(nodes) => {
                let alive: Vec<HostId> = nodes
                    .iter()
                    .filter(|n| !self.clients[n.0 as usize].dropped)
                    .map(|n| self.clients[n.0 as usize].host)
                    .collect();
                if alive.is_empty() {
                    self.server_host
                } else {
                    let idx = {
                        let c = &mut self.clients[cid.0 as usize];
                        c.rng.pick(alive.len())
                    };
                    alive[idx]
                }
            }
        }
    }

    fn on_net_wake<P: Policy>(&mut self, policy: &mut P) {
        let now = self.sim.now();
        let completions = self.net.advance(now);
        for comp in completions {
            let Some(purpose) = self.flows.remove(&comp.id) else {
                continue;
            };
            match purpose {
                FlowPurpose::InputDownload {
                    client,
                    rid,
                    input_idx,
                    from_peer,
                    chunk,
                    fallback,
                    sibling,
                } => {
                    if let Some(peer) = from_peer {
                        let p = &mut self.clients[peer.0 as usize];
                        p.serving_now = p.serving_now.saturating_sub(1);
                    } else {
                        self.stats.bytes_via_server += comp.spec.bytes as f64;
                    }
                    // Shuffle byte accounting (obs only): peer-sourced
                    // transfers and post-failure server fallbacks.
                    if fallback {
                        self.fobs.bytes_server_fallback.add(comp.spec.bytes);
                    } else if from_peer.is_some() {
                        self.fobs.bytes_p2p.add(comp.spec.bytes);
                        // Every peer-sourced chunk counts as swarmed —
                        // sibling seeds and validated holders alike.
                        debug_assert!(!sibling || chunk.is_some());
                        if chunk.is_some() {
                            self.fobs.chunks_swarmed.inc();
                        }
                    }
                    if self.clients[client.0 as usize].dropped {
                        continue;
                    }
                    // A swarm chunk: update the transfer state machine;
                    // the input is pending until its last chunk lands.
                    if let Some(k) = chunk {
                        let key = (client.0, rid.0, input_idx as u32);
                        let Some(t) = self.swarm.get_mut(&key) else {
                            continue; // task gone (deadline hit, etc.)
                        };
                        let src = from_peer.map(|p| p.0).unwrap_or(SERVER_SEED);
                        let done_all = t.complete(k, Some(src));
                        let (fname, n_chunks) = (t.name.clone(), t.plan.n_chunks);
                        // The downloader now seeds this chunk.
                        self.swarm_index.add_seed(&fname, k, n_chunks, client.0);
                        if !done_all {
                            self.start_input_download(client, rid, input_idx);
                            continue;
                        }
                    }
                    let name = self.client_name(client);
                    let c = &mut self.clients[client.0 as usize];
                    let mut became_ready = None;
                    if let Some(t) = c.tasks.get_mut(&rid) {
                        t.downloads_pending = t.downloads_pending.saturating_sub(1);
                        if t.downloads_pending == 0 && t.state == TaskState::Downloading {
                            t.state = TaskState::Queued;
                            t.dl_done_at = Some(now);
                            became_ready = Some(t.assigned_at);
                        }
                    }
                    if let Some(assigned_at) = became_ready {
                        // All inputs are in: swarm bookkeeping for this
                        // task is finished.
                        self.swarm.retain(|k, _| !(k.0 == client.0 && k.1 == rid.0));
                        self.obs.journal.span(
                            name,
                            "download",
                            rid.to_string(),
                            assigned_at.as_micros(),
                            now.as_micros(),
                        );
                        self.clients[client.0 as usize].run_queue.push_back(rid);
                        self.try_start_tasks(client);
                    }
                }
                FlowPurpose::OutputUpload { client, rid } => {
                    self.stats.bytes_via_server += comp.spec.bytes as f64;
                    let c = &mut self.clients[client.0 as usize];
                    if c.dropped {
                        continue;
                    }
                    if let Some(t) = c.tasks.get_mut(&rid) {
                        t.state = TaskState::Uploading; // terminal client-side
                        let (fp, err) = (t.fingerprint, t.errored);
                        let start = t.exec_done_at.unwrap_or(now);
                        c.ready_to_report.push((rid, fp, err));
                        self.obs.journal.span(
                            self.client_name(client),
                            "upload",
                            rid.to_string(),
                            start.as_micros(),
                            now.as_micros(),
                        );
                    }
                    self.maybe_contact_server(client);
                    if self.cfg.report_results_immediately {
                        // §IV.C mitigation: bypass the backoff gate.
                        self.clients[client.0 as usize].next_rpc_at = now;
                        self.schedule_rpc_wake(client);
                    }
                }
            }
        }
        let _ = policy;
    }

    fn try_start_tasks(&mut self, cid: ClientId) {
        let now = self.sim.now();
        loop {
            let c = &mut self.clients[cid.0 as usize];
            if c.dropped {
                return;
            }
            if c.running.len() >= c.profile.slots as usize {
                return;
            }
            let Some(rid) = c.run_queue.pop_front() else {
                return;
            };
            let Some(t) = c.tasks.get_mut(&rid) else {
                continue;
            };
            t.state = TaskState::Running;
            c.running.push(rid);
            let flops = self.db.wu(self.db.result(rid).wu).spec.flops;
            let jitter = {
                let j = self.cfg.compute_jitter;
                if j > 0.0 {
                    self.clients[cid.0 as usize]
                        .rng
                        .uniform_f64(1.0 - j, 1.0 + j)
                } else {
                    1.0
                }
            };
            let secs = self.clients[cid.0 as usize].profile.compute_seconds(flops) * jitter;
            let dur = SimDuration::from_secs_f64(secs);
            if self.clients[cid.0 as usize].suspended {
                // Owner is using the machine: the task is queued with
                // its full compute debt; it starts at resume.
                let t = self.clients[cid.0 as usize].tasks.get_mut(&rid).unwrap();
                t.exec_started = Some(now);
                t.exec_remaining = Some(dur);
                continue;
            }
            let ev = self.sim.schedule_in(dur, Ev::ExecDone(cid, rid));
            let t = self.clients[cid.0 as usize].tasks.get_mut(&rid).unwrap();
            t.exec_ev = Some(ev);
            t.exec_started = Some(now);
            t.exec_remaining = Some(dur);
        }
    }

    fn on_exec_done<P: Policy>(&mut self, policy: &mut P, cid: ClientId, rid: ResultId) {
        let now = self.sim.now();
        {
            let c = &mut self.clients[cid.0 as usize];
            if c.dropped {
                return;
            }
            c.running.retain(|&r| r != rid);
        }
        let exists = self.clients[cid.0 as usize].tasks.contains_key(&rid);
        if !exists {
            self.try_start_tasks(cid);
            return;
        }

        // Compute the output fingerprint (honest or corrupted).
        let wu = self.db.result(rid).wu;
        let honest = honest_fingerprint(&self.db.wu(wu).spec.name);
        let (errored, fp) = {
            let c = &mut self.clients[cid.0 as usize];
            if self.fault.task_errors_now(&mut c.rng) {
                (true, None)
            } else {
                match self.fidx.corruption_now(cid, now, &mut c.rng) {
                    Corruption::None => (false, Some(honest)),
                    Corruption::Random => (
                        false,
                        Some(OutputFingerprint(honest.0 ^ c.rng.next_u64() | 1)),
                    ),
                    // Colluders emit the clique's shared wrong answer —
                    // identical across members, so they can outvote an
                    // honest minority (or agree under spot-checks).
                    Corruption::Clique(tag) => (false, Some(clique_fingerprint(honest, tag))),
                }
            }
        };
        {
            let t = self.clients[cid.0 as usize].tasks.get_mut(&rid).unwrap();
            let start = t.dl_done_at.unwrap_or(t.assigned_at);
            t.exec_done_at = Some(now);
            t.fingerprint = fp;
            t.errored = errored;
            self.obs.journal.span(
                self.client_name(cid),
                "exec",
                rid.to_string(),
                start.as_micros(),
                now.as_micros(),
            );
        }
        policy.on_task_executed(self, cid, rid);

        // Upload outputs (or just queue the hash report).
        let spec = &self.db.wu(wu).spec;
        if spec.upload_outputs && spec.output_bytes > 0 && !errored {
            let flow = FlowSpec {
                src: self.clients[cid.0 as usize].host,
                dst: self.server_host,
                via: vec![],
                bytes: spec.output_bytes,
                setup_s: self.cfg.rpc_overhead_s,
                priority: Priority::Foreground,
                rate_cap: None,
            };
            let fid = self.net.start_flow(now, flow);
            self.flows
                .insert(fid, FlowPurpose::OutputUpload { client: cid, rid });
        } else {
            let c = &mut self.clients[cid.0 as usize];
            c.ready_to_report.push((rid, fp, errored));
            self.maybe_contact_server(cid);
            if self.cfg.report_results_immediately {
                self.clients[cid.0 as usize].next_rpc_at = now;
                self.schedule_rpc_wake(cid);
            }
        }
        self.try_start_tasks(cid);
    }

    fn on_deadline<P: Policy>(&mut self, policy: &mut P, rid: ResultId) {
        let now = self.sim.now();
        let r = self.db.result(rid);
        if r.state != ResultState::InProgress {
            return;
        }
        if r.report_deadline.map(|d| now >= d).unwrap_or(false) {
            let wu = r.wu;
            let client = r.client;
            self.db.mark_timed_out(rid, now);
            if let Some(c) = client {
                self.credit.on_error(c);
                self.host_outcomes[c.0 as usize].errors += 1;
                self.eobs.host_error.inc();
                if self.cfg.trust.enabled {
                    self.trust.observe(c.0, TrustOutcome::Error);
                }
            }
            if let Some(c) = client {
                let cl = &mut self.clients[c.0 as usize];
                cl.tasks.remove(&rid);
                cl.run_queue.retain(|&x| x != rid);
                cl.running.retain(|&x| x != rid);
                self.swarm.retain(|k, _| !(k.0 == c.0 && k.1 == rid.0));
            }
            self.after_report_transition(policy, wu);
        }
    }

    fn on_dropout(&mut self, cid: ClientId) {
        let c = &mut self.clients[cid.0 as usize];
        c.dropped = true;
        c.served.clear();
        c.run_queue.clear();
        c.running.clear();
        c.ready_to_report.clear();
        if let Some(ev) = c.wake.take() {
            self.sim.cancel(ev);
        }
        self.obs.journal.point(
            self.client_name(cid),
            "dropout",
            "",
            self.sim.now().as_micros(),
        );
        // In-flight flows to/from this client are aborted.
        let involved: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, p)| match p {
                FlowPurpose::InputDownload {
                    client, from_peer, ..
                } => *client == cid || *from_peer == Some(cid),
                FlowPurpose::OutputUpload { client, .. } => *client == cid,
            })
            .map(|(&f, _)| f)
            .collect();
        let now = self.sim.now();
        for fid in involved {
            if let Some(FlowPurpose::InputDownload {
                from_peer: Some(peer),
                client,
                rid,
                input_idx,
                chunk,
                ..
            }) = self.flows.remove(&fid)
            {
                self.net.abort_flow(now, fid);
                let p = &mut self.clients[peer.0 as usize];
                p.serving_now = p.serving_now.saturating_sub(1);
                // The downloading side (if it wasn't the dropped one)
                // retries against another peer.
                if client != cid && !self.clients[client.0 as usize].dropped {
                    self.stats.peer_failures += 1;
                    self.eobs.peer_failures.inc();
                    if let Some(k) = chunk {
                        // Swarm chunk: return it to the pool and repump.
                        let key = (client.0, rid.0, input_idx as u32);
                        if let Some(t) = self.swarm.get_mut(&key) {
                            t.fail(k, Some(peer.0));
                        }
                    } else if let Some(t) = self.clients[client.0 as usize].tasks.get_mut(&rid) {
                        t.attempts[input_idx] += 1;
                    }
                    self.sim.schedule_in(
                        SimDuration::from_secs_f64(self.cfg.peer_retry_delay_s),
                        Ev::PeerRetry(client, rid, input_idx),
                    );
                }
            } else {
                self.net.abort_flow(now, fid);
            }
        }
        // Swarm bookkeeping: the dropped host stops seeding, and its
        // own in-progress transfers die with it.
        self.swarm_index.drop_client(cid.0);
        self.swarm.retain(|k, _| k.0 != cid.0);
    }

    /// Lane name used in the timeline for a client.
    pub fn client_name(&self, c: ClientId) -> String {
        format!("node-{:02}", c.0)
    }
}

/// Why [`EngineBuilder::try_build`] failed.
#[derive(Debug)]
pub enum BuildError {
    /// Opening the durability plan's WAL file sink failed.
    WalSink(std::io::Error),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::WalSink(e) => write!(f, "WAL sink init failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::WalSink(e) => Some(e),
        }
    }
}

/// Fluent constructor for [`Engine`] — the one place an engine's
/// configuration, shard layout, durability, population and clients come
/// together:
///
/// ```ignore
/// let eng = Engine::builder(seed)
///     .config(cfg)
///     .shards(4)
///     .durability(DurabilityPlan::new().with_group_commit(64))
///     .population(PopulationSpec::internet(1_000, seed))
///     .build();
/// ```
///
/// Construction is O(hosts): the topology is assembled in full before
/// the network engine is created, unlike repeated
/// [`Engine::add_client`] calls which rebuild the network per client.
/// For a fixed seed the built engine is bit-identical to the legacy
/// `Engine::testbed` + `add_client`-loop + `attach_durable` sequence
/// (same RNG fork order, same event schedule).
pub struct EngineBuilder {
    seed: u64,
    cfg: ProjectConfig,
    server_link: HostLink,
    journal: Option<Journal>,
    plan: Option<DurabilityPlan>,
    population: Option<crate::population::PopulationSpec>,
    clients: Vec<(HostProfile, HostLink)>,
}

impl EngineBuilder {
    fn new(seed: u64) -> Self {
        EngineBuilder {
            seed,
            cfg: ProjectConfig::default(),
            // The Emulab-style testbed default: a 100 Mbit server.
            server_link: HostLink::symmetric_mbit(100.0, 0.000_5),
            journal: None,
            plan: None,
            population: None,
            clients: Vec::new(),
        }
    }

    /// Replaces the project configuration (default:
    /// [`ProjectConfig::default`]).
    pub fn config(mut self, cfg: ProjectConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the server-state shard count (overrides `cfg.shard.n`).
    /// `1` — the default — is the bit-identical sequential layout.
    pub fn shards(mut self, n: usize) -> Self {
        self.cfg.shard.n = n;
        self
    }

    /// Enables the shard worker pool for daemon passes (overrides
    /// `cfg.shard.parallel_daemons`).
    pub fn parallel_daemons(mut self, on: bool) -> Self {
        self.cfg.shard.parallel_daemons = on;
        self
    }

    /// Replaces the server's access link (default: symmetric 100 Mbit).
    pub fn server_link(mut self, link: HostLink) -> Self {
        self.server_link = link;
        self
    }

    /// Opens a write-ahead log from `plan` at build time and attaches
    /// it. Sink I/O failures surface from [`EngineBuilder::try_build`].
    /// Ignored when an explicit [`EngineBuilder::journal`] is also set.
    pub fn durability(mut self, plan: DurabilityPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Attaches an already-open journal (e.g. one shared with a
    /// recovery harness). Takes precedence over
    /// [`EngineBuilder::durability`].
    pub fn journal(mut self, journal: Journal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Adds a synthetic volunteer population: its ISP tiers, backbone
    /// and access links go straight into the engine topology (the
    /// server stays on the unconstrained core) and every generated host
    /// becomes a client with its generated profile. Population clients
    /// come first, before any [`EngineBuilder::client`] entries.
    pub fn population(mut self, spec: crate::population::PopulationSpec) -> Self {
        self.population = Some(spec);
        self
    }

    /// Adds one volunteer with the given profile and access link.
    pub fn client(mut self, profile: HostProfile, link: HostLink) -> Self {
        self.clients.push((profile, link));
        self
    }

    /// Adds volunteers in bulk, in iteration order.
    pub fn clients<I>(mut self, it: I) -> Self
    where
        I: IntoIterator<Item = (HostProfile, HostLink)>,
    {
        self.clients.extend(it);
        self
    }

    /// Builds the engine, surfacing WAL-sink I/O errors.
    pub fn try_build(self) -> Result<Engine, BuildError> {
        let journal = match (self.journal, &self.plan) {
            (Some(j), _) => j,
            (None, Some(p)) => Journal::new(p).map_err(BuildError::WalSink)?,
            (None, None) => Journal::disabled(),
        };
        let mut topo = Topology::new();
        let server_host = topo.add_host(self.server_link);
        let mut placed: Vec<(HostProfile, HostId)> = Vec::new();
        if let Some(spec) = &self.population {
            for (host, g) in spec.generate_into(&mut topo) {
                placed.push((g.profile, host));
            }
        }
        for (profile, link) in self.clients {
            let host = topo.add_host(link);
            placed.push((profile, host));
        }
        let mut eng = Engine::from_parts(self.seed, self.cfg, topo, server_host);
        // Attach before any work units exist so genesis records land in
        // the log; a disabled journal makes every hook a no-op branch.
        eng.set_durable(journal);
        for (profile, host) in placed {
            eng.push_client(profile, host);
        }
        Ok(eng)
    }

    /// Builds the engine.
    ///
    /// # Panics
    /// If the durability plan's WAL sink cannot be opened — use
    /// [`EngineBuilder::try_build`] to handle that.
    pub fn build(self) -> Engine {
        match self.try_build() {
            Ok(eng) => eng,
            Err(e) => panic!("{e}"),
        }
    }
}

/// The honest output fingerprint of a work unit (FNV-1a of its name).
pub fn honest_fingerprint(wu_name: &str) -> OutputFingerprint {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in wu_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    OutputFingerprint(h)
}

/// The wrong-but-agreed fingerprint a colluding clique emits for a WU:
/// derived from the honest fingerprint and the clique tag only, so
/// every member produces the same value without coordination. The
/// low bit is forced on, matching the random-corruption convention
/// (never equal to the honest output).
pub fn clique_fingerprint(honest: OutputFingerprint, tag: u64) -> OutputFingerprint {
    // splitmix64 finalizer decorrelates nearby tags.
    let mut z = tag.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    OutputFingerprint(honest.0 ^ z | 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FileRef;

    fn small_engine(n_clients: usize) -> Engine {
        Engine::builder(42)
            .clients((0..n_clients).map(|_| {
                (
                    HostProfile::pc3001(),
                    HostLink::symmetric_mbit(100.0, 0.000_5),
                )
            }))
            .build()
    }

    fn wu_spec(name: &str, input_bytes: u64, output_bytes: u64) -> WorkUnitSpec {
        let mut s = WorkUnitSpec::basic(name, "app", 2e9); // ~1.3 s on pc3001
        if input_bytes > 0 {
            s.inputs = vec![FileRef::on_server(format!("{name}_in"), input_bytes)];
        }
        s.output_bytes = output_bytes;
        s
    }

    #[test]
    fn single_wu_validates_end_to_end() {
        let mut eng = small_engine(3);
        let wu = eng.insert_workunit(wu_spec("w0", 1_000_000, 100_000));
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(4000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(eng.db.wu(wu).state, crate::workunit::WuState::Validated);
        assert_eq!(
            eng.db.wu(wu).canonical,
            Some(honest_fingerprint("w0")),
            "canonical fingerprint is the honest one"
        );
        assert!(eng.stats.reports >= 2);
        assert!(eng.stats.grants >= 2);
        // Replicas must have landed on distinct clients.
        let holders: Vec<_> = eng
            .db
            .results_of(wu)
            .iter()
            .filter_map(|&r| eng.db.result(r).client)
            .collect();
        let mut dedup = holders.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(holders.len(), dedup.len());
    }

    #[test]
    fn ops_surface_renders_engine_registry() {
        let mut eng = small_engine(2);
        eng.insert_workunit(wu_spec("w0", 0, 1_000));
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(4000), |e| {
            e.db.all_wus_terminal()
        });
        let text = eng.metrics_text();
        let dash = eng.dashboard_text();
        assert!(dash.contains("vcore engine"), "dashboard carries its title");
        if cfg!(feature = "record") {
            assert!(
                text.contains("vcore_rpcs"),
                "scrape must expose the engine counters:\n{text}"
            );
            assert!(text.contains("# TYPE vcore_rpcs counter"));
        } else {
            assert!(!text.contains("vcore_rpcs"), "recorder compiled out");
        }
    }

    #[test]
    fn byzantine_minority_is_outvoted() {
        let mut eng = small_engine(4);
        eng.fault = FaultPlan {
            byzantine: vec![ClientId(0)],
            corruption_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut spec = wu_spec("w0", 0, 0);
        spec.target_nresults = 3;
        spec.min_quorum = 2;
        let wu = eng.insert_workunit(spec);
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(40_000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(eng.db.wu(wu).state, crate::workunit::WuState::Validated);
        assert_eq!(eng.db.wu(wu).canonical, Some(honest_fingerprint("w0")));
    }

    #[test]
    fn all_clients_byzantine_fails_wu() {
        // 5 clients so the retry replicas can actually be placed (the
        // one-replica-per-host rule would otherwise strand them unsent).
        let mut eng = small_engine(5);
        eng.fault = FaultPlan {
            byzantine: (0..5).map(ClientId).collect(),
            corruption_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut spec = wu_spec("w0", 0, 0);
        spec.max_total_results = 4;
        let wu = eng.insert_workunit(spec);
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(100_000), |e| {
            e.db.all_wus_terminal()
        });
        // Either failed outright, or stuck inconclusive forever — with
        // corruption_prob 1.0 and random fingerprints, quorum is
        // (essentially) impossible, and budget 4 must exhaust.
        assert_eq!(eng.db.wu(wu).state, crate::workunit::WuState::Failed);
    }

    #[test]
    fn empty_reply_triggers_backoff_growth() {
        let mut eng = small_engine(1);
        // No work at all: the lone client polls and backs off.
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(3600), |_| false);
        assert!(eng.stats.empty_replies >= 3);
        // RPC count is bounded by backoff growth: within an hour with a
        // 600 s cap the client cannot poll more than ~20 times.
        assert!(eng.stats.rpcs < 25, "rpcs={}", eng.stats.rpcs);
    }

    #[test]
    fn peer_download_via_served_file() {
        let mut eng = small_engine(2);
        // Client 1 serves a file; a WU downloads it from peers.
        eng.register_served_file(ClientId(1), "part0", 1_000_000, None);
        let mut spec = wu_spec("w0", 0, 0);
        spec.target_nresults = 1;
        spec.min_quorum = 1;
        spec.inputs = vec![FileRef {
            name: "part0".into(),
            bytes: 1_000_000,
            source: FileSource::Peers(vec![ClientId(1)]),
        }];
        let wu = eng.insert_workunit(spec);
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(4000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(eng.db.wu(wu).state, crate::workunit::WuState::Validated);
        assert_eq!(eng.stats.server_fallbacks, 0);
        assert_eq!(eng.stats.peer_failures, 0);
    }

    #[test]
    fn missing_peer_file_falls_back_to_server() {
        let mut eng = small_engine(2);
        // No served file registered → every attempt fails → fallback.
        let mut spec = wu_spec("w0", 0, 0);
        spec.target_nresults = 1;
        spec.min_quorum = 1;
        spec.inputs = vec![FileRef {
            name: "missing".into(),
            bytes: 500_000,
            source: FileSource::Peers(vec![ClientId(1)]),
        }];
        let wu = eng.insert_workunit(spec);
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(4000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(eng.db.wu(wu).state, crate::workunit::WuState::Validated);
        assert!(eng.stats.peer_failures >= eng.cfg.peer_retry_limit as u64);
        assert_eq!(eng.stats.server_fallbacks, 1);
    }

    #[test]
    fn dropout_before_report_times_out_and_retries() {
        let mut eng = small_engine(3);
        eng.fault = FaultPlan {
            dropouts: vec![(ClientId(0), SimDuration::from_secs(5))],
            ..FaultPlan::default()
        };
        // Make dropout matter: long compute so c0 holds a task at t=5.
        let mut spec = wu_spec("w0", 0, 0);
        spec.flops = 100.0 * 1.5e9; // ~100 s on pc3001
        spec.delay_bound = SimDuration::from_secs(300);
        let wu = eng.insert_workunit(spec);
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(100_000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(eng.db.wu(wu).state, crate::workunit::WuState::Validated);
        assert!(eng.client_dropped(ClientId(0)));
    }

    #[test]
    fn report_delay_measured_for_idle_tail() {
        // One client, one tiny WU (quorum 1): after finishing, the client
        // reports at its next RPC — delay should be recorded.
        let mut eng = small_engine(1);
        let mut spec = wu_spec("w0", 0, 0);
        spec.target_nresults = 1;
        spec.min_quorum = 1;
        eng.insert_workunit(spec);
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(4000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(eng.stats.report_delay.count(), 1);
    }

    #[test]
    fn availability_pauses_execution() {
        // Dedicated host vs a 50% duty-cycle volunteer, same 200 s task.
        let run = |avail: bool| {
            let mut prof = HostProfile::pc3001();
            if avail {
                prof = prof.with_availability(60.0, 60.0);
            }
            let mut eng = Engine::builder(123)
                .client(prof, HostLink::symmetric_mbit(100.0, 0.000_5))
                .build();
            let mut spec = wu_spec("w0", 0, 0);
            spec.flops = 200.0 * 1.5e9;
            spec.target_nresults = 1;
            spec.min_quorum = 1;
            eng.insert_workunit(spec);
            let mut policy = NullPolicy;
            eng.run_until(&mut policy, SimTime::from_secs(100_000), |e| {
                e.db.all_wus_terminal()
            });
            assert!(eng.db.all_wus_terminal(), "avail={avail} did not finish");
            eng.db.wu(crate::types::WuId(0)).finished_at.unwrap()
        };
        let dedicated = run(false);
        let volunteer = run(true);
        assert!(
            volunteer > dedicated,
            "suspensions must stretch completion: {volunteer:?} <= {dedicated:?}"
        );
    }

    #[test]
    fn credit_granted_to_quorum_and_denied_to_byzantine() {
        let mut eng = small_engine(4);
        eng.fault = FaultPlan {
            byzantine: vec![ClientId(0)],
            corruption_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut spec = wu_spec("w0", 0, 0);
        spec.target_nresults = 3;
        spec.min_quorum = 2;
        eng.insert_workunit(spec);
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(40_000), |e| {
            e.db.all_wus_terminal()
        });
        let total = eng.credit.total_granted();
        assert!(total > 0.0, "quorum members must earn credit");
        let cheat = eng.credit.account(ClientId(0));
        assert_eq!(cheat.granted, 0.0, "byzantine host earns nothing");
        // The cheater either dissented (invalid) or wasn't picked at all.
        let board = eng.credit.leaderboard();
        assert!(board.iter().all(|(c, g)| *c != ClientId(0) || *g == 0.0));
    }

    #[test]
    fn quarantine_starves_unreliable_host() {
        let mut eng = small_engine(4);
        eng.cfg.max_host_error_rate = Some(0.5);
        eng.fault = FaultPlan {
            byzantine: vec![ClientId(0)],
            corruption_prob: 1.0,
            ..FaultPlan::default()
        };
        // Many quorum-2 WUs: the byzantine host keeps dissenting, its
        // error rate climbs, and the scheduler cuts it off.
        for i in 0..8 {
            let mut spec = wu_spec(&format!("w{i}"), 0, 0);
            spec.target_nresults = 3;
            spec.min_quorum = 2;
            eng.insert_workunit(spec);
        }
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(100_000), |e| {
            e.db.all_wus_terminal()
        });
        assert!(eng.db.all_wus_terminal());
        let cheat = eng.credit.account(ClientId(0));
        assert!(
            cheat.invalid_results >= 1,
            "cheater must have dissented at least once"
        );
        assert!(
            cheat.error_rate() > 0.5,
            "ledger must reflect the cheating: {}",
            cheat.error_rate()
        );
        // After quarantine kicks in, honest hosts do (almost) all work:
        // the cheater's share of grants stays well below fair share.
        let cheat_tasks = cheat.valid_results + cheat.invalid_results;
        let honest_tasks: u64 = (1..4)
            .map(|c| {
                let a = eng.credit.account(ClientId(c));
                a.valid_results + a.invalid_results
            })
            .sum();
        assert!(
            cheat_tasks * 3 < honest_tasks,
            "quarantine should starve the cheater: {cheat_tasks} vs {honest_tasks}"
        );
    }

    #[test]
    fn locality_scheduling_prefers_local_candidate() {
        // Two WUs are available; the lone requesting client serves the
        // input of the *second* one. FIFO matchmaking grants the first;
        // locality matchmaking must grant the second (local data).
        fn in_progress(eng: &Engine, wu: WuId) -> bool {
            eng.db
                .results_of(wu)
                .iter()
                .any(|&r| eng.db.result(r).client.is_some())
        }
        let run = |locality: bool| -> WuId {
            let mut eng = small_engine(1);
            eng.cfg.locality_scheduling = locality;
            eng.cfg.client_buffer_slots = 1; // one grant per RPC
            eng.register_served_file(ClientId(0), "partB", 2_000_000, None);
            let mut a = wu_spec("wA", 0, 0);
            a.target_nresults = 1;
            a.min_quorum = 1;
            let mut b = wu_spec("wB", 0, 0);
            b.target_nresults = 1;
            b.min_quorum = 1;
            b.inputs = vec![crate::types::FileRef {
                name: "partB".into(),
                bytes: 2_000_000,
                source: FileSource::Peers(vec![ClientId(0)]),
            }];
            let wu_a = eng.insert_workunit(a);
            let wu_b = eng.insert_workunit(b);
            let mut policy = NullPolicy;
            // Stop at the first grant.
            eng.run_until(&mut policy, SimTime::from_secs(4000), |e| {
                e.stats.grants >= 1
            });
            [wu_a, wu_b]
                .into_iter()
                .find(|&wu| in_progress(&eng, wu))
                .expect("one WU must be granted")
        };
        assert_eq!(run(false), WuId(0), "FIFO grants the oldest WU");
        assert_eq!(run(true), WuId(1), "locality grants the WU with local data");
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let mut eng = Engine::builder(seed)
                .clients((0..5).map(|_| {
                    (
                        HostProfile::pc3001(),
                        HostLink::symmetric_mbit(100.0, 0.000_5),
                    )
                }))
                .build();
            for i in 0..4 {
                eng.insert_workunit(wu_spec(&format!("w{i}"), 500_000, 100_000));
            }
            let mut policy = NullPolicy;
            eng.run_until(&mut policy, SimTime::from_secs(40_000), |e| {
                e.db.all_wus_terminal()
            });
            (
                eng.now(),
                eng.stats.rpcs,
                eng.stats.reports,
                eng.stats.grants,
            )
        };
        assert_eq!(run(7), run(7));
        // Different seeds: at least the run completes (values may differ).
        let _ = run(8);
    }

    /// The builder must reproduce the legacy `testbed` + `add_client`
    /// loop + `attach_durable` sequence bit for bit: same stats, same
    /// canonical state encodings, same WAL bytes.
    #[test]
    #[allow(deprecated)]
    fn builder_is_bit_identical_to_legacy_construction() {
        let link = || HostLink::symmetric_mbit(100.0, 0.000_5);
        let run = |use_builder: bool| {
            let plan = DurabilityPlan::new(0.0);
            let mut eng = if use_builder {
                Engine::builder(99)
                    .config(ProjectConfig::default())
                    .durability(plan)
                    .clients((0..4).map(|_| (HostProfile::pc3001(), link())))
                    .build()
            } else {
                let mut e = Engine::testbed(99, ProjectConfig::default());
                e.attach_durable(Journal::new(&plan).unwrap());
                for _ in 0..4 {
                    e.add_client(HostProfile::pc3001(), link());
                }
                e
            };
            for i in 0..4 {
                eng.insert_workunit(wu_spec(&format!("w{i}"), 300_000, 60_000));
            }
            let mut policy = NullPolicy;
            eng.run_until(&mut policy, SimTime::from_secs(40_000), |e| {
                e.db.all_wus_terminal()
            });
            assert!(eng.db.all_wus_terminal());
            (
                eng.now(),
                eng.stats.rpcs,
                eng.stats.grants,
                eng.stats.reports,
                eng.db.encode_state(),
                eng.credit.encode_state(),
                eng.assimilator.encode_state(),
                eng.durable().log_bytes(),
            )
        };
        assert_eq!(run(true), run(false));
    }

    /// `.population(spec)` puts the generated hosts behind their ISP
    /// tiers in the *engine's* topology and registers each as a client
    /// with its generated profile; the server stays on the core.
    #[test]
    fn builder_population_becomes_clients_behind_tiers() {
        let spec = crate::population::PopulationSpec::internet(64, 5);
        let standalone = spec.generate();
        let mut eng = Engine::builder(5).population(spec).build();
        assert_eq!(eng.n_clients(), 64);
        // One WU drives the full loop over the hierarchical network.
        let mut s = wu_spec("w0", 100_000, 10_000);
        s.target_nresults = 2;
        s.min_quorum = 2;
        s.delay_bound = SimDuration::from_secs(50_000);
        let wu = eng.insert_workunit(s);
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(200_000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(eng.db.wu(wu).state, crate::workunit::WuState::Validated);
        // Generated profiles carried over verbatim, tiers preserved.
        for (i, want) in standalone.hosts.iter().enumerate() {
            let c = ClientId(i as u32);
            assert_eq!(eng.client_profile(c).model, want.profile.model);
            assert_eq!(
                eng.client_profile(c).flops_per_sec.to_bits(),
                want.profile.flops_per_sec.to_bits()
            );
            assert_eq!(
                eng.net.topology().tier_of(eng.client_host(c)),
                Some(want.tier)
            );
        }
        assert_eq!(eng.net.topology().tier_of(eng.server_host()), None);
        assert!(eng.net.topology().is_hierarchical());
    }

    // ----- trust / adaptive replication -------------------------------------

    /// A trust config that trusts quickly and never spot-checks, so the
    /// adaptive path is deterministic in tests.
    fn eager_trust() -> vmr_trust::TrustConfig {
        let mut t = vmr_trust::TrustConfig::enabled();
        t.probation_results = 2;
        t.spot_check_rate = 0.0;
        t
    }

    fn trust_engine(n_clients: usize, trust: vmr_trust::TrustConfig) -> Engine {
        let cfg = ProjectConfig {
            trust,
            ..ProjectConfig::default()
        };
        Engine::builder(42)
            .config(cfg)
            .clients((0..n_clients).map(|_| {
                (
                    HostProfile::pc3001(),
                    HostLink::symmetric_mbit(100.0, 0.000_5),
                )
            }))
            .build()
    }

    #[test]
    fn trusted_hosts_graduate_to_single_replication() {
        let mut eng = trust_engine(2, eager_trust());
        for i in 0..10 {
            eng.insert_workunit(wu_spec(&format!("w{i}"), 0, 0));
        }
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(100_000), |e| {
            e.db.all_wus_terminal()
        });
        assert!(eng.db.all_wus_terminal());
        assert_eq!(eng.trust.trusted_count(), 2, "both hosts graduate");
        // Once trusted, later WUs validate from a single result.
        let relaxed = (0..10)
            .filter(|&i| eng.db.wu(WuId(i)).quorum_override == Some(1))
            .count();
        assert!(relaxed >= 4, "only {relaxed} WUs ran unreplicated");
        // Every WU still validated with the honest canonical output.
        for i in 0..10 {
            assert_eq!(
                eng.db.wu(WuId(i)).state,
                crate::workunit::WuState::Validated
            );
            assert_eq!(
                eng.db.wu(WuId(i)).canonical,
                Some(honest_fingerprint(&format!("w{i}")))
            );
        }
        // Redundant work was actually saved: fewer reports than the
        // 2-per-WU fixed-quorum baseline.
        assert!(
            eng.stats.reports < 20,
            "reports={} should be below 2/WU",
            eng.stats.reports
        );
    }

    #[test]
    fn spot_checks_keep_full_replication() {
        let mut t = eager_trust();
        t.spot_check_rate = 1.0; // every trusted grant is a spot-check
        let mut eng = trust_engine(2, t);
        for i in 0..8 {
            eng.insert_workunit(wu_spec(&format!("w{i}"), 0, 0));
        }
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(100_000), |e| {
            e.db.all_wus_terminal()
        });
        assert!(eng.db.all_wus_terminal());
        assert_eq!(eng.trust.trusted_count(), 2);
        for i in 0..8 {
            assert_eq!(
                eng.db.wu(WuId(i)).quorum_override,
                None,
                "spot-checks must never relax the quorum"
            );
        }
        let checks: u64 = (0..2).map(|c| eng.trust.host(c).spot_checks).sum();
        assert!(checks > 0, "spot-checks must be recorded in the ledger");
        assert_eq!(eng.stats.reports, 16, "full 2-way replication kept");
    }

    #[test]
    fn dissent_revokes_trust() {
        // One host turns byzantine after building trust (a sleeper
        // waking mid-run). Spot-checks must catch it: without them an
        // unreplicated wrong result simply *becomes* canonical.
        let mut t = eager_trust();
        t.spot_check_rate = 0.5;
        let mut eng = trust_engine(3, t);
        eng.fault = FaultPlan::trust_poisoning(3, 0.34, 1.0, SimDuration::from_secs(30), 9);
        let member = (0..3)
            .map(ClientId)
            .find(|&c| {
                matches!(
                    eng.fault.index().corruption_now(
                        c,
                        SimTime::from_secs(31),
                        &mut RngStream::new(1)
                    ),
                    Corruption::Random
                )
            })
            .expect("one sleeper member");
        for i in 0..24 {
            let mut spec = wu_spec(&format!("w{i}"), 0, 0);
            spec.flops = 7.5e9; // ~5 s on pc3001: the run outlives the wake
            eng.insert_workunit(spec);
        }
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(200_000), |e| {
            e.db.all_wus_terminal()
        });
        assert!(eng.db.all_wus_terminal());
        assert!(
            !eng.trust.is_trusted(member.0),
            "the sleeper must lose trust after defecting"
        );
        assert!(
            eng.host_outcomes(member).invalid > 0,
            "dissents must be tallied"
        );
    }

    #[test]
    fn host_outcome_tallies_without_trust() {
        // Trust disabled: the per-host validation ledger still fills.
        let mut eng = small_engine(3);
        eng.fault = FaultPlan {
            byzantine: vec![ClientId(0)],
            corruption_prob: 1.0,
            ..FaultPlan::default()
        };
        for i in 0..4 {
            let mut spec = wu_spec(&format!("w{i}"), 0, 0);
            spec.target_nresults = 3;
            spec.min_quorum = 2;
            eng.insert_workunit(spec);
        }
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(100_000), |e| {
            e.db.all_wus_terminal()
        });
        let honest: u64 = (1..3).map(|c| eng.host_outcomes(ClientId(c)).valid).sum();
        assert!(honest > 0, "honest hosts tally valids");
        assert!(
            eng.host_outcomes(ClientId(0)).invalid > 0,
            "byzantine host tallies invalids"
        );
        assert_eq!(eng.trust.trusted_count(), 0, "ledger untouched when off");
    }

    #[test]
    fn trust_disabled_knobs_do_not_change_behavior() {
        // With `enabled: false`, the other trust knobs must not leak
        // into the run: stats and journaled state stay bit-identical
        // to the default config.
        let run = |trust: vmr_trust::TrustConfig| {
            let cfg = ProjectConfig {
                trust,
                ..ProjectConfig::default()
            };
            let mut eng = Engine::builder(7)
                .config(cfg)
                .clients((0..4).map(|_| {
                    (
                        HostProfile::pc3001(),
                        HostLink::symmetric_mbit(100.0, 0.000_5),
                    )
                }))
                .build();
            for i in 0..4 {
                eng.insert_workunit(wu_spec(&format!("w{i}"), 200_000, 50_000));
            }
            let mut policy = NullPolicy;
            eng.run_until(&mut policy, SimTime::from_secs(40_000), |e| {
                e.db.all_wus_terminal()
            });
            (
                eng.now(),
                eng.stats.rpcs,
                eng.stats.grants,
                eng.stats.reports,
                eng.db.encode_state(),
                eng.credit.encode_state(),
            )
        };
        let weird = vmr_trust::TrustConfig {
            trust_threshold: 0.9,
            probation_results: 0,
            spot_check_rate: 1.0,
            ..Default::default()
        };
        assert!(!weird.enabled);
        assert_eq!(run(vmr_trust::TrustConfig::default()), run(weird));
    }

    #[test]
    fn colluding_clique_fingerprints_agree() {
        let honest = honest_fingerprint("w0");
        let a = clique_fingerprint(honest, 77);
        let b = clique_fingerprint(honest, 77);
        assert_eq!(a, b, "members derive the same wrong answer");
        assert_ne!(a, honest);
        assert_ne!(a, clique_fingerprint(honest, 78));
    }

    #[test]
    fn clique_quorum_escapes_validation() {
        // Both replicas land on clique members → their shared wrong
        // fingerprint reaches quorum and escapes as canonical.
        let mut eng = small_engine(2);
        eng.fault = FaultPlan::colluding_clique(2, 1.0, 5, 11);
        let wu = eng.insert_workunit(wu_spec("w0", 0, 0));
        let mut policy = NullPolicy;
        eng.run_until(&mut policy, SimTime::from_secs(40_000), |e| {
            e.db.all_wus_terminal()
        });
        assert_eq!(eng.db.wu(wu).state, crate::workunit::WuState::Validated);
        assert_eq!(
            eng.db.wu(wu).canonical,
            Some(clique_fingerprint(honest_fingerprint("w0"), 5)),
            "the clique's agreed-on wrong answer becomes canonical"
        );
    }
}
